"""CI perf gate: catch decode/recode regressions against ``BENCH_PR2.json``.

Absolute packets-per-second numbers are meaningless across machines (a
cold CI runner is easily 5x slower than the box that recorded the
baseline), so the gate compares *same-run speedup ratios* instead: each
benchmark section measures its optimised path and its scalar baseline in
one process on one machine, and the ratio of the two is stable across
hardware.  A >10% drop in a ratio means the optimised path genuinely
lost ground relative to the scalar code it is supposed to beat — the
one regression this repo's perf work must never ship.

Speedup ratios drift across hardware too — the *identical* pre-batching
code measured ``decode.speedup_g64`` 3.92 on the machine that recorded
``BENCH_PR2.json`` and 2.90 on another box (cache sizes and BLAS
threading shift the gemm/python balance) — so the gate layers a
measured ``HARDWARE_DRIFT`` allowance under the 10% regression
tolerance.  A genuine regression (batching disabled → ratio ~1.0)
still fails by a wide margin.

Gates (floor = ``RATIO_TOLERANCE * HARDWARE_DRIFT *`` recorded):

* ``decode.speedup_g64``   — batched wire decode vs the seed decoder;
* ``recode.speedup``       — batched random-combination emit vs seed;

plus smoke checks that the PR-6 sections (``wire_batch``,
``recode_batch``, ``net_throughput``) ran, produced positive rates, and
that the batched recode/net paths did not fall behind their own scalar
arms; plus the PR-9 ``scaling`` section: all four populations (100 /
1k / 5k / 10k) must report positive server-ops/s and slots/s, and the
server-op rate at 10k must stay within ``SCALING_MAX_DEGRADATION`` of
the 100-peer rate (sublinear membership cost — the indexed engine
state's acceptance bar).

Usage (CI runs the quick microbench first)::

    PYTHONPATH=src python benchmarks/microbench.py --quick --out bench_smoke.json
    python benchmarks/check_bench.py bench_smoke.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "BENCH_PR2.json"

#: A gated ratio may regress to this fraction of the recorded one.
RATIO_TOLERANCE = 0.9

#: Cross-machine drift allowance for the recorded ratios (see module
#: docstring: identical code measured 26% apart on two boxes).
HARDWARE_DRIFT = 0.75

#: (section, key) speedup ratios gated against BENCH_PR2.json.
GATED_RATIOS = [
    ("decode", "speedup_g64"),
    ("recode", "speedup"),
]

#: (section, key) rates from the PR-6 sections that must be positive.
SMOKE_POSITIVE = [
    ("wire_batch", "encode_frames_per_s"),
    ("wire_batch", "decode_frames_per_s"),
    ("recode_batch", "emits_per_s"),
    ("recode_batch", "wire_emits_per_s"),
    ("net_throughput", "packets_per_s"),
    ("obs_overhead", "slots_per_s"),
    ("obs_overhead", "enqueues_per_s"),
    ("dataplane_overhead", "ops_per_s"),
    ("dataplane_overhead", "ops_per_s_inline"),
    ("scaling", "server_ops_per_s_n100"),
    ("scaling", "server_ops_per_s_n1000"),
    ("scaling", "server_ops_per_s_n5000"),
    ("scaling", "server_ops_per_s_n10000"),
    ("scaling", "slots_per_s_n100"),
    ("scaling", "slots_per_s_n1000"),
    ("scaling", "slots_per_s_n5000"),
    ("scaling", "slots_per_s_n10000"),
]

#: Sublinear-scaling gate for the PR-9 indexed engine state: ops/s at
#: 10k peers must stay within this factor of ops/s at 100 peers.  The
#: pre-index linear scans degraded ~100x over that population span
#: (per-op cost O(n)); the indexed paths measure ~2x, so a 10x bar
#: fails a reintroduced scan by an order of magnitude while tolerating
#: noisy runners.
SCALING_MAX_DEGRADATION = 10.0

#: (section, key) batched-vs-scalar ratios that must not drop below 1.0
#: even on a noisy runner (floor leaves headroom under the measured ~2x).
SMOKE_FLOORS = [
    ("recode_batch", "speedup", 1.0),
    ("recode_batch", "speedup_wire", 1.0),
    ("net_throughput", "speedup", 1.0),
    # Observability budget: instrumented hot paths hold >= 0.98 of bare
    # throughput on a quiet machine (BENCH_PR8.json records the run);
    # the CI floor leaves headroom for noisy shared runners.
    ("obs_overhead", "relative_throughput_slot_loop", 0.95),
    ("obs_overhead", "relative_throughput_sender", 0.95),
    # PR-10 sans-IO data-plane budget: the engine-dispatched
    # ingest+pull pair holds >= 0.95 of the pre-refactor inline path
    # (BENCH_PR10.json records the run).
    ("dataplane_overhead", "relative_throughput", 0.95),
]


def check(results: dict, baseline: dict) -> list[str]:
    """Return a list of failure messages (empty = gate passes)."""
    failures: list[str] = []
    for section, key in GATED_RATIOS:
        recorded = baseline.get(section, {}).get(key)
        current = results.get(section, {}).get(key)
        if recorded is None:
            continue  # baseline predates this metric; nothing to gate
        if current is None:
            failures.append(f"{section}.{key}: missing from current run")
            continue
        floor = RATIO_TOLERANCE * HARDWARE_DRIFT * recorded
        if current < floor:
            failures.append(
                f"{section}.{key}: {current:.2f} < {floor:.2f} "
                f"(recorded {recorded:.2f}, tolerance {RATIO_TOLERANCE}, "
                f"drift allowance {HARDWARE_DRIFT})"
            )
    for section, key in SMOKE_POSITIVE:
        value = results.get(section, {}).get(key)
        if value is None:
            failures.append(f"{section}.{key}: missing from current run")
        elif not value > 0:
            failures.append(f"{section}.{key}: {value!r} is not positive")
    for section, key, floor in SMOKE_FLOORS:
        value = results.get(section, {}).get(key)
        if value is None:
            failures.append(f"{section}.{key}: missing from current run")
        elif value < floor:
            failures.append(
                f"{section}.{key}: {value:.2f} < floor {floor:.2f} "
                f"(batched path slower than its scalar arm)"
            )
    scaling = results.get("scaling", {})
    small = scaling.get("server_ops_per_s_n100")
    large = scaling.get("server_ops_per_s_n10000")
    if small is not None and large is not None and small > 0:
        if large < small / SCALING_MAX_DEGRADATION:
            failures.append(
                f"scaling.server_ops_per_s_n10000: {large:,.0f} is more "
                f"than {SCALING_MAX_DEGRADATION:g}x below the n=100 rate "
                f"{small:,.0f} — membership ops are scaling linearly "
                f"again (a reintroduced registry scan?)"
            )
    return failures


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__)
        return 2
    results = json.loads(Path(argv[1]).read_text())
    if not BASELINE.exists():
        print(f"no baseline at {BASELINE}; skipping ratio gate")
        baseline: dict = {}
    else:
        baseline = json.loads(BASELINE.read_text())
    failures = check(results, baseline)
    for section, key in GATED_RATIOS:
        current = results.get(section, {}).get(key)
        recorded = baseline.get(section, {}).get(key)
        if current is not None and recorded is not None:
            print(f"{section}.{key}: {current:.2f} (recorded {recorded:.2f})")
    if failures:
        print("\nPERF GATE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("perf gate ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
