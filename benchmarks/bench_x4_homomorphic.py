"""X4 — §7's open problem implemented: homomorphic-hash jamming defence.

A relay chain carries one generation while a jammer injects garbage at
every hop.  Three configurations:

* unprotected GF(2⁸) plane (the E11 situation): decode completes but is
  poisoned;
* verified Z_q plane: every packet is checked against the source's
  published homomorphic hashes; jam packets die on contact and the
  decode is clean;
* verification micro-cost: hash checks per packet (pytest-benchmark).
"""

import numpy as np

from repro.coding import Decoder, GenerationParams, Recoder, SourceEncoder
from repro.coding.packet import CodedPacket
from repro.security import (
    HomomorphicHasher,
    PrimeDecoder,
    PrimeEncoder,
    VerifiedRelay,
    bytes_to_symbols,
    generate_params,
    make_jam_packet,
    symbols_to_bytes,
)

from conftest import emit_table, run_once

GENERATION, SYMBOLS = 12, 16
CONTENT = 500


def _unprotected(seed: int):
    """GF(256) relay chain with a jammer: completes but poisoned."""
    rng = np.random.default_rng(seed)
    content = bytes(rng.integers(0, 256, size=CONTENT, dtype=np.uint8))
    params = GenerationParams(GENERATION, 48)
    encoder = SourceEncoder(content, params, rng)
    relay = Recoder(params, encoder.generation_count, rng, node_id=1)
    sink = Decoder(params, encoder.generation_count)
    jam_rng = np.random.default_rng(seed + 1)
    injected = 0
    for _ in range(400):
        if sink.is_complete:
            break
        relay.receive(encoder.emit(0))
        jam = CodedPacket(
            generation=0,
            coefficients=jam_rng.integers(0, 256, size=GENERATION, dtype=np.uint8),
            payload=jam_rng.integers(0, 256, size=48, dtype=np.uint8),
        )
        if not jam.coefficients.any():
            jam.coefficients[0] = 1
        relay.receive(jam)
        injected += 1
        packet = relay.emit(0)
        if packet is not None:
            sink.push(packet)
    poisoned = True
    if sink.is_complete:
        poisoned = sink.recover(len(content)) != content
    return sink.is_complete, poisoned, injected


def _protected(seed: int):
    """Verified Z_q relay chain: jam packets rejected, decode clean."""
    rng = np.random.default_rng(seed)
    content = bytes(rng.integers(0, 256, size=CONTENT, dtype=np.uint8))
    source = bytes_to_symbols(content, SYMBOLS)
    g = source.shape[0]
    encoder = PrimeEncoder(source, rng)
    hasher = HomomorphicHasher(generate_params(SYMBOLS, seed=seed))
    hashes = hasher.hash_generation(source)
    relay = VerifiedRelay(hasher, hashes, g, SYMBOLS, rng, node_id=1)
    sink = PrimeDecoder(g, SYMBOLS)
    jam_rng = np.random.default_rng(seed + 1)
    injected = 0
    for _ in range(400):
        if sink.is_complete:
            break
        relay.receive(encoder.emit())
        relay.receive(make_jam_packet(g, SYMBOLS, jam_rng))
        injected += 1
        packet = relay.emit()
        if packet is not None:
            sink.push(packet)
    clean = (
        sink.is_complete
        and symbols_to_bytes(sink.recover(), len(content)) == content
    )
    return sink.is_complete, not clean, injected, relay.stats.rejected


def experiment():
    done_u, poisoned_u, injected_u = _unprotected(61)
    done_p, poisoned_p, injected_p, rejected = _protected(61)
    rows = [
        ["unprotected GF(256)", done_u, poisoned_u, injected_u, None],
        ["verified Z_q (KFM hash)", done_p, poisoned_p, injected_p, rejected],
    ]
    return rows


def test_x4_homomorphic_defence(benchmark):
    rows = run_once(benchmark, experiment)
    emit_table(
        "x4_homomorphic",
        ["data plane", "decode complete", "decode poisoned",
         "jam packets injected", "jam packets rejected"],
        rows,
        title="X4 — jamming with and without homomorphic-hash verification",
    )
    unprotected, protected = rows
    assert unprotected[2] is True  # jammer wins without verification
    assert protected[1] is True and protected[2] is False  # defence works
    assert protected[4] == protected[3]  # every injected jam rejected


def test_x4_verification_cost(benchmark):
    """Micro-cost of verifying one packet (hash + homomorphic combine)."""
    rng = np.random.default_rng(9)
    source = rng.integers(0, 2**31 - 1, size=(GENERATION, SYMBOLS))
    encoder = PrimeEncoder(source, rng)
    hasher = HomomorphicHasher(generate_params(SYMBOLS, seed=9))
    hashes = hasher.hash_generation(source)
    packet = encoder.emit()
    ok = benchmark(hasher.verify, packet, hashes)
    assert ok
