"""E5 — §5: adversarial batch failures vs iid failures, and the effect of
random row insertion.

Four conditions at equal failure budget p:

* iid failures (the §4 baseline);
* a uniformly random batch (the adversary §5 reduces to);
* an arrival-coordinated cohort under append ordering (the attack);
* the same cohort under §5's uniform random row insertion (the defence).

Reported per condition: survivors' mean connectivity loss per thread and
the fraction fully disconnected.  The §5 claim: with random insertion the
cohort behaves like the random batch / iid conditions.
"""

import numpy as np

from repro.core import OverlayNetwork
from repro.failures import (
    CohortBatchFailures,
    IIDFailures,
    RandomBatchFailures,
    apply_failures,
)

from conftest import emit_table, run_once

K, D, N = 16, 2, 400
FRACTION = 0.15
REPEATS = 6


def _condition(insert_mode: str, model, seed: int) -> tuple[float, float]:
    net = OverlayNetwork(k=K, d=D, seed=seed, insert_mode=insert_mode)
    net.grow(N)
    apply_failures(net, model, np.random.default_rng(seed + 1))
    survivors = net.working_nodes
    connectivities = net.connectivities(survivors)
    losses = np.asarray([D - connectivities[n] for n in survivors], dtype=float)
    return float(losses.mean() / D), float((losses == D).mean())


def experiment():
    conditions = [
        ("iid / append", "append", lambda: IIDFailures(FRACTION)),
        ("random batch / append", "append", lambda: RandomBatchFailures(FRACTION)),
        ("cohort / append", "append", lambda: CohortBatchFailures(FRACTION)),
        ("cohort / uniform-insert", "uniform", lambda: CohortBatchFailures(FRACTION)),
    ]
    rows = []
    results = {}
    for index, (label, mode, model_factory) in enumerate(conditions):
        losses, disconnects = [], []
        for repeat in range(REPEATS):
            seed = 100 * repeat + 13 * index
            loss, disconnect = _condition(mode, model_factory(), seed)
            losses.append(loss)
            disconnects.append(disconnect)
        results[label] = (float(np.mean(losses)), float(np.mean(disconnects)))
        rows.append([label, FRACTION, results[label][0], results[label][1]])
    return rows, results


def test_e5_adversarial(benchmark):
    rows, results = run_once(benchmark, experiment)
    emit_table(
        "e5_adversarial",
        ["condition", "failed fraction", "mean loss / thread", "fully disconnected"],
        rows,
        title=f"E5 — §5 adversaries (k={K}, d={D}, N={N})",
    )
    iid_loss = results["iid / append"][0]
    attack_loss = results["cohort / append"][0]
    hardened_loss = results["cohort / uniform-insert"][0]
    # the coordinated cohort really is an attack under append ordering...
    assert attack_loss >= 2.0 * iid_loss
    # ...and §5's random row insertion contains it back to ~iid levels
    assert hardened_loss <= 1.5 * iid_loss + 0.02
    # benign conditions sit near the paper's ≈ p per-thread loss level
    for label, (loss, _) in results.items():
        if label != "cohort / append":
            assert loss <= 2.0 * FRACTION
