"""E3 — Theorem 5: collapse time grows exponentially in k/d³.

The abstract Lemma-8 walk (worst-case up-jumps, guaranteed contraction)
is run to collapse across a k sweep at fixed d and large pd, where
collapses are observable; log(mean steps) must grow roughly linearly in
k/d³.  One real-network collapse point (tiny k, extreme p) confirms the
full system collapses the same way.
"""

import math

import numpy as np

from repro.theory import (
    collapse_exponent,
    mean_walk_collapse_time,
    measure_collapse_time,
)

from conftest import emit_table, run_once

K_SWEEP = (10, 14, 18, 22, 26)
D = 2
# p is chosen so the walk has a shallow metastability barrier across the
# whole k sweep: collapses are observable at small k and grow steeply
# (exponentially) with k, which is the Theorem 5 shape.
P = 0.03
RUNS = 30
MAX_STEPS = 400_000


def experiment():
    rows = []
    rng = np.random.default_rng(314)
    for k in K_SWEEP:
        mean_steps, censored = mean_walk_collapse_time(
            k=k, d=D, p=P, runs=RUNS, rng=rng, max_steps=MAX_STEPS
        )
        rows.append([
            k, D, P, collapse_exponent(k, D),
            mean_steps, math.log(mean_steps), censored,
        ])
    real = measure_collapse_time(
        k=8, d=2, p=0.6, seed=5, max_steps=4000, check_every=25,
        defect_samples=40, threshold=0.5,
    )
    return rows, real


def test_e3_collapse_time(benchmark):
    rows, real = run_once(benchmark, experiment)
    emit_table(
        "e3_collapse_time",
        ["k", "d", "p", "k/d^3", "mean collapse steps", "log(steps)", "censored runs"],
        rows,
        title=(
            "E3 — Theorem 5: abstract-walk collapse time vs k/d^3\n"
            f"(real network k=8 d=2 p=0.6: collapsed={real.collapsed} "
            f"after {real.steps} steps)"
        ),
    )
    logs = [row[5] for row in rows]
    # log(steps) increases monotonically with k (exponential scaling shape)
    assert all(b > a for a, b in zip(logs, logs[1:]))
    # and the growth is at least roughly linear: total growth over the
    # sweep exceeds 1.5 nats
    assert logs[-1] - logs[0] > 1.5
    assert real.collapsed
