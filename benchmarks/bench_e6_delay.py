"""E6 — §6: delay of the acyclic curtain model vs alternatives.

Measures pipeline depth across doubling populations for: the curtain
overlay (shortest-path and worst-case longest-path), the §6 random-graph
variant, and the SplitStream-style striped trees.  Expected shape:
curtain depth grows linearly in N (chains of expected length N·d/k);
random-graph and tree depths grow logarithmically.
"""


from repro.analysis import delay_profile, pipeline_depth_profile
from repro.baselines import StripedTrees
from repro.core import OverlayNetwork, RandomGraphOverlay

from conftest import emit_table, run_once

K, D = 12, 3
POPULATIONS = (100, 200, 400, 800, 1600)


def experiment():
    rows = []
    curtain_max = {}
    random_max = {}
    for n in POPULATIONS:
        net = OverlayNetwork(k=K, d=D, seed=61)
        net.grow(n)
        graph = net.graph()
        shortest = delay_profile(graph)
        longest = pipeline_depth_profile(graph)
        overlay = RandomGraphOverlay(k=K, d=D, seed=62)
        overlay.grow(n)
        random_profile = delay_profile(overlay.to_overlay_graph())
        trees = StripedTrees(d=D, population=n)
        rows.append([
            n,
            shortest.mean_depth, shortest.max_depth,
            longest.max_depth,
            random_profile.mean_depth, random_profile.max_depth,
            trees.max_depth(),
        ])
        curtain_max[n] = shortest.max_depth
        random_max[n] = random_profile.max_depth
    return rows, curtain_max, random_max


def test_e6_delay(benchmark):
    rows, curtain_max, random_max = run_once(benchmark, experiment)
    emit_table(
        "e6_delay",
        ["N", "curtain mean", "curtain max", "curtain pipeline max",
         "randgraph mean", "randgraph max", "trees max"],
        rows,
        title=f"E6 — §6 delay scaling (k={K}, d={D})",
    )
    first, last = POPULATIONS[0], POPULATIONS[-1]
    growth = last / first  # 16x population
    # curtain: linear growth (at least half the population ratio)
    assert curtain_max[last] >= 0.4 * growth * curtain_max[first]
    # random graph: logarithmic growth (far below the population ratio)
    assert random_max[last] <= 4 * random_max[first]
