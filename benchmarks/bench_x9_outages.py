"""X9 — ergodic failures: bursty outages vs uniform packet loss.

§2 folds two different ergodic phenomena into one parameter: per-packet
loss and per-node *outages* (congestion episodes, competing traffic).
At equal long-run delivery ratio they are not equivalent for streaming:
an outage silences all of a node's threads *simultaneously and for
consecutive slots*, which is exactly the correlated burst that deadline-
driven playback hates, while uniform loss spreads the same damage thinly
across time and threads where RLNC shrugs it off.

We fix the average delivery ratio and compare download completion and
playback continuity under (a) uniform loss and (b) on/off outages of
increasing burst length.
"""

import numpy as np

from repro.coding import GenerationParams
from repro.core import OverlayNetwork
from repro.sim import BroadcastSimulation, LossModel, OutageModel, PlaybackMonitor

from conftest import emit_table, run_once

K, D, N = 12, 3, 30
TARGET_UNAVAILABILITY = 0.10  # long-run fraction of node-time silenced
BURSTS = (2.0, 5.0, 10.0)  # mean outage durations in slots
SLOTS = 240


def _run(condition: str, mean_burst: float, seed: int):
    net = OverlayNetwork(k=K, d=D, seed=seed)
    net.grow(N)
    rng = np.random.default_rng(seed + 1)
    content = bytes(rng.integers(0, 256, size=6000, dtype=np.uint8))
    loss = None
    outage = None
    if condition == "loss":
        loss = LossModel(TARGET_UNAVAILABILITY)
    else:
        recovery = 1.0 / mean_burst
        onset = TARGET_UNAVAILABILITY * recovery / (1.0 - TARGET_UNAVAILABILITY)
        outage = OutageModel(onset=onset, recovery=recovery)
    sim = BroadcastSimulation(
        net, content, GenerationParams(10, 60), seed=seed + 2,
        loss=loss, outage=outage,
    )
    monitor = PlaybackMonitor(sim=sim, window=8, startup_delay=15)
    monitor.run(SLOTS)
    continuity = list(monitor.continuity_summary().values())
    report = sim.report()
    return (
        report.completion_fraction,
        float(np.mean(continuity)) if continuity else 0.0,
    )


def experiment():
    rows = []
    results = {}
    conditions = [("uniform loss", 0.0)] + [
        (f"outage bursts ~{int(b)} slots", b) for b in BURSTS
    ]
    for label, burst in conditions:
        condition = "loss" if burst == 0.0 else "outage"
        completions, continuities = zip(
            *(_run(condition, burst, 5100 + int(burst * 10) + r)
              for r in range(3))
        )
        results[label] = (float(np.mean(completions)),
                          float(np.mean(continuities)))
        rows.append([label, TARGET_UNAVAILABILITY, *results[label]])
    return rows, results


def test_x9_outages(benchmark):
    rows, results = run_once(benchmark, experiment)
    emit_table(
        "x9_outages",
        ["condition", "unavailability", "completion", "mean continuity"],
        rows,
        title=(
            f"X9 — equal {TARGET_UNAVAILABILITY:.0%} unavailability, "
            f"different burstiness (k={K}, d={D}, N={N}, {SLOTS} slots)"
        ),
    )
    uniform = results["uniform loss"]
    longest = results[f"outage bursts ~{int(BURSTS[-1])} slots"]
    # uniform loss barely dents continuity; long correlated bursts do
    assert uniform[1] >= longest[1]
    assert uniform[1] - longest[1] > 0.03
    # downloads still complete under every condition (RLNC robustness)
    for completion, _ in results.values():
        assert completion >= 0.9