"""X7 — the protocols as deployed: repair latency and server load.

The actor-level simulation (keep-alives, complaints, probes) measures
what the matrix-level control plane cannot:

* repair latency distribution — crash to all-children-reattached, which
  the paper's model abstracts as "the repair interval" and bounds every
  theorem by.  Here it is silence_timeout + probe + a few RTTs,
  independent of N;
* the server's control-plane load — messages and bytes per peer per
  second, flat in N (the "very small data load on the server" claim,
  now with concrete bytes).
"""

import numpy as np

from repro.protocol_sim import ProtocolConfig, ProtocolSimulation

from conftest import emit_table, run_once

POPULATIONS = (30, 60, 120)
CRASHES = 6
OBSERVE = 20.0  # seconds of simulated steady-state


def _run(population: int, seed: int):
    sim = ProtocolSimulation(ProtocolConfig(k=16, d=3, seed=seed))
    sim.grow(population, settle=3.0)
    assert sim.consistency_check()
    # steady-state observation window for load measurement
    control_before = _control_messages(sim)
    sim.run(OBSERVE)
    control_after = _control_messages(sim)
    load_per_peer = (control_after - control_before) / (OBSERVE * population)
    # crash a handful of parents, one at a time
    rng = np.random.default_rng(seed + 1)
    latencies = []
    for _ in range(CRASHES):
        parents = [
            n for n in sim.core.matrix.node_ids
            if sim.peers[n].alive
            and any(c is not None
                    for c in sim.core.matrix.children_of(n).values())
        ]
        victim = parents[int(rng.integers(0, len(parents)))]
        before = len(sim.completed_repairs())
        sim.crash(victim)
        sim.run(5.0)
        records = sim.completed_repairs()
        if len(records) > before:
            latencies.append(records[-1].repair_latency)
    assert sim.consistency_check()
    return latencies, load_per_peer


def _control_messages(sim: ProtocolSimulation) -> int:
    stats = sim.network.stats
    return stats.total_messages() - stats.messages.get("KeepAlive", 0)


def experiment():
    rows = []
    loads = {}
    for population in POPULATIONS:
        latencies, load = _run(population, 8000 + population)
        loads[population] = load
        rows.append([
            population,
            float(np.mean(latencies)),
            float(np.max(latencies)),
            len(latencies),
            load,
        ])
    return rows, loads


def test_x7_protocol(benchmark):
    rows, loads = run_once(benchmark, experiment)
    emit_table(
        "x7_protocol",
        ["N", "mean repair latency (s)", "max repair latency (s)",
         "repairs observed", "control msgs / peer / s (steady)"],
        rows,
        title=(
            "X7 — deployed protocol: repair latency and server control load"
            " (silence 0.5s, probe 0.3s, RTT ~0.06s)"
        ),
    )
    latencies = [row[1] for row in rows]
    # repair latency is set by timers, not by N: flat across populations
    assert max(latencies) - min(latencies) < 0.5
    for latency in latencies:
        assert latency < 2.0
    # steady-state control load per peer is tiny and flat in N
    values = list(loads.values())
    assert all(v < 1.0 for v in values)