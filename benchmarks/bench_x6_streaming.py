"""X6 — §7's streaming advice, measured as playback quality.

"If one wants a more consistent bandwidth (e.g., for Internet radio or
video on demand), then a larger d would be a better choice."  At a fixed
total server bandwidth and fixed per-node bandwidth, we sweep how finely
that bandwidth is split into threads (d) and play the stream against
per-generation deadlines under iid failures with periodic repair.  E9
showed loss *variance* falls as 1/d; here that becomes fewer playback
stalls — the user-facing form of the claim.
"""

import numpy as np

from repro.coding import GenerationParams
from repro.core import OverlayNetwork
from repro.sim import BroadcastSimulation
from repro.sim.streaming import PlaybackMonitor

from conftest import emit_table, run_once

D_SWEEP = (2, 4, 8)
POPULATION = 40
REPEATS = 3
FAIL_P = 0.02
REPAIR_INTERVAL = 10
SLOTS = 260


def _continuities(d: int, seed: int) -> list[float]:
    # Fixed physical bandwidths: server = 48 units, node = 8 units of
    # which d threads are used; generation geometry scales with d so the
    # content *rate* (bytes per slot of playback) is constant.
    net = OverlayNetwork(k=16 * d // 2, d=d, seed=seed)
    net.grow(POPULATION)
    rng = np.random.default_rng(seed + 1)
    content = bytes(rng.integers(0, 256, size=16_000, dtype=np.uint8))
    sim = BroadcastSimulation(
        net, content,
        GenerationParams(generation_size=2 * d, payload_size=16_000 // (10 * 2 * d)),
        seed=seed + 2,
    )
    # Every d receives 2d packets/generation at d packets/slot: 2 slots of
    # air-time per generation at full rate.  The same 6-slot window (3x
    # slack) applies to every d — deadlines are equally tight everywhere.
    monitor = PlaybackMonitor(sim=sim, window=6, startup_delay=12)
    dynamics = np.random.default_rng(seed + 3)
    for slot in range(SLOTS):
        if REPAIR_INTERVAL and slot and slot % REPAIR_INTERVAL == 0:
            net.repair_all()
            for node in list(net.working_nodes):
                if dynamics.random() < FAIL_P:
                    net.fail(node)
        monitor.step()
    net.repair_all()
    return list(monitor.continuity_summary().values())


def experiment():
    rows = []
    stats = {}
    for d in D_SWEEP:
        values = []
        for repeat in range(REPEATS):
            values.extend(_continuities(d, 7000 + 13 * d + repeat))
        mean = float(np.mean(values))
        stall_rate = 1.0 - mean
        perfect = float(np.mean([v == 1.0 for v in values]))
        stats[d] = (mean, stall_rate, perfect)
        rows.append([d, mean, stall_rate, perfect])
    return rows, stats


def test_x6_streaming(benchmark):
    rows, stats = run_once(benchmark, experiment)
    emit_table(
        "x6_streaming",
        ["d", "mean continuity", "stall rate", "stall-free viewers"],
        rows,
        title=(
            f"X6 — playback continuity vs d (N={POPULATION}, p={FAIL_P} per "
            f"{REPAIR_INTERVAL}-slot repair interval)"
        ),
    )
    # larger d must not stall more; the largest d should beat the smallest
    assert stats[D_SWEEP[-1]][1] <= stats[D_SWEEP[0]][1] + 0.02
    assert stats[D_SWEEP[-1]][2] >= stats[D_SWEEP[0]][2] - 0.02