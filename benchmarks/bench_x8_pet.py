"""X8 — §5 end to end: heterogeneous classes + PET graceful degradation.

A mixed swarm (DSL d=2, cable d=4, T1 d=8) receives a 3-layer
priority-encoded broadcast (thresholds 2/4/8 stripes).  The data plane
is RLNC, so a node's deliverable rate equals its edge-connectivity from
the server (the network-coding theorem); by the MDS property, receiving
``r`` units of coded rate is as good as holding any ``r`` PET stripes.
Quality per node = the PET staircase evaluated at its connectivity.

Expected shape: at rest, quality equals bandwidth class exactly; under
batch failures degradation is a monotone staircase, and the *slack*
``d − m_base`` protects the base layer — T1 viewers essentially never
lose the broadcast, DSL viewers (zero slack) lose base exactly when a
parent dies.
"""

import numpy as np

from repro.coding.pet import PETEncoder, PETLayer
from repro.core import BandwidthClass, OverlayNetwork, join_population
from repro.failures import RandomBatchFailures, apply_failures

from conftest import emit_table, run_once

K = 32
CLASSES = (
    BandwidthClass("dsl", 2),
    BandwidthClass("cable", 4),
    BandwidthClass("t1", 8),
)
THRESHOLDS = {"base": 2, "mid": 4, "full": 8}
POPULATION = 150
FAIL_SWEEP = (0.0, 0.1, 0.2)
REPEATS = 3


def _build_pet(rng) -> PETEncoder:
    layers = [
        PETLayer(name, threshold=m,
                 data=bytes(rng.integers(0, 256, size=50 * m, dtype=np.uint8)))
        for name, m in THRESHOLDS.items()
    ]
    return PETEncoder(layers, n=max(THRESHOLDS.values()))


def _class_quality(fraction: float, seed: int):
    net = OverlayNetwork(k=K, d=4, seed=seed)
    rng = np.random.default_rng(seed + 1)
    membership = join_population(net, list(CLASSES), weights=[3, 2, 1],
                                 count=POPULATION, rng=rng)
    encoder = _build_pet(rng)
    if fraction:
        apply_failures(net, RandomBatchFailures(fraction), rng)
    failed = net.failed
    connectivities = net.connectivities(
        [n for n in membership if n not in failed]
    )
    outcome = {cls.name: {name: 0 for name in THRESHOLDS} | {"n": 0}
               for cls in CLASSES}
    for node, cls in membership.items():
        if node in failed:
            continue
        rate_units = connectivities[node]
        outcome[cls.name]["n"] += 1
        for layer in encoder.decodable_layers(rate_units):
            outcome[cls.name][layer] += 1
    return outcome


def experiment():
    summary = {}
    for fraction in FAIL_SWEEP:
        for repeat in range(REPEATS):
            outcome = _class_quality(fraction,
                                     9000 + int(fraction * 100) + repeat)
            for cls in CLASSES:
                data = outcome[cls.name]
                key = (fraction, cls.name)
                previous = summary.get(key, (0.0, 0.0, 0.0, 0))
                n = data["n"]
                summary[key] = (
                    previous[0] + data["base"],
                    previous[1] + data["mid"],
                    previous[2] + data["full"],
                    previous[3] + n,
                )
    rows = []
    fractions = {}
    for (fraction, name), (base, mid, full, n) in sorted(summary.items()):
        cls = next(c for c in CLASSES if c.name == name)
        n = max(1, n)
        fractions[(fraction, name)] = (base / n, mid / n, full / n)
        rows.append([fraction, name, cls.degree, base / n, mid / n, full / n])
    rows.sort(key=lambda r: (r[0], r[2]))
    return rows, fractions


def test_x8_pet(benchmark):
    rows, summary = run_once(benchmark, experiment)
    emit_table(
        "x8_pet",
        ["fail frac", "class", "d", "base (m=2)", "mid (m=4)", "full (m=8)"],
        rows,
        title=(
            f"X8 — PET quality by bandwidth class (RLNC rate = connectivity; "
            f"k={K}, N={POPULATION})"
        ),
    )
    # healthy network: quality == bandwidth class, exactly
    assert summary[(0.0, "dsl")] == (1.0, 0.0, 0.0)
    assert summary[(0.0, "cable")] == (1.0, 1.0, 0.0)
    assert summary[(0.0, "t1")] == (1.0, 1.0, 1.0)
    # slack protects the base layer: t1 (slack 6) never loses it, cable
    # (slack 2) keeps it more often than dsl (slack 0)
    for fraction in FAIL_SWEEP[1:]:
        assert summary[(fraction, "t1")][0] >= 0.95
        assert summary[(fraction, "cable")][0] >= summary[(fraction, "dsl")][0]
    # degradation is monotone in the failure rate (per class/layer)
    for cls in CLASSES:
        for layer_index in range(3):
            series = [summary[(f, cls.name)][layer_index] for f in FAIL_SWEEP]
            assert all(b <= a + 0.02 for a, b in zip(series, series[1:]))
