"""E4 — Lemmas 6 & 7: per-arrival defect jumps and the drift direction.

Runs the arrival process on a small network where the total defect can
be enumerated *exactly* after every step, then checks:

* Lemma 6 — no single arrival ever moved B/A by more than d²/k;
* Lemma 7 — binned by the pre-step defect level b, the empirical mean
  step E[Δb | b] sits at or below the drift bound f(b).
"""

import numpy as np

from repro.analysis import exact_defect
from repro.core import OverlayNetwork
from repro.theory import DriftParameters, drift, lemma6_max_jump_fraction

from conftest import emit_table, run_once

K, D, P = 10, 2, 0.25
STEPS = 260
RUNS = 3
BINS = [(0.0, 0.1), (0.1, 0.2), (0.2, 0.35), (0.35, 0.6)]


def _trajectory(seed: int):
    net = OverlayNetwork(k=K, d=D, seed=seed)
    rng = np.random.default_rng(seed + 1)
    levels = [0.0]
    for _ in range(STEPS):
        grant = net.join()
        if rng.random() < P:
            net.fail(grant.node_id)
        summary = exact_defect(net.matrix, D, net.failed)
        levels.append(summary.mean_defect)  # == B/A
    return np.asarray(levels)


def experiment():
    steps_by_bin = {b: [] for b in BINS}
    max_jump = 0.0
    for seed in range(RUNS):
        levels = _trajectory(10 + seed)
        deltas = np.diff(levels)
        max_jump = max(max_jump, float(np.abs(deltas).max()))
        for before, delta in zip(levels[:-1], deltas):
            for low, high in BINS:
                if low <= before < high:
                    steps_by_bin[(low, high)].append(delta)
    params = DriftParameters(k=K, d=D, p=P)
    rows = []
    for (low, high), deltas in steps_by_bin.items():
        if not deltas:
            continue
        centre = (low + high) / 2
        rows.append([
            f"[{low}, {high})",
            len(deltas),
            float(np.mean(deltas)),
            float(drift(params, centre)),
        ])
    return rows, max_jump


def test_e4_drift(benchmark):
    rows, max_jump = run_once(benchmark, experiment)
    bound = lemma6_max_jump_fraction(K, D)
    emit_table(
        "e4_drift",
        ["b bin", "samples", "measured E[db]", "f(b) bound (Lemma 7)"],
        rows,
        title=(
            f"E4 — Lemma 6/7: exact defect steps (k={K}, d={D}, p={P})\n"
            f"max |db| observed = {max_jump:.4f}, Lemma 6 bound = {bound:.4f}"
        ),
    )
    assert max_jump <= bound + 1e-9
    for _, samples, measured, f_bound in rows:
        if samples >= 30:
            # allow Monte-Carlo slack of a few jump quanta
            assert measured <= f_bound + 3.0 * bound / np.sqrt(samples)
