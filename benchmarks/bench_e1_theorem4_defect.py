"""E1 — Theorem 4: steady-state defect E[B^t]/A ≤ (1+ε)·p·d.

Grows a network by sequential arrivals (each failed with probability p,
tags persisting per the §4 process) and measures the normalised total
defect of the hanging-thread pool by Monte-Carlo tuple sampling.  The
measured level should track the paper's attractor a₁ ≈ pd, independent
of d and p across the sweep.
"""

import numpy as np

from repro.analysis import sampled_defect
from repro.core import OverlayNetwork, sequential_arrivals
from repro.theory import theorem4_prediction

from conftest import emit_table, run_once

SWEEP = [
    (2, 0.005), (2, 0.01), (2, 0.02),
    (3, 0.005), (3, 0.01), (3, 0.02),
]
ARRIVALS = 700
SAMPLES = 400


def _measure(d: int, p: float, seed: int) -> float:
    k = 8 * d * d
    # decorrelate streams across sweep points, not just across repeats
    seed = seed + 1000 * d + int(p * 100_000)
    net = OverlayNetwork(k=k, d=d, seed=seed)
    rng = np.random.default_rng(seed + 1)
    sequential_arrivals(net, ARRIVALS, p=p, rng=rng, repair_interval=None)
    summary = sampled_defect(net.matrix, d, rng, samples=SAMPLES,
                             failed=net.failed)
    return summary.mean_defect


def experiment():
    rows = []
    for d, p in SWEEP:
        k = 8 * d * d
        measured = float(np.mean([_measure(d, p, seed) for seed in (1, 2, 3)]))
        prediction = theorem4_prediction(k, d, p)
        rows.append([
            k, d, p,
            measured,
            prediction.naive,           # pd
            prediction.attractor,       # numeric root a1
            measured <= 2.0 * max(prediction.attractor, prediction.naive),
        ])
    return rows


def test_e1_theorem4_defect(benchmark):
    rows = run_once(benchmark, experiment)
    emit_table(
        "e1_theorem4_defect",
        ["k", "d", "p", "measured B/A", "pd (paper)", "a1 (drift root)", "within bound"],
        rows,
        title="E1 — Theorem 4: steady-state normalised defect vs pd",
    )
    assert all(row[-1] for row in rows)
