"""E2 — Lemmas 2 & 3: a fresh arrival's expected bandwidth loss ≈ pd.

Grows a network under the §4 process, then probes it: hypothetical
arrivals draw random d-tuples of hanging threads and we record their
connectivity shortfall.  Lemma 2 predicts the bad-tuple probability and
Lemma 3 the expected loss, both ≈ E[B]/A ≈ pd.
"""

import numpy as np

from repro.analysis import TupleConnectivitySolver
from repro.core import OverlayNetwork, sequential_arrivals

from conftest import emit_table, run_once

SWEEP = [(2, 0.01), (2, 0.03), (3, 0.01), (3, 0.03)]
ARRIVALS = 600
PROBES = 500


def _probe(d: int, p: float, seed: int) -> tuple[float, float]:
    k = 8 * d * d
    seed = seed + 7000 * d + int(p * 100_000)
    net = OverlayNetwork(k=k, d=d, seed=seed)
    rng = np.random.default_rng(seed + 1)
    sequential_arrivals(net, ARRIVALS, p=p, rng=rng, repair_interval=None)
    solver = TupleConnectivitySolver(net.matrix, net.failed)
    losses = []
    for _ in range(PROBES):
        columns = [int(c) for c in rng.choice(k, size=d, replace=False)]
        losses.append(solver.defect(columns))
    losses = np.asarray(losses, dtype=float)
    return float(losses.mean()), float((losses > 0).mean())


def experiment():
    rows = []
    for d, p in SWEEP:
        means, bads = zip(*(_probe(d, p, seed) for seed in (1, 2, 3)))
        mean_loss = float(np.mean(means))
        bad_probability = float(np.mean(bads))
        rows.append([
            8 * d * d, d, p,
            mean_loss, p * d,
            bad_probability,
            mean_loss <= 2.5 * p * d + 0.01,
        ])
    return rows


def test_e2_arrival_loss(benchmark):
    rows = run_once(benchmark, experiment)
    emit_table(
        "e2_arrival_loss",
        ["k", "d", "p", "mean loss (threads)", "pd (Lemma 3)",
         "P(bad tuple) (Lemma 2)", "within bound"],
        rows,
        title="E2 — Lemmas 2/3: fresh-arrival expected loss vs pd",
    )
    assert all(row[-1] for row in rows)
