"""E13 — codec micro-benchmarks (the Chou–Wu–Jain practicality claim).

True micro-benchmarks (multiple rounds, pytest-benchmark statistics) for
the three data-plane primitives at 1 KiB payloads, plus the coefficient
header overhead table across generation sizes.
"""

import numpy as np
import pytest

from repro.coding import Decoder, GenerationParams, Recoder, SourceEncoder

from conftest import emit_table

PAYLOAD = 1024
GENERATIONS = (16, 32, 64, 128)


def _setup(generation_size: int, seed: int = 7):
    rng = np.random.default_rng(seed)
    params = GenerationParams(generation_size=generation_size, payload_size=PAYLOAD)
    content = bytes(
        rng.integers(0, 256, size=generation_size * PAYLOAD, dtype=np.uint8)
    )
    encoder = SourceEncoder(content, params, rng)
    return params, encoder, rng


@pytest.mark.parametrize("generation_size", (16, 64))
def test_e13_encode_throughput(benchmark, generation_size):
    _, encoder, _ = _setup(generation_size)
    packet = benchmark(encoder.emit, 0)
    assert packet.payload_size == PAYLOAD


@pytest.mark.parametrize("generation_size", (16, 64))
def test_e13_recode_throughput(benchmark, generation_size):
    params, encoder, rng = _setup(generation_size)
    recoder = Recoder(params, 1, rng)
    for _ in range(generation_size):
        recoder.receive(encoder.emit(0))
    packet = benchmark(recoder.emit, 0)
    assert packet is not None


@pytest.mark.parametrize("generation_size", (16, 64))
def test_e13_decode_throughput(benchmark, generation_size):
    """Time a full generation decode (g innovative pushes)."""
    params, encoder, _ = _setup(generation_size)
    packets = [encoder.emit(0) for _ in range(generation_size + 8)]

    def decode_generation():
        decoder = Decoder(params, 1)
        for packet in packets:
            if decoder.is_complete:
                break
            decoder.push(packet)
        return decoder

    decoder = benchmark(decode_generation)
    assert decoder.is_complete


def test_e13_overhead_table(benchmark):
    def build_rows():
        rows = []
        for generation_size in GENERATIONS:
            _, encoder, _ = _setup(generation_size)
            packet = encoder.emit(0)
            rows.append([
                generation_size,
                PAYLOAD,
                packet.wire_size(),
                packet.header_overhead,
            ])
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    emit_table(
        "e13_overhead",
        ["generation size", "payload B", "wire B", "header overhead"],
        rows,
        title="E13 — coefficient header overhead vs generation size",
    )
    overheads = [row[3] for row in rows]
    # overhead grows with generation size but stays modest at 1 KiB payloads
    assert overheads == sorted(overheads)
    assert overheads[-1] < 0.15
