"""E12 — §5 congestion handling and §3 protocol costs.

Two measurements:

* protocol cost — messages per membership event over a long churn run:
  each hello / good-bye / repair must cost O(d) redirects, independent of
  N (the "very small data load on the server" claim);
* congestion hysteresis — a congested cohort sheds threads, the overlay
  stays consistent and fully connected at reduced degree, and the cohort
  recovers its nominal degree after calm.
"""

import numpy as np

from repro.core import CongestionController, OverlayNetwork, churn_epochs

from conftest import emit_table, run_once

K, D = 18, 3


def _protocol_cost(n: int, seed: int) -> tuple[float, float]:
    net = OverlayNetwork(k=K, d=D, seed=seed)
    net.grow(n)
    start_redirects = net.stats.redirects
    start_events = 0
    history = churn_epochs(
        net, epochs=10, join_rate=5, leave_probability=0.03,
        failure_probability=0.03, min_population=20,
    )
    events = sum(h.joins + h.graceful_leaves + h.repairs for h in history)
    redirects = net.stats.redirects - start_redirects
    return redirects / events, float(net.population)


def _congestion_cycle(seed: int):
    net = OverlayNetwork(k=K, d=D, seed=seed)
    net.grow(60)
    controller = CongestionController(net.server, drop_after=2, restore_after=3)
    cohort = net.matrix.node_ids[10:25]
    # congestion phase: cohort reports congested for 6 rounds
    for _ in range(6):
        for node in cohort:
            controller.observe(node, congested=True)
    shed_degrees = [net.matrix.row(node).degree for node in cohort]
    net.matrix.check_invariants()
    connect_during = min(net.connectivities().values())
    # calm phase: 12 quiet rounds
    for _ in range(12):
        for node in cohort:
            controller.observe(node, congested=False)
    restored_degrees = [net.matrix.row(node).degree for node in cohort]
    return (
        float(np.mean(shed_degrees)),
        connect_during,
        float(np.mean(restored_degrees)),
        len(controller.events),
    )


def experiment():
    cost_rows = []
    for n in (100, 400):
        per_event, population = _protocol_cost(n, 1200 + n)
        cost_rows.append([n, per_event, float(D)])
    shed, connect_during, restored, events = _congestion_cycle(1300)
    congestion_rows = [[shed, connect_during, restored, events]]
    return cost_rows, congestion_rows


def test_e12_congestion(benchmark):
    cost_rows, congestion_rows = run_once(benchmark, experiment)
    emit_table(
        "e12_protocol_cost",
        ["initial N", "redirects / membership event", "d (O(d) claim)"],
        cost_rows,
        title=f"E12a — protocol cost under churn (k={K}, d={D})",
    )
    emit_table(
        "e12_congestion",
        ["mean degree after shedding", "min connectivity during",
         "mean degree after recovery", "controller events"],
        congestion_rows,
        title="E12b — §5 congestion shed/restore cycle (60 nodes, 15 congested)",
    )
    # O(d): redirects per event bounded by ~d and flat in N
    per_event = [row[1] for row in cost_rows]
    assert all(cost <= D + 1 for cost in per_event)
    assert abs(per_event[0] - per_event[1]) < 1.0
    shed, connect_during, restored, _ = congestion_rows[0]
    assert shed < D  # threads actually shed
    assert connect_during >= 1  # nobody fully disconnected by congestion
    assert restored == D  # nominal degree recovered after calm
