"""E10 — Lemma 1: graceful leaves preserve the matrix distribution.

Two ensembles of final size N: (a) N joins, no leaves; (b) N + L joins
with L uniformly chosen graceful leaves interleaved.  Lemma 1 says the
final matrices are identically distributed.  We compare two observables
across many seeded runs:

* the per-column occupancy-count distribution (chi-square homogeneity);
* the distribution of hanging-thread ownership depth (KS test).
"""

import numpy as np

from repro.analysis import chi_square_same_distribution, ks_same_distribution
from repro.core import OverlayNetwork

from conftest import emit_table, run_once

K, D, N, EXTRA = 10, 2, 30, 15
RUNS = 120


def _observables(seed: int, churned: bool):
    net = OverlayNetwork(k=K, d=D, seed=seed)
    if churned:
        rng = np.random.default_rng(seed + 10_000)
        joined = 0
        left = 0
        # interleave joins and leaves at random, ending at N rows
        while joined < N + EXTRA or left < EXTRA:
            can_leave = left < EXTRA and net.population > 1
            if joined < N + EXTRA and (not can_leave or rng.random() < 0.67):
                net.join()
                joined += 1
            elif can_leave:
                net.leave(net.random_working_node())
                left += 1
    else:
        net.grow(N)
    loads = [len(net.matrix.column_chain(c)) for c in range(K)]
    depths = net.graph().depths_from_server()
    owner_depths = [
        depths[owner]
        for owner in net.matrix.hanging_owners()
        if owner != -1
    ]
    return loads, owner_depths


def experiment():
    max_load = 0
    data = {}
    for churned in (False, True):
        loads, owner_depths = [], []
        for run in range(RUNS):
            run_loads, run_depths = _observables(3_000 + run, churned)
            loads.extend(run_loads)
            owner_depths.extend(run_depths)
        data[churned] = (loads, owner_depths)
        max_load = max(max_load, max(loads))
    bins = range(max_load + 2)
    direct_hist = np.histogram(data[False][0], bins=bins)[0]
    churned_hist = np.histogram(data[True][0], bins=bins)[0]
    chi2, chi2_p = chi_square_same_distribution(direct_hist, churned_hist)
    ks, ks_p = ks_same_distribution(data[False][1], data[True][1])
    rows = [
        ["column loads (chi-square)", chi2, chi2_p],
        ["hanging-owner depth (KS)", ks, ks_p],
    ]
    return rows


def test_e10_leave_invariance(benchmark):
    rows = run_once(benchmark, experiment)
    emit_table(
        "e10_leave_invariance",
        ["observable", "statistic", "p-value"],
        rows,
        title=(
            f"E10 — Lemma 1: {N}-join ensemble vs {N + EXTRA}-join/"
            f"{EXTRA}-leave ensemble ({RUNS} runs each)"
        ),
    )
    # the distributions must be statistically indistinguishable
    for _, _, p_value in rows:
        assert p_value > 0.01
