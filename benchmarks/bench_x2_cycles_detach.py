"""X2 — ablation: acyclic curtain vs §6 cyclic random graph, end to end.

Same population, same content, same codec, two topologies:

* completion time (the delay story of E6, now measured on the real data
  plane rather than hop counts);
* goodput efficiency (cycles can recirculate non-innovative mixtures —
  §6's "small loss of throughput");
* §6's self-sustainability: detach the server once the swarm
  collectively holds every degree of freedom.  The cyclic swarm finishes
  alone; the acyclic curtain starves its top and cannot.
"""

import numpy as np

from repro.coding import GenerationParams
from repro.core import OverlayNetwork, RandomGraphOverlay
from repro.sim import BroadcastSimulation, GraphBroadcastSimulation

from conftest import emit_table, run_once

K, D, N = 12, 3, 120
GENERATION, PAYLOAD = 10, 100
CONTENT = 3_000


def _content(seed):
    rng = np.random.default_rng(seed)
    return bytes(rng.integers(0, 256, size=CONTENT, dtype=np.uint8))


def _efficiency(report):
    received = sum(n.received for n in report.nodes)
    innovative = sum(n.innovative for n in report.nodes)
    return innovative / received if received else 1.0


def experiment():
    content = _content(31)
    params = GenerationParams(GENERATION, PAYLOAD)

    # curtain
    net = OverlayNetwork(k=K, d=D, seed=32)
    net.grow(N)
    curtain = BroadcastSimulation(net, content, params, seed=33)
    curtain_report = curtain.run_until_complete(max_slots=2000)

    # random graph
    overlay = RandomGraphOverlay(k=K, d=D, seed=32)
    overlay.grow(N)
    cyclic = GraphBroadcastSimulation(overlay, content, params, seed=33)
    cyclic_report = cyclic.run_until_complete(max_slots=2000)

    rows = [
        ["curtain (acyclic)",
         max(curtain_report.completion_slots()),
         _efficiency(curtain_report),
         curtain_report.completion_fraction],
        ["random graph (cyclic)",
         max(cyclic_report.completion_slots()),
         _efficiency(cyclic_report),
         cyclic_report.completion_fraction],
    ]

    # self-sustainability after detach
    detach_rows = []
    net2 = OverlayNetwork(k=K, d=D, seed=34)
    net2.grow(40)
    sim2 = BroadcastSimulation(net2, content, params, seed=35)
    while not sim2.swarm_has_full_rank():
        sim2.step()
    sim2.detach_server()
    report2 = sim2.run_until_complete(max_slots=800)
    detach_rows.append(["curtain (acyclic)", sim2.server_detach_slot,
                        report2.completion_fraction])

    overlay3 = RandomGraphOverlay(k=K, d=D, seed=34)
    overlay3.grow(40)
    sim3 = GraphBroadcastSimulation(overlay3, content, params, seed=35)
    while not sim3.swarm_has_full_rank():
        sim3.step()
    sim3.detach_server()
    report3 = sim3.run_until_complete(max_slots=800)
    detach_rows.append(["random graph (cyclic)", sim3.server_detach_slot,
                        report3.completion_fraction])
    return rows, detach_rows


def test_x2_cycles_detach(benchmark):
    rows, detach_rows = run_once(benchmark, experiment)
    emit_table(
        "x2_cycles",
        ["topology", "last completion slot", "innovation efficiency",
         "completion"],
        rows,
        title=f"X2a — data-plane delay/throughput (k={K}, d={D}, N={N})",
    )
    emit_table(
        "x2_detach",
        ["topology", "server detached at slot", "completion after detach"],
        detach_rows,
        title="X2b — §6 self-sustainability: server detaches at collective full rank",
    )
    curtain, cyclic = rows
    # cyclic topology completes (much) faster at this depth
    assert cyclic[1] < curtain[1]
    # both fully complete with the server attached
    assert curtain[3] == 1.0 and cyclic[3] == 1.0
    # detach: the cyclic swarm self-sustains, the acyclic one cannot
    assert detach_rows[1][2] == 1.0
    assert detach_rows[0][2] < 1.0
