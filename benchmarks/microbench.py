"""Microbenchmark harness for the RLNC hot paths.

Measures the three loops every experiment spends its time in and writes a
JSON perf snapshot so the trajectory across PRs is diffable:

* **decode** — progressive Gaussian-elimination throughput (packets/s)
  at generation sizes 16/32/64, against an inline re-implementation of
  the pre-kernel ("seed") decoder so the speedup is measured on the same
  machine under the same load;
* **recode** — random-mixture emit rate of a full-rank buffer, again
  vs the seed mixing code;
* **slot_loop** — wall clock of an E7-style `BroadcastSimulation` run
  (the paper's throughput experiment geometry);
* **runtime_overhead** — the same E7 run on today's unified
  `repro.sim.runtime` kernel, compared against the slot-loop numbers
  recorded in ``BENCH_PR1.json`` (captured before the five simulators
  were migrated onto the shared runtime) to bound the abstraction cost;
* **wire_batch** — batched pooled-buffer serialisation
  (``encode_packets_into``) and offset-cursor streaming decode
  (``read_frame_at``) vs the scalar codec and the tail-slicing
  ``read_frame`` loop;
* **recode_batch** — ``emit_batch`` (one mixing gemm per batch) vs the
  same number of sequential scalar ``emit`` calls, same run;
* **net_throughput** — end-to-end packets/s of one outbound pump over a
  real loopback TCP socket: the batched pipeline (``emit_batch`` →
  encode-once frames → coalesced ``writelines`` flush) vs the scalar
  per-packet path, plus the observed frames-per-flush ratio;
* **obs_overhead** — the same slot loop and sender enqueue path with
  and without ``repro.obs`` instrumentation attached, interleaved A/B
  slices in one process; the acceptance bar is a relative throughput
  of >= 0.98 on both arms (observability must cost <= 2%);
* **dataplane_overhead** — the per-packet ingest+pull pair through the
  sans-IO ``RelayEngine`` vs a faithful inline copy of the pre-refactor
  driver code, interleaved A/B; the acceptance bar is a relative
  throughput of >= 0.95;
* **scaling** — membership ops/s on the coordination server and
  slot-loop rates at populations 100 / 1k / 5k / 10k; the CI gate
  requires the server rate to degrade sublinearly in n (the indexed
  engine-state acceptance curve).

Usage::

    PYTHONPATH=src python benchmarks/microbench.py            # full run
    PYTHONPATH=src python benchmarks/microbench.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/microbench.py --out path.json

Output schema (stable across PRs — subsequent PRs write
``BENCH_PR<k>.json`` next to this one)::

    {bench_name: {metric: value}}

where every value is a number.  Seed-implementation numbers carry a
``_baseline`` suffix; ``speedup_*`` metrics are current/baseline ratios.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.coding.decoder import Decoder
from repro.coding.encoder import SourceEncoder
from repro.coding.generation import GenerationParams
from repro.core.overlay import OverlayNetwork
from repro.gf.tables import FIELD_SIZE, INV, MUL
from repro.sim.broadcast import BroadcastSimulation
from repro.sim.links import LossModel

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_PR10.json"
#: Perf snapshot recorded before the unified-runtime migration; the
#: runtime_overhead bench reads its slot-loop numbers as the reference.
PR1_SNAPSHOT = REPO_ROOT / "BENCH_PR1.json"
#: Perf snapshot recorded before the batched data plane; the CI gate
#: (benchmarks/check_bench.py) compares decode/recode speedups to it.
PR2_SNAPSHOT = REPO_ROOT / "BENCH_PR2.json"

DECODE_GENERATION_SIZES = (16, 32, 64)


# ----------------------------------------------------------------------
# Seed reference implementation
#
# A faithful inline copy of the decoder as it existed before the
# vectorised kernel layer (per-column Python reduction loop, scalar
# pivot search, per-row back-substitution, fancy-indexed mixing).  It is
# re-measured on every run so the ``*_baseline`` numbers reflect this
# machine and load, not a stale constant.


def _seed_addmul_row(dest: np.ndarray, src: np.ndarray, scalar: int) -> None:
    if scalar == 0:
        return
    if scalar == 1:
        np.bitwise_xor(dest, src, out=dest)
    else:
        np.bitwise_xor(dest, MUL[scalar, src], out=dest)


class SeedGenerationDecoder:
    """The pre-kernel progressive decoder, kept verbatim for baselines."""

    def __init__(self, generation_size: int, payload_size: int) -> None:
        self.size = generation_size
        width = generation_size + payload_size
        self._rows = np.zeros((generation_size, width), dtype=np.uint8)
        self._row_of_pivot: dict[int, int] = {}
        self.rank = 0

    @property
    def is_complete(self) -> bool:
        return self.rank == self.size

    def push(self, packet) -> bool:
        if self.is_complete:
            return False
        row = np.concatenate([packet.coefficients, packet.payload]).astype(np.uint8)
        for col in range(self.size):
            value = int(row[col])
            if value == 0:
                continue
            basis_row = self._row_of_pivot.get(col)
            if basis_row is None:
                continue
            _seed_addmul_row(row, self._rows[basis_row], value)
        pivot = -1
        for col in range(self.size):
            if row[col]:
                pivot = col
                break
        if pivot < 0:
            return False
        pivot_value = int(row[pivot])
        if pivot_value != 1:
            row = MUL[int(INV[pivot_value]), row]
        slot = self.rank
        self._rows[slot] = row
        self._row_of_pivot[pivot] = slot
        self.rank += 1
        for other in range(slot):
            value = int(self._rows[other][pivot])
            if value:
                _seed_addmul_row(self._rows[other], row, value)
        return True

    def random_combination(self, rng: np.random.Generator) -> np.ndarray:
        scalars = rng.integers(1, FIELD_SIZE, size=self.rank, dtype=np.uint8)
        mixed = MUL[scalars[:, None], self._rows[: self.rank]]
        combined = np.bitwise_xor.reduce(mixed, axis=0)
        return combined[: self.size].copy(), combined[self.size :].copy()


# ----------------------------------------------------------------------
# Timing helpers


def _timed_reps(fn, budget_s: float, min_reps: int = 3) -> tuple[int, float]:
    """Run ``fn`` repeatedly for ~``budget_s`` seconds; (reps, elapsed)."""
    fn()  # warm caches, allocate scratch
    reps = 0
    start = time.perf_counter()
    while True:
        fn()
        reps += 1
        elapsed = time.perf_counter() - start
        if elapsed >= budget_s and reps >= min_reps:
            return reps, elapsed


def _coded_stream(generation_size: int, payload_size: int, extra: int = 8):
    """A fixed seeded packet stream that completes one generation."""
    params = GenerationParams(generation_size, payload_size)
    rng = np.random.default_rng(4096 + generation_size)
    content = bytes(
        rng.integers(0, 256, size=generation_size * payload_size, dtype=np.uint8)
    )
    encoder = SourceEncoder(content, params, np.random.default_rng(7))
    return params, [encoder.emit() for _ in range(generation_size + extra)]


# ----------------------------------------------------------------------
# Benches


def bench_decode(budget_s: float, payload_size: int) -> dict[str, float]:
    """Progressive decode throughput, current vs seed, per generation size."""
    metrics: dict[str, float] = {}
    for size in DECODE_GENERATION_SIZES:
        params, packets = _coded_stream(size, payload_size)

        def run_current() -> None:
            decoder = Decoder(params, 1)
            for packet in packets:
                decoder.push(packet)
                if decoder.is_complete:
                    break
            assert decoder.is_complete

        def run_seed() -> None:
            decoder = SeedGenerationDecoder(size, payload_size)
            for packet in packets:
                decoder.push(packet)
                if decoder.is_complete:
                    break
            assert decoder.is_complete

        reps, elapsed = _timed_reps(run_current, budget_s)
        metrics[f"packets_per_s_g{size}"] = reps * size / elapsed
        reps, elapsed = _timed_reps(run_seed, budget_s)
        metrics[f"packets_per_s_g{size}_baseline"] = reps * size / elapsed
        metrics[f"speedup_g{size}"] = (
            metrics[f"packets_per_s_g{size}"]
            / metrics[f"packets_per_s_g{size}_baseline"]
        )
    return metrics


def bench_recode(budget_s: float, payload_size: int,
                 generation_size: int = 32, emits_per_rep: int = 64) -> dict[str, float]:
    """Random-mixture emit rate of a full-rank buffer, current vs seed."""
    params, packets = _coded_stream(generation_size, payload_size)
    current = Decoder(params, 1)
    seed = SeedGenerationDecoder(generation_size, payload_size)
    for packet in packets:
        current.push(packet)
        seed.push(packet)
    assert current.is_complete and seed.is_complete
    gen_decoder = current.generations[0]

    rng_current = np.random.default_rng(11)
    rng_seed = np.random.default_rng(11)

    def run_current() -> None:
        for _ in range(emits_per_rep):
            gen_decoder.random_combination(rng_current)

    def run_seed() -> None:
        for _ in range(emits_per_rep):
            seed.random_combination(rng_seed)

    metrics: dict[str, float] = {}
    reps, elapsed = _timed_reps(run_current, budget_s)
    metrics["emits_per_s"] = reps * emits_per_rep / elapsed
    reps, elapsed = _timed_reps(run_seed, budget_s)
    metrics["emits_per_s_baseline"] = reps * emits_per_rep / elapsed
    metrics["speedup"] = metrics["emits_per_s"] / metrics["emits_per_s_baseline"]
    return metrics


def bench_wire_batch(budget_s: float, payload_size: int,
                     generation_size: int = 64,
                     batch: int = 64) -> dict[str, float]:
    """Batched pooled codec vs the scalar per-frame codec.

    Encode: ``encode_packets_into`` into one leased buffer per batch vs
    one ``encode_packet`` (own allocation) per frame.  Decode: the
    offset-cursor ``read_frame_at`` walk vs the legacy tail-slicing
    ``read_frame`` loop over the same concatenated byte stream.
    """
    from repro.coding.buffers import BufferPool
    from repro.coding.wire import (
        encode_packet,
        encode_packets_into,
        read_frame,
        read_frame_at,
    )

    _params, packets = _coded_stream(generation_size, payload_size,
                                     extra=batch - generation_size)
    packets = packets[:batch]
    pool = BufferPool()
    stream = b"".join(encode_packet(p) for p in packets)

    def run_encode_batched() -> None:
        buf, spans = encode_packets_into(packets, pool=pool)
        pool.release(buf)
        assert len(spans) == batch

    def run_encode_scalar() -> None:
        frames = [encode_packet(p) for p in packets]
        assert len(frames) == batch

    def run_decode_cursor() -> None:
        offset, count = 0, 0
        while True:
            packet, offset = read_frame_at(stream, offset)
            if packet is None:
                break
            count += 1
        assert count == batch

    def run_decode_slicing() -> None:
        buf, count = stream, 0
        while True:
            packet, buf = read_frame(buf)
            if packet is None:
                break
            count += 1
        assert count == batch

    metrics: dict[str, float] = {}
    reps, elapsed = _timed_reps(run_encode_batched, budget_s)
    metrics["encode_frames_per_s"] = reps * batch / elapsed
    reps, elapsed = _timed_reps(run_encode_scalar, budget_s)
    metrics["encode_frames_per_s_scalar"] = reps * batch / elapsed
    metrics["speedup_encode"] = (
        metrics["encode_frames_per_s"] / metrics["encode_frames_per_s_scalar"]
    )
    reps, elapsed = _timed_reps(run_decode_cursor, budget_s)
    metrics["decode_frames_per_s"] = reps * batch / elapsed
    reps, elapsed = _timed_reps(run_decode_slicing, budget_s)
    metrics["decode_frames_per_s_scalar"] = reps * batch / elapsed
    metrics["speedup_decode"] = (
        metrics["decode_frames_per_s"] / metrics["decode_frames_per_s_scalar"]
    )
    metrics["pool_allocations"] = float(pool.stats.allocations)
    return metrics


def bench_recode_batch(budget_s: float,
                       generation_size: int = 8,
                       payload_size: int = 64,
                       batch: int = 64,
                       trials: int = 5) -> dict[str, float]:
    """Batched recode vs the same count of scalar ``emit`` calls.

    Two comparisons on identical full-rank recoders in one process:

    * ``speedup`` — ``emit_batch`` vs scalar ``emit`` (packet objects
      out of both): the pure benefit of collapsing per-emit GF mixing
      into one gemm.  The RNG draws stay per-emit by design (see
      ``docs/performance.md``), which is most of each batched emit's
      remaining cost.
    * ``speedup_wire`` — the fused ``emit_rows`` →
      ``encode_mixture_frames`` pipeline vs the pre-PR wire path
      (``emit`` + per-packet frame encode), i.e. wire-ready emissions
      per second as the live peers produce them.

    Geometry matches the live transport's default streaming shape
    (``LoopbackConfig``: generation size 8, 64-byte payloads), where
    each emit is dominated by per-call overhead rather than GF compute
    — the regime the batched fan-out was built for.  Each arm pair is
    measured in ``trials`` interleaved slices and the medians reported,
    so load drift on a shared machine cannot skew one arm.
    """
    from statistics import median

    from repro.coding.recoder import Recoder
    from repro.net.framing import encode_data_frame, encode_mixture_frames

    params, packets = _coded_stream(generation_size, payload_size)

    def _full_recoder(seed: int) -> Recoder:
        recoder = Recoder(params, 1, np.random.default_rng(seed), node_id=9)
        for packet in packets:
            recoder.receive(packet)
        assert recoder.decoder.is_complete
        return recoder

    def _ab_rates(run_batched, run_scalar) -> tuple[float, float, float]:
        per_slice = max(budget_s / trials, 0.02)
        batched_rates, scalar_rates, ratios = [], [], []
        for _ in range(trials):
            reps, elapsed = _timed_reps(run_batched, per_slice)
            batched_rates.append(reps * batch / elapsed)
            reps, elapsed = _timed_reps(run_scalar, per_slice)
            scalar_rates.append(reps * batch / elapsed)
            ratios.append(batched_rates[-1] / scalar_rates[-1])
        return median(batched_rates), median(scalar_rates), median(ratios)

    batched = _full_recoder(11)
    scalar = _full_recoder(11)

    def run_batched() -> None:
        assert len(batched.emit_batch(batch, 0)) == batch

    def run_scalar() -> None:
        for _ in range(batch):
            scalar.emit(0)

    metrics: dict[str, float] = {"batch_size": float(batch)}
    (metrics["emits_per_s"], metrics["emits_per_s_scalar"],
     metrics["speedup"]) = _ab_rates(run_batched, run_scalar)

    wire_batched = _full_recoder(23)
    wire_scalar = _full_recoder(23)

    def run_wire_batched() -> None:
        frames = encode_mixture_frames(
            wire_batched.emit_rows(batch, 0), generation_size, origin=9,
        )
        assert len(frames) == batch

    def run_wire_scalar() -> None:
        for _ in range(batch):
            encode_data_frame(wire_scalar.emit(0))

    (metrics["wire_emits_per_s"], metrics["wire_emits_per_s_scalar"],
     metrics["speedup_wire"]) = _ab_rates(run_wire_batched, run_wire_scalar)
    return metrics


def bench_net_throughput(quick: bool) -> dict[str, float]:
    """One outbound pump over real loopback TCP, batched vs scalar.

    The producer is a full-rank recoder fanning mixtures into a
    :class:`~repro.net.streams.PacketSender`; the consumer counts
    length-prefixed frames off the socket without decoding them (the
    receive path is identical in both modes and is measured by the
    ``decode`` bench).  Batched mode runs the fused pipeline the live
    peers use — ``emit_rows`` → ``encode_mixture_frames`` (gemm output
    straight to pooled wire frames) → ``enqueue_frame`` → one
    ``writelines`` per wakeup; scalar mode is the pre-batching path:
    ``emit`` → per-packet serialisation → one ``write`` per frame.
    """
    import asyncio

    from repro.coding.recoder import Recoder
    from repro.coding.wire import frame_size
    from repro.net.framing import encode_mixture_frames
    from repro.net.streams import PacketSender

    # The live transport's default streaming geometry (LoopbackConfig):
    # small frames, where per-frame overhead — serialisation, queueing,
    # per-write syscalls — dominates and coalescing pays.
    generation_size, payload_size = 8, 64
    total_frames = 2_000 if quick else 20_000
    burst = 64
    params, packets = _coded_stream(generation_size, payload_size)
    # Every emitted mixture serialises to the same length-prefixed size,
    # so the sink can count bytes instead of parsing frame boundaries.
    frame_bytes = 5 + frame_size(generation_size, payload_size)
    expected_bytes = total_frames * frame_bytes

    async def _measure(batched: bool) -> tuple[float, float]:
        recoder = Recoder(params, 1, np.random.default_rng(17), node_id=5)
        for packet in packets:
            recoder.receive(packet)
        received_bytes = 0
        done = asyncio.Event()

        async def _sink(reader, writer) -> None:
            nonlocal received_bytes
            try:
                while True:
                    chunk = await reader.read(1 << 16)
                    if not chunk:
                        break
                    received_bytes += len(chunk)
                    if received_bytes >= expected_bytes:
                        done.set()
            except (asyncio.CancelledError, ConnectionResetError):
                pass  # teardown: server.close() cancels the handler
            finally:
                writer.close()

        server = await asyncio.start_server(_sink, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        _reader, writer = await asyncio.open_connection("127.0.0.1", port)
        sender = PacketSender(writer, column=0, sender_id=5,
                              limit=4 * burst, coalesce=batched)
        pump = asyncio.ensure_future(sender.run())
        start = asyncio.get_running_loop().time()
        produced = 0
        while produced < total_frames:
            count = min(burst, total_frames - produced)
            if batched:
                frames = encode_mixture_frames(
                    recoder.emit_rows(count, 0),
                    generation_size, origin=recoder.node_id,
                )
                for frame in frames:
                    sender.enqueue_frame(frame)
            else:
                for _ in range(count):
                    sender.enqueue(recoder.emit(0))
            produced += count
            while sender._queue:
                await asyncio.sleep(0)
        await writer.drain()
        await asyncio.wait_for(done.wait(), timeout=60)
        elapsed = asyncio.get_running_loop().time() - start
        assert sender.stats.dropped == 0
        frames_per_flush = (
            sender.stats.sent / sender.stats.flushes
            if sender.stats.flushes else 0.0
        )
        sender.close()
        await pump
        server.close()
        await server.wait_closed()
        return total_frames / elapsed, frames_per_flush

    async def _run_both() -> dict[str, float]:
        packets_per_s, frames_per_flush = await _measure(batched=True)
        scalar_per_s, scalar_flush = await _measure(batched=False)
        return {
            "packets_per_s": packets_per_s,
            "packets_per_s_scalar": scalar_per_s,
            "speedup": packets_per_s / scalar_per_s,
            "frames_per_flush": frames_per_flush,
            "frames_per_flush_scalar": scalar_flush,
        }

    return asyncio.run(_run_both())


def bench_obs_overhead(quick: bool, trials: int = 5) -> dict[str, float]:
    """Instrumented vs uninstrumented hot paths, same-run A/B.

    Two arms, each measured in ``trials`` interleaved slices with the
    median ratio reported (so load drift on a shared machine cannot
    penalise one arm):

    * ``relative_throughput_slot_loop`` — a seeded E7-style broadcast
      run with ``SlottedRuntime.attach_obs`` (slot-timing histogram +
      three counters per slot) vs the identical run unattached.
    * ``relative_throughput_sender`` — ``PacketSender.enqueue_frame``
      under constant backpressure eviction with the per-node logger
      wired (the instrumented drop path) vs a bare sender.

    Both ratios must stay >= 0.98: the observability layer's hot-path
    budget is <= 2%.
    """
    from statistics import median

    from repro.net.streams import PacketSender
    from repro.obs import Registry

    k, d, n = (4, 2, 8) if quick else (8, 2, 24)
    generation_size, payload_size = (8, 64) if quick else (16, 64)
    rng = np.random.default_rng(404)
    content = bytes(
        rng.integers(0, 256, size=generation_size * payload_size, dtype=np.uint8)
    )
    budget = 200 if quick else 400

    runs_per_slice = 12 if quick else 6

    def _slot_run(instrumented: bool) -> float:
        # One seeded run is a few ms; aggregate a batch per slice so the
        # ratio measures instrumentation, not scheduler noise.
        slots, elapsed = 0, 0.0
        for _ in range(runs_per_slice):
            net = OverlayNetwork(k=k, d=d, seed=404)
            net.grow(n)
            sim = BroadcastSimulation(
                net, content, GenerationParams(generation_size, payload_size),
                seed=404, loss=LossModel(0.05),
            )
            if instrumented:
                sim.runtime.attach_obs(Registry("bench"))
            start = time.perf_counter()
            report = sim.run_until_complete(max_slots=budget)
            elapsed += time.perf_counter() - start
            assert report.completion_fraction == 1.0
            slots += report.slots
        return slots / elapsed

    class _NullWriter:
        """Satisfies PacketSender's writer slot; enqueue never touches it."""

        def write(self, data) -> None:  # pragma: no cover - not reached
            raise AssertionError("enqueue path must not write")

    import logging

    frame = b"\x00" * (5 + 4 + generation_size + payload_size)
    enqueues = 20_000 if quick else 100_000
    # Deployment default: the logger is wired but DEBUG is off, so the
    # per-eviction cost is the None check plus an isEnabledFor bailout.
    # (With --log-level debug each drop builds a LogRecord — that is a
    # diagnostic mode, not the steady-state budget this bench gates.)
    silent = logging.getLogger("repro.bench.obs_overhead")
    silent.addHandler(logging.NullHandler())
    silent.propagate = False
    silent.setLevel(logging.WARNING)

    def _sender_run(instrumented: bool) -> float:
        sender = PacketSender(
            _NullWriter(), column=0, sender_id=1, limit=8,
            logger=silent if instrumented else None,
        )
        start = time.perf_counter()
        for _ in range(enqueues):
            sender.enqueue_frame(frame)
        elapsed = time.perf_counter() - start
        assert sender.stats.dropped == enqueues - 8
        sender.close()
        return enqueues / elapsed

    def _ab(run) -> tuple[float, float, float]:
        instrumented_rates, bare_rates, ratios = [], [], []
        run(True), run(False)  # warm both arms
        for _ in range(trials):
            instrumented_rates.append(run(True))
            bare_rates.append(run(False))
            ratios.append(instrumented_rates[-1] / bare_rates[-1])
        return median(instrumented_rates), median(bare_rates), median(ratios)

    metrics: dict[str, float] = {}
    (metrics["slots_per_s"], metrics["slots_per_s_bare"],
     metrics["relative_throughput_slot_loop"]) = _ab(_slot_run)
    (metrics["enqueues_per_s"], metrics["enqueues_per_s_bare"],
     metrics["relative_throughput_sender"]) = _ab(_sender_run)
    return metrics


def bench_dataplane_overhead(quick: bool, trials: int = 25) -> dict[str, float]:
    """Engine-dispatched data plane vs the pre-refactor inline path.

    The PR-10 refactor routes every per-packet relay decision through
    ``RelayEngine.handle`` (event object in, effect list out).  This
    section times the relay's hot path — ingest one upstream packet,
    recode-fan-out toward d=2 children, batched — through the engine
    against a faithful inline copy of the pre-refactor ``peer.py``
    ``_on_packet`` body (direct ``Recoder.receive``/``emit_rows`` calls,
    stats-object counters, per-arrival child-list build and completion
    probe), on the identical packet stream with identical RNG draws.
    Frame encoding and sender enqueues are outside both arms — that is
    the driver's I/O boundary, unchanged by the refactor.

    Measurement protocol: the GF arithmetic dominating each pass swings
    +-15% on a shared runner, so whole-pass A-then-B ratios measure the
    jitter, not the engine.  Each trial instead interleaves the two
    arms chunk by chunk (alternating which goes first), so load drift
    lands on both arms of a trial equally and each trial's ratio is a
    fair sample; the median over many trials is reported (spikes that
    land inside one arm's chunk sit in the tails).  The acceptance bar
    is >= 0.95: the sans-IO indirection (a measured, payload-independent
    couple of microseconds per arrival) may cost at most 5% of the
    fan-out work it wraps.

    Quick mode shrinks the stream and trial count, never the packet
    geometry (g=16 x 256 B, the simulator session default): shrinking
    packets would gate a different (artificially harder) bar than the
    recorded run.
    """
    from repro.coding.recoder import Recoder
    from repro.dataplane import ChildAttached, PacketArrived, RelayEngine

    generation_size, payload_size = 16, 256
    generations = 2
    degree = 2  # the paper's tree degree d
    params = GenerationParams(generation_size, payload_size)
    rng = np.random.default_rng(505)
    content = bytes(rng.integers(
        0, 256, size=generations * generation_size * payload_size,
        dtype=np.uint8,
    ))
    encoder = SourceEncoder(content, params, rng)
    # Quick mode shrinks the stream but never the trial count: the
    # gated metric is a median-of-ratios, and its CI stability comes
    # from the number of ratio samples, not the per-trial length.
    n_packets = 120 if quick else 240
    arrivals = [encoder.emit(i % generations) for i in range(n_packets)]

    class _Stats:
        __slots__ = ("received", "innovative", "forwarded")

        def __init__(self) -> None:
            self.received = self.innovative = self.forwarded = 0

    class _InlinePeer:
        """``peer._on_packet`` exactly as it stood before the extraction:
        a per-arrival method resolving its state through ``self``."""

        __slots__ = ("recoder", "stats", "forward_policy", "_children",
                     "completed")

        def __init__(self) -> None:
            self.recoder = Recoder(
                params, generations, np.random.default_rng(506), 1
            )
            self.stats = _Stats()
            self.forward_policy = "eager"
            self._children = {child: None for child in range(degree)}
            self.completed = False

        def on_packet(self, packet) -> None:
            self.stats.received += 1
            innovative = self.recoder.receive(packet)
            if innovative:
                self.stats.innovative += 1
            if not innovative and self.forward_policy == "innovative":
                targets = []
            else:
                targets = list(self._children.values())
            if targets:
                groups = self.recoder.emit_rows(len(targets))
                for _generation, _rows, positions in groups:
                    self.stats.forwarded += len(positions)
            if not self.completed and self.recoder.decoder.is_complete:
                self.completed = True

    chunk = 40

    def _trial(flip: bool) -> tuple[float, float]:
        """One chunk-interleaved pass of both arms over the stream."""
        engine = RelayEngine(
            Recoder(params, generations, np.random.default_rng(506), 1),
            batched=True, seed_burst=0,
        )
        for child in range(degree):
            engine.handle(ChildAttached(child))
        peer = _InlinePeer()
        handle, on_packet = engine.handle, peer.on_packet
        engine_elapsed = inline_elapsed = 0.0
        for offset in range(0, n_packets, chunk):
            batch = arrivals[offset:offset + chunk]
            # The driver's translation of the returned EmitToChildren
            # (framing + sender enqueue) is the I/O boundary, excluded
            # from both arms.
            if flip:
                start = time.perf_counter()
                for packet in batch:
                    on_packet(packet)
                inline_elapsed += time.perf_counter() - start
                start = time.perf_counter()
                for packet in batch:
                    handle(PacketArrived(packet))
                engine_elapsed += time.perf_counter() - start
            else:
                start = time.perf_counter()
                for packet in batch:
                    handle(PacketArrived(packet))
                engine_elapsed += time.perf_counter() - start
                start = time.perf_counter()
                for packet in batch:
                    on_packet(packet)
                inline_elapsed += time.perf_counter() - start
            flip = not flip
        assert engine.completed and engine.forwarded == n_packets * degree
        assert peer.completed and peer.stats.forwarded == n_packets * degree
        return engine_elapsed, inline_elapsed

    from statistics import median

    _trial(False)  # warm both arms
    engine_times, inline_times, ratios = [], [], []
    for index in range(trials):
        engine_elapsed, inline_elapsed = _trial(flip=bool(index % 2))
        engine_times.append(engine_elapsed)
        inline_times.append(inline_elapsed)
        ratios.append(inline_elapsed / engine_elapsed)
    return {
        "ops_per_s": n_packets / min(engine_times),
        "ops_per_s_inline": n_packets / min(inline_times),
        "relative_throughput": min(1.0, median(ratios)),
    }


def bench_slot_loop(quick: bool) -> dict[str, float]:
    """E7-style broadcast run: k=16, d=2, N=64 peers, 5% loss."""
    k, d, n = (8, 2, 16) if quick else (16, 2, 64)
    generation_size, payload_size = (8, 64) if quick else (16, 64)
    net = OverlayNetwork(k=k, d=d, seed=303)
    net.grow(n)
    rng = np.random.default_rng(303)
    content = bytes(
        rng.integers(0, 256, size=generation_size * payload_size, dtype=np.uint8)
    )
    sim = BroadcastSimulation(
        net,
        content,
        GenerationParams(generation_size, payload_size),
        seed=303,
        loss=LossModel(0.05),
    )
    budget = 200 if quick else 600
    start = time.perf_counter()
    report = sim.run_until_complete(max_slots=budget)
    elapsed = time.perf_counter() - start
    return {
        "wall_clock_s": elapsed,
        "slots": float(report.slots),
        "slots_per_s": report.slots / elapsed if elapsed else 0.0,
        "completion_fraction": report.completion_fraction,
    }


def bench_runtime_overhead(quick: bool) -> dict[str, float]:
    """Unified-runtime slot loop vs the pre-migration PR 1 recording.

    Re-times :func:`bench_slot_loop` (which now runs through
    ``repro.sim.runtime.SlottedRuntime``) and, when the PR 1 snapshot is
    available, reports the throughput ratio against the recorded
    pre-refactor loop.  A ratio near 1.0 means the topology/behaviour
    indirection costs nothing measurable; the acceptance bar is 0.95.
    """
    current = bench_slot_loop(quick)
    metrics: dict[str, float] = {
        "slots_per_s": current["slots_per_s"],
        "wall_clock_s": current["wall_clock_s"],
        "completion_fraction": current["completion_fraction"],
    }
    if PR1_SNAPSHOT.exists():
        recorded = json.loads(PR1_SNAPSHOT.read_text()).get("slot_loop", {})
        if "slots_per_s" in recorded:
            metrics["slots_per_s_pr1_recorded"] = recorded["slots_per_s"]
            metrics["relative_throughput"] = (
                current["slots_per_s"] / recorded["slots_per_s"]
            )
    return metrics


#: Populations the scaling section sweeps (the PR-9 acceptance curve).
SCALING_POPULATIONS = (100, 1000, 5000, 10000)


def bench_scaling(quick: bool) -> dict[str, float]:
    """Server-ops/s and slot-loop rates at n in {100, 1k, 5k, 10k}.

    The membership loop exercises exactly the paths the indexed engine
    state rewrote — fail detection, repair splices, uniform-insertion
    joins, graceful leaves — at a *held* population (each fail+repair
    splice is balanced by a join, so the op mix runs at size n rather
    than draining the registry).  With the old linear scans the per-op
    cost grew O(n) and ops/s at 10k sat ~100x below ops/s at 100; the
    indexed structures hold the drop to a small factor, which is what
    ``check_bench.py`` gates (``server_ops_per_s_n10000`` within 10x of
    ``server_ops_per_s_n100``).

    The slot loop measures the vectorised data plane at the same
    populations; ``node_slots_per_s`` (slots/s x n) is the
    population-normalised rate and should hold roughly flat.
    """
    cycles = 60 if quick else 300
    slot_budget = 4 if quick else 8
    metrics: dict[str, float] = {}
    for n in SCALING_POPULATIONS:
        net = OverlayNetwork(k=32, d=2, seed=909)
        net.grow(n)
        ops = 0
        start = time.perf_counter()
        for _ in range(cycles):
            victim = net.random_working_node()
            net.fail(victim)
            net.repair(victim)
            net.join()
            net.leave(net.random_working_node())
            net.join()
            ops += 6
        elapsed = time.perf_counter() - start
        metrics[f"server_ops_per_s_n{n}"] = ops / elapsed if elapsed else 0.0
        rng = np.random.default_rng(909)
        content = bytes(rng.integers(0, 256, size=4 * 16, dtype=np.uint8))
        sim = BroadcastSimulation(
            net, content, GenerationParams(4, 16), seed=909,
            loss=LossModel(0.0),
        )
        start = time.perf_counter()
        report = sim.run_until_complete(max_slots=slot_budget)
        elapsed = time.perf_counter() - start
        slot_rate = report.slots / elapsed if elapsed else 0.0
        metrics[f"slots_per_s_n{n}"] = slot_rate
        metrics[f"node_slots_per_s_n{n}"] = slot_rate * n
    return metrics


# ----------------------------------------------------------------------


def run(quick: bool) -> dict[str, dict[str, float]]:
    budget_s = 0.05 if quick else 1.5
    payload_size = 128 if quick else 1024
    return {
        "decode": bench_decode(budget_s, payload_size),
        "recode": bench_recode(budget_s, payload_size),
        "wire_batch": bench_wire_batch(budget_s, payload_size),
        "recode_batch": bench_recode_batch(budget_s),
        "net_throughput": bench_net_throughput(quick),
        "slot_loop": bench_slot_loop(quick),
        "runtime_overhead": bench_runtime_overhead(quick),
        "obs_overhead": bench_obs_overhead(quick),
        "dataplane_overhead": bench_dataplane_overhead(quick),
        "scaling": bench_scaling(quick),
    }


def validate_schema(results: dict) -> None:
    """Assert the stable ``{bench_name: {metric: number}}`` shape."""
    assert isinstance(results, dict) and results
    for bench_name, metrics in results.items():
        assert isinstance(bench_name, str)
        assert isinstance(metrics, dict) and metrics, bench_name
        for metric, value in metrics.items():
            assert isinstance(metric, str), (bench_name, metric)
            assert isinstance(value, (int, float)), (bench_name, metric, value)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    parser.add_argument("--quick", action="store_true",
                        help="tiny sizes/budgets for CI smoke runs")
    args = parser.parse_args()

    results = run(quick=args.quick)
    validate_schema(results)
    args.out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")

    print(f"wrote {args.out}")
    for bench_name, metrics in sorted(results.items()):
        for metric, value in sorted(metrics.items()):
            print(f"  {bench_name}.{metric}: {value:,.1f}")


if __name__ == "__main__":
    main()
