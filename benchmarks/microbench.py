"""Microbenchmark harness for the RLNC hot paths.

Measures the three loops every experiment spends its time in and writes a
JSON perf snapshot so the trajectory across PRs is diffable:

* **decode** — progressive Gaussian-elimination throughput (packets/s)
  at generation sizes 16/32/64, against an inline re-implementation of
  the pre-kernel ("seed") decoder so the speedup is measured on the same
  machine under the same load;
* **recode** — random-mixture emit rate of a full-rank buffer, again
  vs the seed mixing code;
* **slot_loop** — wall clock of an E7-style `BroadcastSimulation` run
  (the paper's throughput experiment geometry);
* **runtime_overhead** — the same E7 run on today's unified
  `repro.sim.runtime` kernel, compared against the slot-loop numbers
  recorded in ``BENCH_PR1.json`` (captured before the five simulators
  were migrated onto the shared runtime) to bound the abstraction cost.

Usage::

    PYTHONPATH=src python benchmarks/microbench.py            # full run
    PYTHONPATH=src python benchmarks/microbench.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/microbench.py --out path.json

Output schema (stable across PRs — subsequent PRs write
``BENCH_PR<k>.json`` next to this one)::

    {bench_name: {metric: value}}

where every value is a number.  Seed-implementation numbers carry a
``_baseline`` suffix; ``speedup_*`` metrics are current/baseline ratios.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.coding.decoder import Decoder
from repro.coding.encoder import SourceEncoder
from repro.coding.generation import GenerationParams
from repro.core.overlay import OverlayNetwork
from repro.gf.tables import FIELD_SIZE, INV, MUL
from repro.sim.broadcast import BroadcastSimulation
from repro.sim.links import LossModel

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_PR2.json"
#: Perf snapshot recorded before the unified-runtime migration; the
#: runtime_overhead bench reads its slot-loop numbers as the reference.
PR1_SNAPSHOT = REPO_ROOT / "BENCH_PR1.json"

DECODE_GENERATION_SIZES = (16, 32, 64)


# ----------------------------------------------------------------------
# Seed reference implementation
#
# A faithful inline copy of the decoder as it existed before the
# vectorised kernel layer (per-column Python reduction loop, scalar
# pivot search, per-row back-substitution, fancy-indexed mixing).  It is
# re-measured on every run so the ``*_baseline`` numbers reflect this
# machine and load, not a stale constant.


def _seed_addmul_row(dest: np.ndarray, src: np.ndarray, scalar: int) -> None:
    if scalar == 0:
        return
    if scalar == 1:
        np.bitwise_xor(dest, src, out=dest)
    else:
        np.bitwise_xor(dest, MUL[scalar, src], out=dest)


class SeedGenerationDecoder:
    """The pre-kernel progressive decoder, kept verbatim for baselines."""

    def __init__(self, generation_size: int, payload_size: int) -> None:
        self.size = generation_size
        width = generation_size + payload_size
        self._rows = np.zeros((generation_size, width), dtype=np.uint8)
        self._row_of_pivot: dict[int, int] = {}
        self.rank = 0

    @property
    def is_complete(self) -> bool:
        return self.rank == self.size

    def push(self, packet) -> bool:
        if self.is_complete:
            return False
        row = np.concatenate([packet.coefficients, packet.payload]).astype(np.uint8)
        for col in range(self.size):
            value = int(row[col])
            if value == 0:
                continue
            basis_row = self._row_of_pivot.get(col)
            if basis_row is None:
                continue
            _seed_addmul_row(row, self._rows[basis_row], value)
        pivot = -1
        for col in range(self.size):
            if row[col]:
                pivot = col
                break
        if pivot < 0:
            return False
        pivot_value = int(row[pivot])
        if pivot_value != 1:
            row = MUL[int(INV[pivot_value]), row]
        slot = self.rank
        self._rows[slot] = row
        self._row_of_pivot[pivot] = slot
        self.rank += 1
        for other in range(slot):
            value = int(self._rows[other][pivot])
            if value:
                _seed_addmul_row(self._rows[other], row, value)
        return True

    def random_combination(self, rng: np.random.Generator) -> np.ndarray:
        scalars = rng.integers(1, FIELD_SIZE, size=self.rank, dtype=np.uint8)
        mixed = MUL[scalars[:, None], self._rows[: self.rank]]
        combined = np.bitwise_xor.reduce(mixed, axis=0)
        return combined[: self.size].copy(), combined[self.size :].copy()


# ----------------------------------------------------------------------
# Timing helpers


def _timed_reps(fn, budget_s: float, min_reps: int = 3) -> tuple[int, float]:
    """Run ``fn`` repeatedly for ~``budget_s`` seconds; (reps, elapsed)."""
    fn()  # warm caches, allocate scratch
    reps = 0
    start = time.perf_counter()
    while True:
        fn()
        reps += 1
        elapsed = time.perf_counter() - start
        if elapsed >= budget_s and reps >= min_reps:
            return reps, elapsed


def _coded_stream(generation_size: int, payload_size: int, extra: int = 8):
    """A fixed seeded packet stream that completes one generation."""
    params = GenerationParams(generation_size, payload_size)
    rng = np.random.default_rng(4096 + generation_size)
    content = bytes(
        rng.integers(0, 256, size=generation_size * payload_size, dtype=np.uint8)
    )
    encoder = SourceEncoder(content, params, np.random.default_rng(7))
    return params, [encoder.emit() for _ in range(generation_size + extra)]


# ----------------------------------------------------------------------
# Benches


def bench_decode(budget_s: float, payload_size: int) -> dict[str, float]:
    """Progressive decode throughput, current vs seed, per generation size."""
    metrics: dict[str, float] = {}
    for size in DECODE_GENERATION_SIZES:
        params, packets = _coded_stream(size, payload_size)

        def run_current() -> None:
            decoder = Decoder(params, 1)
            for packet in packets:
                decoder.push(packet)
                if decoder.is_complete:
                    break
            assert decoder.is_complete

        def run_seed() -> None:
            decoder = SeedGenerationDecoder(size, payload_size)
            for packet in packets:
                decoder.push(packet)
                if decoder.is_complete:
                    break
            assert decoder.is_complete

        reps, elapsed = _timed_reps(run_current, budget_s)
        metrics[f"packets_per_s_g{size}"] = reps * size / elapsed
        reps, elapsed = _timed_reps(run_seed, budget_s)
        metrics[f"packets_per_s_g{size}_baseline"] = reps * size / elapsed
        metrics[f"speedup_g{size}"] = (
            metrics[f"packets_per_s_g{size}"]
            / metrics[f"packets_per_s_g{size}_baseline"]
        )
    return metrics


def bench_recode(budget_s: float, payload_size: int,
                 generation_size: int = 32, emits_per_rep: int = 64) -> dict[str, float]:
    """Random-mixture emit rate of a full-rank buffer, current vs seed."""
    params, packets = _coded_stream(generation_size, payload_size)
    current = Decoder(params, 1)
    seed = SeedGenerationDecoder(generation_size, payload_size)
    for packet in packets:
        current.push(packet)
        seed.push(packet)
    assert current.is_complete and seed.is_complete
    gen_decoder = current.generations[0]

    rng_current = np.random.default_rng(11)
    rng_seed = np.random.default_rng(11)

    def run_current() -> None:
        for _ in range(emits_per_rep):
            gen_decoder.random_combination(rng_current)

    def run_seed() -> None:
        for _ in range(emits_per_rep):
            seed.random_combination(rng_seed)

    metrics: dict[str, float] = {}
    reps, elapsed = _timed_reps(run_current, budget_s)
    metrics["emits_per_s"] = reps * emits_per_rep / elapsed
    reps, elapsed = _timed_reps(run_seed, budget_s)
    metrics["emits_per_s_baseline"] = reps * emits_per_rep / elapsed
    metrics["speedup"] = metrics["emits_per_s"] / metrics["emits_per_s_baseline"]
    return metrics


def bench_slot_loop(quick: bool) -> dict[str, float]:
    """E7-style broadcast run: k=16, d=2, N=64 peers, 5% loss."""
    k, d, n = (8, 2, 16) if quick else (16, 2, 64)
    generation_size, payload_size = (8, 64) if quick else (16, 64)
    net = OverlayNetwork(k=k, d=d, seed=303)
    net.grow(n)
    rng = np.random.default_rng(303)
    content = bytes(
        rng.integers(0, 256, size=generation_size * payload_size, dtype=np.uint8)
    )
    sim = BroadcastSimulation(
        net,
        content,
        GenerationParams(generation_size, payload_size),
        seed=303,
        loss=LossModel(0.05),
    )
    budget = 200 if quick else 600
    start = time.perf_counter()
    report = sim.run_until_complete(max_slots=budget)
    elapsed = time.perf_counter() - start
    return {
        "wall_clock_s": elapsed,
        "slots": float(report.slots),
        "slots_per_s": report.slots / elapsed if elapsed else 0.0,
        "completion_fraction": report.completion_fraction,
    }


def bench_runtime_overhead(quick: bool) -> dict[str, float]:
    """Unified-runtime slot loop vs the pre-migration PR 1 recording.

    Re-times :func:`bench_slot_loop` (which now runs through
    ``repro.sim.runtime.SlottedRuntime``) and, when the PR 1 snapshot is
    available, reports the throughput ratio against the recorded
    pre-refactor loop.  A ratio near 1.0 means the topology/behaviour
    indirection costs nothing measurable; the acceptance bar is 0.95.
    """
    current = bench_slot_loop(quick)
    metrics: dict[str, float] = {
        "slots_per_s": current["slots_per_s"],
        "wall_clock_s": current["wall_clock_s"],
        "completion_fraction": current["completion_fraction"],
    }
    if PR1_SNAPSHOT.exists():
        recorded = json.loads(PR1_SNAPSHOT.read_text()).get("slot_loop", {})
        if "slots_per_s" in recorded:
            metrics["slots_per_s_pr1_recorded"] = recorded["slots_per_s"]
            metrics["relative_throughput"] = (
                current["slots_per_s"] / recorded["slots_per_s"]
            )
    return metrics


# ----------------------------------------------------------------------


def run(quick: bool) -> dict[str, dict[str, float]]:
    budget_s = 0.05 if quick else 1.5
    payload_size = 128 if quick else 1024
    return {
        "decode": bench_decode(budget_s, payload_size),
        "recode": bench_recode(budget_s, payload_size),
        "slot_loop": bench_slot_loop(quick),
        "runtime_overhead": bench_runtime_overhead(quick),
    }


def validate_schema(results: dict) -> None:
    """Assert the stable ``{bench_name: {metric: number}}`` shape."""
    assert isinstance(results, dict) and results
    for bench_name, metrics in results.items():
        assert isinstance(bench_name, str)
        assert isinstance(metrics, dict) and metrics, bench_name
        for metric, value in metrics.items():
            assert isinstance(metric, str), (bench_name, metric)
            assert isinstance(value, (int, float)), (bench_name, metric, value)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    parser.add_argument("--quick", action="store_true",
                        help="tiny sizes/budgets for CI smoke runs")
    args = parser.parse_args()

    results = run(quick=args.quick)
    validate_schema(results)
    args.out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")

    print(f"wrote {args.out}")
    for bench_name, metrics in sorted(results.items()):
        for metric, value in sorted(metrics.items()):
            print(f"  {bench_name}.{metric}: {value:,.1f}")


if __name__ == "__main__":
    main()
