"""E11 — §7 attacks on the data plane.

Three attacker behaviours at increasing penetration, all on the same
overlay geometry and content:

* failure attack — attackers just go dark (roles: failed nodes);
* entropy destruction — attackers replay trivial combinations; valid
  packets, silently destroyed innovation.  Measured by the swarm's
  innovation efficiency and completion within a fixed budget;
* jamming — attackers inject garbage claiming to be combinations; after
  mixing it contaminates almost every downstream decode.

The paper's ordering: failure < entropy (harder to detect) < jamming
(catastrophic without homomorphic signatures).
"""

import numpy as np

from repro.coding import GenerationParams
from repro.core import OverlayNetwork
from repro.sim import BroadcastSimulation, NodeRole

from conftest import emit_table, run_once

K, D, N = 14, 3, 45
GENERATION = 10
PAYLOAD = 64
BUDGET = 250
FRACTIONS = (0.0, 0.1, 0.2)


def _run(fraction: float, kind: str, seed: int):
    net = OverlayNetwork(k=K, d=D, seed=seed)
    net.grow(N)
    rng = np.random.default_rng(seed + 1)
    roles = {}
    count = int(round(fraction * N))
    attackers = [int(i) for i in rng.choice(net.matrix.node_ids, size=count,
                                            replace=False)]
    if kind == "failure":
        for node in attackers:
            net.fail(node)
    elif kind == "entropy":
        roles = {node: NodeRole.ENTROPY_ATTACKER for node in attackers}
    elif kind == "jam":
        roles = {node: NodeRole.JAMMER for node in attackers}
    content = bytes(rng.integers(0, 256, size=GENERATION * PAYLOAD,
                                 dtype=np.uint8))
    sim = BroadcastSimulation(
        net, content, GenerationParams(GENERATION, PAYLOAD),
        seed=seed + 2, roles=roles,
    )
    report = sim.run_until_complete(max_slots=BUDGET)
    received = sum(n.received for n in report.nodes)
    innovative = sum(n.innovative for n in report.nodes)
    efficiency = innovative / received if received else 1.0
    return report.completion_fraction, efficiency, report.poisoned_fraction


def experiment():
    rows = []
    outcomes = {}
    for kind in ("failure", "entropy", "jam"):
        for fraction in FRACTIONS:
            if fraction == 0.0 and kind != "failure":
                continue  # the clean point is shared
            completion, efficiency, poisoned = _run(
                fraction, kind, 1100 + int(fraction * 100)
            )
            outcomes[(kind, fraction)] = (completion, efficiency, poisoned)
            rows.append([kind, fraction, completion, efficiency, poisoned])
    return rows, outcomes


def test_e11_attacks(benchmark):
    rows, outcomes = run_once(benchmark, experiment)
    emit_table(
        "e11_attacks",
        ["attack", "attacker fraction", "completion", "innovation efficiency",
         "poisoned fraction"],
        rows,
        title=f"E11 — §7 attacks (k={K}, d={D}, N={N}, {BUDGET}-slot budget)",
    )
    clean = outcomes[("failure", 0.0)]
    assert clean[0] == 1.0 and clean[2] == 0.0
    # entropy attacks destroy innovation efficiency relative to clean
    assert outcomes[("entropy", 0.2)][1] < clean[1]
    # jamming contaminates most completed decodes at 20% penetration
    assert outcomes[("jam", 0.2)][2] > 0.5
    # failure attacks never poison anything — they only slow things down
    for fraction in FRACTIONS:
        assert outcomes[("failure", fraction)][2] == 0.0
