"""E7 — throughput: network coding vs every baseline, under failures.

One overlay geometry, escalating batch-failure fractions.  Conditions:

* RLNC on the curtain overlay (packet-level simulation) — download time
  and goodput;
* uncoded store-and-forward flooding on the same overlay (packet-level);
* Edmonds branching packing routed statically (flow-level: stripes whose
  tree paths survive);
* erasure multi-parent striping, strict (m = d) and protected (m = d-1);
* the unicast chain (closed-form delivery probability).

Expected shape: RLNC completes near the min-cut rate and degrades ∝ p;
flooding pays the coupon-collector tax even at p = 0; fixed trees and
per-column striping fall off much faster with p; chains are hopeless at
depth.
"""

import numpy as np

from repro.baselines import (
    ChainOverlay,
    FloodingSimulation,
    curtain_tree_decomposition,
    evaluate_erasure_overlay,
    route_stripes,
)
from repro.coding import GenerationParams
from repro.core import OverlayNetwork
from repro.failures import RandomBatchFailures
from repro.sim import BroadcastSimulation

from conftest import emit_table, run_once

K, D, N = 16, 2, 64
GENERATION = 16
PAYLOAD = 64
FAIL_FRACTIONS = (0.0, 0.05, 0.1)


def _build(seed):
    net = OverlayNetwork(k=K, d=D, seed=seed)
    net.grow(N)
    return net


BUDGET = 600


def _rlnc(net, seed) -> tuple[float, float]:
    """(completion fraction, slot by which the last survivor finished)."""
    rng = np.random.default_rng(seed)
    content = bytes(rng.integers(0, 256, size=GENERATION * PAYLOAD, dtype=np.uint8))
    sim = BroadcastSimulation(
        net, content, GenerationParams(GENERATION, PAYLOAD), seed=seed
    )
    report = sim.run_until_complete(max_slots=BUDGET)
    slots = report.completion_slots()
    return report.completion_fraction, float(max(slots)) if slots else float(BUDGET)


def _flooding(net, seed) -> tuple[float, float]:
    sim = FloodingSimulation(net, packet_count=GENERATION, seed=seed)
    report = sim.run_until_complete(max_slots=BUDGET)
    slots = report.completion_slots
    return report.completion_fraction, float(max(slots)) if slots else float(BUDGET)


def _rarest(net, seed) -> tuple[float, float]:
    from repro.baselines import RarestFirstSimulation

    sim = RarestFirstSimulation(net, packet_count=GENERATION, seed=seed)
    report = sim.run_until_complete(max_slots=BUDGET)
    slots = report.completion_slots
    return report.completion_fraction, float(max(slots)) if slots else float(BUDGET)


def experiment():
    rows = []
    for fraction in FAIL_FRACTIONS:
        seed = 700 + int(fraction * 1000)
        # build identical overlays per condition, inject identical failures
        trees_net = _build(seed)
        trees = curtain_tree_decomposition(trees_net.matrix)
        failure_rng = np.random.default_rng(seed + 1)
        victims = (
            RandomBatchFailures(fraction).select(trees_net, failure_rng)
            if fraction
            else []
        )

        rlnc_net = _build(seed)
        for victim in victims:
            rlnc_net.fail(victim)
        rlnc_completion, rlnc_last = _rlnc(rlnc_net, seed + 2)

        flood_net = _build(seed)
        for victim in victims:
            flood_net.fail(victim)
        flood_completion, flood_last = _flooding(flood_net, seed + 3)

        rarest_net = _build(seed)
        for victim in victims:
            rarest_net.fail(victim)
        _, rarest_last = _rarest(rarest_net, seed + 3)

        edmonds = route_stripes(trees, failed=set(victims))

        erasure_net = _build(seed)
        for victim in victims:
            erasure_net.fail(victim)
        strict = evaluate_erasure_overlay(
            erasure_net.matrix, erasure_net.failed, required=D
        )
        protected = evaluate_erasure_overlay(
            erasure_net.matrix, erasure_net.failed, required=max(1, D - 1)
        )

        chain = ChainOverlay(k=K, population=N)
        rows.append([
            fraction,
            rlnc_completion, rlnc_last,
            flood_completion, flood_last,
            rarest_last,
            edmonds.full_delivery_fraction,
            strict.decode_fraction,
            protected.decode_fraction,
            chain.mean_delivery(fraction),
        ])
    return rows


def test_e7_throughput(benchmark):
    rows = run_once(benchmark, experiment)
    emit_table(
        "e7_throughput",
        ["fail frac", "RLNC done", "RLNC last slot", "flood done",
         "flood last slot", "rarest-first last", "edmonds full",
         "erasure m=d", "erasure m=d-1", "chain delivery"],
        rows,
        title=(
            f"E7 — throughput vs baselines (k={K}, d={D}, N={N}, "
            f"g={GENERATION}, {BUDGET}-slot budget)"
        ),
    )
    by_fraction = {row[0]: row for row in rows}
    healthy = by_fraction[0.0]
    # RLNC completes for everyone, and strictly faster than uncoded
    # flooding (the coupon-collector tax)
    assert healthy[1] == 1.0
    assert healthy[2] < healthy[4]
    # BitTorrent-style rarest-first closes part of that gap but not all
    assert healthy[2] <= healthy[5] <= healthy[4]
    # under failures RLNC keeps (weakly) more nodes complete than static
    # Edmonds trees keep fully served
    stressed = by_fraction[0.1]
    assert stressed[1] >= stressed[6] - 0.05
    # erasure protection (m = d-1) beats strict striping under failures
    assert stressed[8] >= stressed[7]
