"""X5 — ablation: coding field size (GF(2) XOR-only vs GF(2⁸)).

The paper codes over a "large enough" field implicitly; practical
systems sometimes use plain XOR.  The price is innovation: a random
combination is non-innovative with probability q^(rank−g), so near
completion GF(2) wastes ~2× transmissions on the last dimensions.  We
measure packets-to-decode for both fields across generation sizes and
print the analytic expected overhead Σ 1/(1−q^{r−g}) next to it.
"""

import numpy as np

from repro.coding import (
    BinaryDecoder,
    BinaryEncoder,
    Decoder,
    GenerationParams,
    SourceEncoder,
    innovation_probability_q,
)

from conftest import emit_table, run_once

GENERATIONS = (8, 16, 32)
PAYLOAD = 32
TRIALS = 25


def _analytic_cost(q: int, g: int) -> float:
    return sum(1.0 / innovation_probability_q(q, g, r) for r in range(g))


def _gf2_cost(g: int, rng) -> int:
    source = rng.integers(0, 256, size=(g, PAYLOAD), dtype=np.uint8)
    encoder = BinaryEncoder(source, rng)
    decoder = BinaryDecoder(g, PAYLOAD)
    while not decoder.is_complete:
        decoder.push(encoder.emit())
    return decoder.received


def _gf256_cost(g: int, rng) -> int:
    params = GenerationParams(g, PAYLOAD)
    content = bytes(rng.integers(0, 256, size=g * PAYLOAD, dtype=np.uint8))
    encoder = SourceEncoder(content, params, rng)
    decoder = Decoder(params, 1)
    while not decoder.is_complete:
        decoder.push(encoder.emit())
    return decoder.generations[0].received


def experiment():
    rows = []
    rng = np.random.default_rng(71)
    for g in GENERATIONS:
        gf2 = float(np.mean([_gf2_cost(g, rng) for _ in range(TRIALS)]))
        gf256 = float(np.mean([_gf256_cost(g, rng) for _ in range(TRIALS)]))
        rows.append([
            g,
            gf2, _analytic_cost(2, g),
            gf256, _analytic_cost(256, g),
            gf2 / gf256,
        ])
    return rows


def test_x5_field_size(benchmark):
    rows = run_once(benchmark, experiment)
    emit_table(
        "x5_field_size",
        ["g", "GF(2) packets", "GF(2) analytic", "GF(256) packets",
         "GF(256) analytic", "GF(2)/GF(256)"],
        rows,
        title="X5 — packets to decode one generation, by coding field",
    )
    for g, gf2, gf2_pred, gf256, gf256_pred, ratio in rows:
        # measured costs track the analytic coupon expectations
        assert abs(gf2 - gf2_pred) < 0.15 * gf2_pred + 0.5
        assert abs(gf256 - gf256_pred) < 0.05 * gf256_pred + 0.5
        # GF(2) overhead is real but bounded (≈ +1.6 packets for any g)
        assert gf256 < gf2 < gf256 + 4
