"""Shared helpers for the benchmark/experiment harness.

Each ``bench_e*.py`` module reproduces one experiment from DESIGN.md §3.
The timed body runs once under pytest-benchmark (``pedantic`` with a
single round — these are experiments, not micro-benchmarks; E13 holds the
true micro-benchmarks).  Every experiment renders its paper-vs-measured
table with :func:`emit_table`, which prints it (visible with ``-s``) and
writes it to ``benchmarks/results/<name>.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

from repro.metrics import render_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit_table(name: str, headers, rows, title: str = "") -> str:
    """Render, print and persist one experiment table."""
    table = render_table(headers, rows, title=title)
    print()
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(table + "\n")
    return table


def run_once(benchmark, fn):
    """Run an experiment body exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
