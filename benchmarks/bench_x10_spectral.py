"""X10 — which overlay actually expands?  Spectral gaps across topologies.

The lazy-walk spectral gap 1 − λ₂ separates expanders (constant gap)
from path-like graphs (gap ~ 1/diameter²).  Measured across doubling
populations, the result sharpens §1's "random graphs expand" intuition:

* the §6 **random-graph** overlay is a true expander — constant gap —
  which is exactly why its delay is logarithmic (E6) and why it can
  self-sustain (X2);
* the **curtain** overlay is NOT a spectral expander at fixed k: its
  column chains have length Θ(N·d/k), so the gap decays like a path's —
  indeed slightly *below* the plain-chain baseline, whose paths are a
  factor d shorter.  The curtain's robustness (Theorems 4/5) comes from
  d-fold *connectivity* — every node keeps d disjoint server paths —
  not from rapid mixing.  Expansion shows up in its *ancestor tree*
  (≈ d² grandparents, tested in `test_analysis_misc`), not in the
  symmetric walk.

Delay and mixing are what the curtain trades away for acyclicity; E6,
X2 and this table are three views of the same trade.
"""


from repro.analysis import spectral_gap
from repro.baselines import ChainOverlay
from repro.core import OverlayNetwork, RandomGraphOverlay

from conftest import emit_table, run_once

K, D = 12, 3
POPULATIONS = (100, 200, 400)


def experiment():
    rows = []
    gaps = {}
    for n in POPULATIONS:
        net = OverlayNetwork(k=K, d=D, seed=41)
        net.grow(n)
        curtain = spectral_gap(net.graph())
        overlay = RandomGraphOverlay(k=K, d=D, seed=42)
        overlay.grow(n)
        random_gap = spectral_gap(overlay.to_overlay_graph())
        chain = spectral_gap(ChainOverlay(k=K, population=n).to_overlay_graph())
        gaps[n] = (curtain, random_gap, chain)
        rows.append([n, curtain, random_gap, chain])
    return rows, gaps


def test_x10_spectral(benchmark):
    rows, gaps = run_once(benchmark, experiment)
    emit_table(
        "x10_spectral",
        ["N", "curtain gap", "random-graph gap", "chain gap"],
        rows,
        title=f"X10 — lazy-walk spectral gap 1 - lambda_2 (k={K}, d={D})",
    )
    first, last = POPULATIONS[0], POPULATIONS[-1]
    # the random graph is a true expander: gap roughly constant and large
    assert gaps[last][1] > 0.5 * gaps[first][1]
    assert gaps[last][1] > 0.02
    # the curtain and the chain baseline are both path-like: gaps decay
    assert gaps[last][0] < 0.25 * gaps[first][0]
    assert gaps[last][2] < 0.25 * gaps[first][2]
    # and the random graph dominates both by an order of magnitude
    for n in POPULATIONS:
        curtain, random_gap, chain = gaps[n]
        assert random_gap > 10 * max(curtain, chain)