"""E9 — §7: the choice of d.

Fixed failure probability p, server bandwidth proportional to d
(k = 12·d, so the same physical server capacity in content units).
For each d we measure each surviving node's *fraction* of bandwidth lost
(connectivity shortfall / d) after a batch failure.

The paper: the expected fraction lost is ≈ p for every d ("all choices
of d are essentially equivalent in terms of expected loss"), while the
*variance* should fall roughly as 1/d (the open-issue conjecture that
makes large d attractive for constant-rate streaming).
"""

import numpy as np

from repro.core import OverlayNetwork
from repro.failures import RandomBatchFailures, apply_failures

from conftest import emit_table, run_once

P = 0.06
D_SWEEP = (2, 3, 4, 6)
N = 400
REPEATS = 4


def _fractions(d: int, seed: int) -> np.ndarray:
    net = OverlayNetwork(k=12 * d, d=d, seed=seed)
    net.grow(N)
    apply_failures(net, RandomBatchFailures(P), np.random.default_rng(seed + 1))
    survivors = net.working_nodes
    connectivities = net.connectivities(survivors)
    return np.asarray([(d - connectivities[n]) / d for n in survivors])


def experiment():
    rows = []
    variances = {}
    for d in D_SWEEP:
        samples = np.concatenate(
            [_fractions(d, 900 + 37 * d + r) for r in range(REPEATS)]
        )
        mean = float(samples.mean())
        variance = float(samples.var())
        variances[d] = variance
        rows.append([d, 12 * d, mean, P, variance, variance * d])
    return rows, variances


def test_e9_d_sweep(benchmark):
    rows, variances = run_once(benchmark, experiment)
    emit_table(
        "e9_d_sweep",
        ["d", "k", "mean fraction lost", "p (paper)", "variance", "variance × d"],
        rows,
        title=f"E9 — §7 d sweep at fixed p={P} (fraction of bandwidth lost)",
    )
    # expected fraction lost ≈ p, independent of d
    means = [row[2] for row in rows]
    for mean in means:
        assert abs(mean - P) < 0.05
    assert max(means) - min(means) < 0.04
    # variance decreases with d (the paper's conjecture)
    assert variances[D_SWEEP[-1]] < variances[D_SWEEP[0]]
