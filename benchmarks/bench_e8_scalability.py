"""E8 — §1 scalability: connectivity-loss probability is flat in N, and
failure impact is local.

Fixed (k, d, p); populations double.  Two measurements per size:

* the probability a working node has lost any connectivity after a batch
  failure — must NOT grow with N (the paper's headline: the network can
  grow while the server load and per-node risk stay constant);
* locality — every harmed node must be a direct child of some failed
  node (grandchildren stay whole, Theorem 4's containment story).

The unicast reference (⌊k/d⌋ users) is printed for contrast.
"""

import numpy as np

from repro.core import OverlayNetwork
from repro.failures import RandomBatchFailures, apply_failures
from repro.theory import unicast_capacity

from conftest import emit_table, run_once

K, D, P = 24, 3, 0.02
POPULATIONS = (250, 500, 1000, 2000)


def _measure(n: int, seed: int) -> tuple[float, float, float]:
    from repro.analysis import cut_mentions_failed_parents

    net = OverlayNetwork(k=K, d=D, seed=seed)
    net.grow(n)
    apply_failures(net, RandomBatchFailures(P), np.random.default_rng(seed + 1))
    failed = net.failed
    children_of_failed = set()
    for victim in failed:
        children_of_failed.update(
            c for c in net.matrix.children_of(victim).values() if c is not None
        )
    survivors = net.working_nodes
    connectivities = net.connectivities(survivors)
    harmed = [node for node in survivors if connectivities[node] < D]
    loss_probability = len(harmed) / len(survivors)
    local = (
        sum(1 for node in harmed if node in children_of_failed) / len(harmed)
        if harmed
        else 1.0
    )
    # The min-cut certificate: shortfall exactly equals failed-parent
    # count (a stronger statement than "the node is a child of a victim").
    certified = (
        sum(
            1 for node in harmed
            if cut_mentions_failed_parents(net.matrix, node, failed)
        ) / len(harmed)
        if harmed
        else 1.0
    )
    return loss_probability, local, certified


def experiment():
    rows = []
    for n in POPULATIONS:
        losses, locals_, certs = zip(
            *(_measure(n, 800 + n + r) for r in range(3))
        )
        rows.append([
            n,
            float(np.mean(losses)),
            P * D,  # the pd reference level
            float(np.mean(locals_)),
            float(np.mean(certs)),
        ])
    return rows


def test_e8_scalability(benchmark):
    rows = run_once(benchmark, experiment)
    emit_table(
        "e8_scalability",
        ["N", "P(connectivity loss)", "pd reference", "harmed who are children",
         "shortfall == failed parents"],
        rows,
        title=(
            f"E8 — scalability (k={K}, d={D}, p={P}; unicast capacity would "
            f"be {unicast_capacity(K, D)} users)"
        ),
    )
    losses = [row[1] for row in rows]
    # flat in N: largest population is no worse than smallest + slack
    assert losses[-1] <= losses[0] + 0.03
    # every measurement is in the pd ballpark
    assert all(loss <= 2.5 * P * D + 0.02 for loss in losses)
    # failures are locally contained: harmed nodes are (almost) all children
    assert all(row[3] >= 0.95 for row in rows)
    # and the min-cut certificate confirms the damage is exactly the
    # failed parents for (almost) every harmed node
    assert all(row[4] >= 0.9 for row in rows)
