"""X3 — §7's conjecture: losing κ threads ≈ losing κ parents.

"We conjecture that the probability of losing κ ≪ d threads of
connectivity must be about the same as the probability of losing κ
parents."  If true, a node's connectivity loss after iid failures is
distributed ≈ Binomial(d, p) — the distribution of its failed-parent
count — with no heavy tail from deeper correlated damage.

We measure the full κ histogram across survivors and print it against
the Binomial(d, p) prediction.
"""

import math

import numpy as np

from repro.core import OverlayNetwork
from repro.failures import IIDFailures, apply_failures

from conftest import emit_table, run_once

K, D, N, P = 24, 3, 500, 0.05
REPEATS = 6


def _binomial_pmf(kappa: int) -> float:
    return math.comb(D, kappa) * (P ** kappa) * ((1 - P) ** (D - kappa))


def experiment():
    counts = np.zeros(D + 1, dtype=float)
    total = 0
    for repeat in range(REPEATS):
        net = OverlayNetwork(k=K, d=D, seed=4000 + repeat)
        net.grow(N)
        apply_failures(net, IIDFailures(P), np.random.default_rng(5000 + repeat))
        survivors = net.working_nodes
        connectivities = net.connectivities(survivors)
        for node in survivors:
            kappa = D - connectivities[node]
            counts[kappa] += 1
            total += 1
    rows = []
    for kappa in range(D + 1):
        rows.append([
            kappa,
            counts[kappa] / total,
            _binomial_pmf(kappa),
        ])
    return rows, total


def test_x3_second_moment(benchmark):
    rows, total = run_once(benchmark, experiment)
    emit_table(
        "x3_second_moment",
        ["kappa (threads lost)", "measured P", "Binomial(d, p) prediction"],
        rows,
        title=(
            f"X3 — §7 conjecture: loss distribution vs Binomial(d={D}, p={P})"
            f" over {total} survivor observations"
        ),
    )
    for kappa, measured, predicted in rows:
        # match within 35% relative (Monte-Carlo + the ≈ in the claim),
        # using an absolute floor for the rare tails
        assert abs(measured - predicted) <= max(0.35 * predicted, 0.004)
