"""X11 — asynchronous downloads: does joining late cost you?

§1 frames downloads as deferred synchronous transmission; §2 notes users
"join the system at any time".  The practical question for a download
swarm: is a latecomer's download as fast as an early bird's?  It should
be — the overlay's serving capacity comes from the peers, which are all
still there (and all hold the content's degrees of freedom), while the
server's load stays k threads regardless.

We run a download session with steady arrivals, bucket completed nodes
by join time, and compare their download durations measured on their
own clocks.
"""

import numpy as np

from repro.sim import SessionConfig, run_session

from conftest import emit_table, run_once

CONFIG = SessionConfig(
    k=14, d=2, population=20, content_size=2000,
    generation_size=8, payload_size=50,
    join_rate=3, repair_interval=8,
    max_slots=700, seed=77,
)
BUCKETS = ((0, 0), (1, 24), (25, 48), (49, 120))


def experiment():
    result = run_session(CONFIG)
    durations = result.download_durations()
    rows = []
    by_bucket = {}
    for low, high in BUCKETS:
        sample = [
            durations[node]
            for node, joined in result.joined_at.items()
            if node in durations and low <= joined <= high
        ]
        label = "initial swarm" if high == 0 else f"joined slots {low}-{high}"
        mean = float(np.mean(sample)) if sample else None
        by_bucket[(low, high)] = (mean, len(sample))
        rows.append([label, len(sample), mean])
    return rows, by_bucket, result


def test_x11_async_download(benchmark):
    rows, by_bucket, result = run_once(benchmark, experiment)
    emit_table(
        "x11_async_download",
        ["join window", "completed nodes", "mean download slots (own clock)"],
        rows,
        title=(
            f"X11 — download duration vs join time (k={CONFIG.k}, "
            f"d={CONFIG.d}, {CONFIG.join_rate} joins per "
            f"{CONFIG.repair_interval}-slot interval)"
        ),
    )
    initial_mean, initial_n = by_bucket[(0, 0)]
    assert initial_n >= 10 and initial_mean is not None
    # every later bucket with data downloads within 2.5x the initial
    # swarm's duration — no penalty that grows with swarm age
    later = [
        mean for (low, high), (mean, n) in by_bucket.items()
        if high != 0 and n >= 3 and mean is not None
    ]
    assert later, "later buckets must have completions"
    for mean in later:
        assert mean <= 2.5 * initial_mean
    # and the LAST bucket is not slower than the first later bucket + slack
    assert later[-1] <= later[0] * 2.0 + 10