"""X1 — ablation: decentralised gossip joins vs server-selected joins.

§7: "the role of the server can be decreased still further or even
eliminated"; §3: "the specifics of the protocol are less important than
the topological structure".  Three join protocols over the same
population:

* server — §3's uniform thread selection (the baseline);
* gossip-greedy — downstream-biased walk, clip the first d threads
  found.  Locality builds deep narrow braids: full connectivity at rest
  but catastrophic loss under a batch failure.  The *uniformity* of
  selection is load-bearing;
* gossip-mixed — same walk, but oversample 3·d threads and clip a random
  subset.  De-biasing restores the server's robustness with no server.

This is exactly the paper's point read back: the protocol specifics do
not matter *as long as the resulting topology stays uniformly random*.
"""

import numpy as np

from repro.analysis import delay_profile
from repro.core import GossipJoinProtocol, OverlayNetwork, selection_bias
from repro.failures import RandomBatchFailures, apply_failures

from conftest import emit_table, run_once

K, D, N = 16, 3, 400
FAIL_FRACTION = 0.1


def _measure(mode: str, seed: int):
    net = OverlayNetwork(k=K, d=D, seed=seed)
    net.grow(10)  # bootstrap population
    history = None
    if mode == "server":
        net.grow(N - 10)
    else:
        if mode == "gossip-greedy":
            gossip = GossipJoinProtocol(net, walk_length=6)
        else:  # gossip-mixed
            gossip = GossipJoinProtocol(net, walk_length=6, oversample=3.0,
                                        choose="random")
        gossip.grow(N - 10)
        history = gossip.history
    full = sum(1 for c in net.connectivities().values() if c == D)
    depth = delay_profile(net.graph()).mean_depth
    bias = selection_bias(history, K) if history else 0.0
    apply_failures(net, RandomBatchFailures(FAIL_FRACTION),
                   np.random.default_rng(seed + 1))
    survivors = net.working_nodes
    connectivities = net.connectivities(survivors)
    loss = float(np.mean([(D - connectivities[n]) / D for n in survivors]))
    return full / N, depth, bias, loss


def experiment():
    rows = []
    for mode in ("server", "gossip-greedy", "gossip-mixed"):
        fulls, depths, biases, losses = zip(
            *(_measure(mode, 2000 + r) for r in range(3))
        )
        rows.append([
            mode,
            float(np.mean(fulls)),
            float(np.mean(depths)),
            float(np.mean(biases)),
            float(np.mean(losses)),
        ])
    return rows


def test_x1_gossip(benchmark):
    rows = run_once(benchmark, experiment)
    emit_table(
        "x1_gossip",
        ["join protocol", "full-connectivity fraction", "mean depth",
         "selection bias (TV)", f"loss/thread @ {FAIL_FRACTION:.0%} batch"],
        rows,
        title=f"X1 — gossip vs server joins (k={K}, d={D}, N={N})",
    )
    by_mode = {row[0]: row for row in rows}
    # every protocol gives everyone full connectivity at rest
    for row in rows:
        assert row[1] == 1.0
    # greedy gossip forfeits the robustness theorem...
    assert by_mode["gossip-greedy"][4] > 3.0 * by_mode["server"][4]
    # ...de-biased gossip restores it
    assert abs(by_mode["gossip-mixed"][4] - by_mode["server"][4]) < 0.05
