#!/usr/bin/env python
"""Live streaming: a television-style broadcast surviving constant churn.

The §1 scenario: a server with bandwidth for tens of peers serves a live
event to a much larger audience through the overlay.  Peers fail and are
repaired continuously; ergodic packet loss runs at 1%; latecomers tune
in mid-stream.  We track the audience's decoding progress generation by
generation — the streaming analogue of staying ahead of the playhead.

Run:  python examples/live_streaming.py
"""


from repro.sim import run_session
from repro.workloads import live_streaming


def main() -> None:
    config = live_streaming(
        seed=7,
        population=60,
        content_size=18_000,
        generation_size=10,
        payload_size=180,
        fail_probability=0.01,
        repair_interval=8,
        join_rate=1,
        loss_rate=0.01,
        max_slots=2_500,
    )
    print("live event:", config.content_size, "bytes at k =", config.k,
          "threads, audience", config.population, "+ latecomers")

    result = run_session(config)
    report = result.report

    print(f"\nran {report.slots} slots")
    print(f"failures injected: {result.failures_injected}, "
          f"repairs: {result.repairs_performed}, "
          f"latecomers joined: {result.joins}")
    print(f"link delivery ratio (after 1% ergodic loss): "
          f"{report.link_stats.delivery_ratio:.3f}")

    completed = [n for n in report.nodes if n.completed_at is not None]
    print(f"\naudience that decoded the full event: "
          f"{len(completed)}/{len(report.nodes)}")
    if completed:
        slots = sorted(n.completed_at for n in completed)
        print(f"decode times: median slot {slots[len(slots) // 2]}, "
              f"p95 slot {slots[int(0.95 * (len(slots) - 1))]}")
    ok = all(n.decoded_ok for n in completed)
    print(f"every completed decode bit-exact: {ok}")

    # streaming health: innovative packets per slot per peer ≈ the rate
    # the audience can actually play at
    goodput = report.mean_goodput
    print(f"mean goodput: {goodput:.2f} innovative packets/slot/peer "
          f"(d = {config.d} is the ceiling)")
    assert ok


if __name__ == "__main__":
    main()
