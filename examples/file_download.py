#!/usr/bin/env python
"""File distribution: the BitTorrent-style flash crowd of §3.

A 64 KiB "release" goes out to a small seed swarm; a flash crowd of
latecomers arrives during distribution (the Redhat-9 story).  We compare
the RLNC overlay against uncoded store-and-forward flooding on the *same*
overlay to show what coding buys: no coupon-collector tail, and
robustness to the crowd's churn.

Run:  python examples/file_download.py
"""

import numpy as np

from repro.baselines import FloodingSimulation
from repro.coding import GenerationParams
from repro.core import OverlayNetwork
from repro.sim import BroadcastSimulation
from repro.workloads import flash_crowd_schedule

K, D = 20, 2
SEED_SWARM = 25
CONTENT_BYTES = 65_536
GENERATION = 16
PAYLOAD = 512


def build_overlay(seed: int) -> OverlayNetwork:
    net = OverlayNetwork(k=K, d=D, seed=seed)
    net.grow(SEED_SWARM)
    return net


def run_rlnc(seed: int) -> None:
    rng = np.random.default_rng(seed)
    content = rng.integers(0, 256, size=CONTENT_BYTES, dtype=np.uint8).tobytes()
    net = build_overlay(seed)
    params = GenerationParams(generation_size=GENERATION, payload_size=PAYLOAD)
    sim = BroadcastSimulation(net, content, params, seed=seed)

    # flash crowd: Gaussian arrival spike centred early in the download
    schedule = flash_crowd_schedule(
        60, peak_rate=3.0, peak_at=15, width=6.0,
        rng=np.random.default_rng(seed + 1),
    )
    for slot, joins in enumerate(schedule):
        for _ in range(joins):
            net.join()
        sim.step()
    report = sim.run_until_complete(max_slots=3_000)

    slots = report.completion_slots()
    print(f"[rlnc]     swarm grew {SEED_SWARM} -> {net.population} peers")
    print(f"[rlnc]     {report.completion_fraction:.0%} complete; "
          f"median slot {sorted(slots)[len(slots) // 2]}, last {max(slots)}")
    ok = all(n.decoded_ok for n in report.nodes if n.completed_at is not None)
    print(f"[rlnc]     all decodes bit-exact: {ok}")
    assert ok


def run_flooding(seed: int) -> None:
    net = build_overlay(seed)
    packet_count = CONTENT_BYTES // PAYLOAD  # same number of pieces
    sim = FloodingSimulation(net, packet_count=packet_count, seed=seed)
    report = sim.run_until_complete(max_slots=3_000)
    print(f"[flooding] {report.completion_fraction:.0%} complete "
          f"after {report.slots} slots; "
          f"{report.duplicate_fraction:.0%} of received pieces were duplicates")


def main() -> None:
    print(f"distributing {CONTENT_BYTES // 1024} KiB "
          f"(k={K}, d={D}, seed swarm {SEED_SWARM})\n")
    run_rlnc(11)
    print()
    run_flooding(11)
    print("\nthe flooding run pays the coupon-collector tax: duplicates "
          "instead of innovation.")


if __name__ == "__main__":
    main()
