#!/usr/bin/env python
"""Stopping jammers with homomorphic hashes (§7's open problem).

The paper: a jamming attacker injects random packets that *claim* to be
valid combinations; after in-network mixing they contaminate nearly
every decode, and "it is an open problem whether such a [combinable
signature] scheme is possible."

It is — Krohn–Freedman–Mazières (Oakland 2004).  This demo runs the
same relay pipeline twice:

1. unprotected GF(2⁸): one jammer per hop; receivers decode garbage
   without knowing it;
2. the verified Z_q plane: the source publishes one homomorphic hash
   per original packet; every relay checks every packet — including
   *mixtures produced by other relays* — and garbage dies on contact.

Run:  python examples/verified_streaming.py
"""

import time

import numpy as np

from repro.coding import Decoder, GenerationParams, Recoder, SourceEncoder
from repro.coding.packet import CodedPacket
from repro.security import (
    HomomorphicHasher,
    PrimeDecoder,
    PrimeEncoder,
    VerifiedRelay,
    bytes_to_symbols,
    generate_params,
    make_jam_packet,
    symbols_to_bytes,
)

CONTENT_BYTES = 1_500
SYMBOLS = 24  # 72 bytes of payload per packet on the verified plane
SEED = 7


def unprotected() -> None:
    rng = np.random.default_rng(SEED)
    content = rng.integers(0, 256, size=CONTENT_BYTES, dtype=np.uint8).tobytes()
    params = GenerationParams(generation_size=15, payload_size=100)
    encoder = SourceEncoder(content, params, rng)
    relay = Recoder(params, encoder.generation_count, rng, node_id=1)
    sink = Decoder(params, encoder.generation_count)
    jam_rng = np.random.default_rng(SEED + 1)
    while not sink.is_complete:
        relay.receive(encoder.emit(0))
        jam = CodedPacket(
            generation=0,
            coefficients=jam_rng.integers(1, 256, size=15, dtype=np.uint8),
            payload=jam_rng.integers(0, 256, size=100, dtype=np.uint8),
        )
        relay.receive(jam)  # the relay cannot tell — it mixes the poison in
        packet = relay.emit(0)
        if packet is not None:
            sink.push(packet)
    poisoned = sink.recover(len(content)) != content
    print(f"[unprotected] decode finished; poisoned: {poisoned}")


def protected() -> None:
    rng = np.random.default_rng(SEED)
    content = rng.integers(0, 256, size=CONTENT_BYTES, dtype=np.uint8).tobytes()
    source = bytes_to_symbols(content, SYMBOLS)
    g = source.shape[0]
    encoder = PrimeEncoder(source, rng)

    t0 = time.perf_counter()
    params = generate_params(SYMBOLS, seed=SEED)
    hasher = HomomorphicHasher(params)
    hashes = hasher.hash_generation(source)
    setup = time.perf_counter() - t0
    print(f"[verified]    published {g} source hashes "
          f"(group modulus {params.modulus.bit_length()} bits, "
          f"setup {setup * 1000:.1f} ms)")

    relay = VerifiedRelay(hasher, hashes, g, SYMBOLS, rng, node_id=1)
    sink = PrimeDecoder(g, SYMBOLS)
    jam_rng = np.random.default_rng(SEED + 1)
    t0 = time.perf_counter()
    while not sink.is_complete:
        relay.receive(encoder.emit())
        relay.receive(make_jam_packet(g, SYMBOLS, jam_rng))
        packet = relay.emit()
        if packet is not None:
            sink.push(packet)
    elapsed = time.perf_counter() - t0
    clean = symbols_to_bytes(sink.recover(), len(content)) == content
    checks = relay.stats.accepted + relay.stats.rejected
    print(f"[verified]    decode finished; bit-exact: {clean}")
    print(f"[verified]    {relay.stats.rejected} jam packets rejected on "
          f"contact ({checks} verifications, "
          f"{elapsed / checks * 1000:.2f} ms each at demo parameters)")


def main() -> None:
    print(f"streaming {CONTENT_BYTES} bytes through a relay with a jammer "
          "injecting one garbage packet per slot\n")
    unprotected()
    print()
    protected()
    print("\nthe hash composes under mixing — H(au+bv) = H(u)^a H(v)^b — so\n"
          "any relay can verify any mixture from the source hashes alone.\n"
          "Production deployments use >=1024-bit groups and batched checks.")


if __name__ == "__main__":
    main()
