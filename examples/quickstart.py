#!/usr/bin/env python
"""Quickstart: build an overlay, break it, watch network coding not care.

Walks through the paper's whole pipeline in one minute:

1. build a curtain overlay (server with k threads, nodes clipping d each);
2. inspect its topology and connectivity;
3. fail some nodes and observe the *local* impact (only children suffer);
4. repair and verify full recovery;
5. broadcast an actual file with RLNC and check every peer decodes it
   bit-exactly.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import GenerationParams, OverlayNetwork
from repro.analysis import delay_profile
from repro.sim import BroadcastSimulation

K = 16          # server bandwidth, in unit threads
D = 3           # per-node bandwidth, in unit threads
PEERS = 50
SEED = 2005     # PODC 2005


def main() -> None:
    # 1. Build the overlay -------------------------------------------------
    net = OverlayNetwork(k=K, d=D, seed=SEED)
    net.grow(PEERS)
    print(f"overlay: k={K} threads, d={D} per node, {net.population} peers")

    profile = delay_profile(net.graph())
    print(f"depth: mean {profile.mean_depth:.1f} hops, max {profile.max_depth}")

    # 2. Everyone has full connectivity d from the server ------------------
    print(f"connectivity histogram: {net.connectivity_histogram()}")

    # 3. Fail three random peers -------------------------------------------
    victims = [net.random_working_node() for _ in range(3)]
    children = set()
    for victim in victims:
        children.update(
            child for child in net.matrix.children_of(victim).values()
            if child is not None
        )
        net.fail(victim)
    print(f"\nfailed {victims}; their direct children: {sorted(children)}")

    harmed = {
        node: connectivity
        for node, connectivity in net.connectivities().items()
        if 0 < connectivity < D
    }
    print(f"peers with reduced connectivity: {harmed}")
    print("note: every harmed peer is a direct child — impact is local (Thm 4)")

    # 4. Repair (splice parents to children) and recover --------------------
    net.repair_all()
    print(f"\nafter repair: {net.connectivity_histogram()}")

    # 5. Broadcast a file with RLNC -----------------------------------------
    rng = np.random.default_rng(SEED)
    content = rng.integers(0, 256, size=24_000, dtype=np.uint8).tobytes()
    params = GenerationParams(generation_size=12, payload_size=250)
    sim = BroadcastSimulation(net, content, params, seed=SEED)
    report = sim.run_until_complete(max_slots=2_000)

    slots = report.completion_slots()
    print(f"\nbroadcast {len(content)} bytes in {report.slots} slots")
    print(f"completion: {report.completion_fraction:.0%} of peers; "
          f"first done at slot {min(slots)}, last at {max(slots)}")
    ok = all(node.decoded_ok for node in report.nodes)
    print(f"bit-exact decode at every peer: {ok}")
    assert ok


if __name__ == "__main__":
    main()
