#!/usr/bin/env python
"""Heterogeneous users (§5): DSL, cable and T1 peers in one overlay.

"The design of the system does not use [equal bandwidth] anywhere."
Users join with a `d` matching their access link; the analysis shows
each class receives bandwidth proportional to its degree — which is what
makes priority encoding transmission (PET [2]) work: receivers with more
threads decode more resolution layers of the same broadcast.

Run:  python examples/heterogeneous_swarm.py
"""

import numpy as np

from repro.baselines import MDSCode
from repro.core import (
    DEFAULT_CLASSES,
    OverlayNetwork,
    class_connectivity_report,
    join_population,
)
from repro.failures import RandomBatchFailures, apply_failures

K = 32
POPULATION = 120
SEED = 19


def main() -> None:
    net = OverlayNetwork(k=K, d=4, seed=SEED)
    rng = np.random.default_rng(SEED)
    membership = join_population(
        net, DEFAULT_CLASSES, weights=[5, 3, 1], count=POPULATION, rng=rng
    )
    mix = {
        cls.name: sum(1 for c in membership.values() if c.name == cls.name)
        for cls in DEFAULT_CLASSES
    }
    print(f"swarm of {POPULATION}: {mix}")

    # a batch failure hits 8% of the swarm
    apply_failures(net, RandomBatchFailures(0.08), rng)
    report = class_connectivity_report(
        net, {n: c for n, c in membership.items() if n not in net.failed}
    )
    print("\nper-class bandwidth after an 8% batch failure:")
    for name in ("dsl", "cable", "t1"):
        row = report[name]
        print(f"  {name:6s} nodes={row['nodes']:4.0f}  "
              f"mean connectivity={row['mean_connectivity']:.2f} units  "
              f"fraction of nominal={row['mean_fraction']:.1%}")
    print("every class loses the same *fraction* ≈ p — loss is proportional,")
    print("so layered (PET) encodings degrade gracefully per class.")

    # PET sketch: 3 resolution layers coded so that any m of 8 stripes
    # recover layer m's quality.  A peer's class determines how many
    # stripes (units) it receives, hence which layer it can decode.
    print("\npriority encoding sketch (8 stripes, layers at m = 2, 4, 8):")
    code = MDSCode(n=8, m=2)
    base_layer = rng.integers(0, 256, size=(2, 64), dtype=np.uint8)
    stripes = code.encode(base_layer)
    # a DSL peer (2 units) picks up any 2 stripes and decodes the base layer
    picked = [1, 6]
    recovered = code.decode(picked, stripes[picked])
    print(f"  dsl peer decodes base layer from stripes {picked}: "
          f"{bool(np.array_equal(recovered, base_layer))}")
    print("  cable peers (4 units) add the middle layer; T1 peers (8) get all.")


if __name__ == "__main__":
    main()
