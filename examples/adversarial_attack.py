#!/usr/bin/env python
"""Adversarial failures (§5) and data-plane attacks (§7), demonstrated.

Part 1 — the membership attack and its defence:
    a coordinated cohort (adversaries who joined back-to-back) fails
    simultaneously.  Under §3 append ordering they disconnect a large
    slice of the audience; under §5 random row insertion the same attack
    looks like background noise.

Part 2 — data-plane attacks at the same penetration:
    entropy destruction (trivial combinations: valid-looking, silently
    useless) vs jamming (garbage packets that contaminate almost every
    decode after mixing).

Run:  python examples/adversarial_attack.py
"""

import numpy as np

from repro.coding import GenerationParams
from repro.core import OverlayNetwork
from repro.failures import CohortBatchFailures, apply_failures
from repro.sim import BroadcastSimulation, NodeRole

K, D, N = 16, 2, 300
ATTACK_FRACTION = 0.15


def membership_attack(insert_mode: str, seed: int) -> None:
    net = OverlayNetwork(k=K, d=D, seed=seed, insert_mode=insert_mode)
    net.grow(N)
    apply_failures(net, CohortBatchFailures(ATTACK_FRACTION),
                   np.random.default_rng(seed + 1))
    survivors = net.working_nodes
    connectivity = net.connectivities(survivors)
    disconnected = sum(1 for node in survivors if connectivity[node] == 0)
    mean_loss = np.mean([D - connectivity[node] for node in survivors]) / D
    print(f"  insert_mode={insert_mode:8s}  "
          f"fully disconnected: {disconnected / len(survivors):6.1%}   "
          f"mean bandwidth loss: {mean_loss:6.1%}")


def data_plane_attack(role: NodeRole, seed: int) -> None:
    net = OverlayNetwork(k=K, d=3, seed=seed)
    net.grow(40)
    rng = np.random.default_rng(seed + 1)
    attackers = rng.choice(net.matrix.node_ids, size=6, replace=False)
    roles = {int(a): role for a in attackers}
    content = rng.integers(0, 256, size=8_000, dtype=np.uint8).tobytes()
    sim = BroadcastSimulation(
        net, content, GenerationParams(generation_size=10, payload_size=200),
        seed=seed + 2, roles=roles,
    )
    report = sim.run_until_complete(max_slots=400)
    received = sum(n.received for n in report.nodes)
    innovative = sum(n.innovative for n in report.nodes)
    print(f"  {role.value:8s}  completion {report.completion_fraction:6.1%}   "
          f"innovation efficiency {innovative / received:6.1%}   "
          f"poisoned decodes {report.poisoned_fraction:6.1%}")


def main() -> None:
    print(f"Part 1 — coordinated cohort failure "
          f"({ATTACK_FRACTION:.0%} of {N} peers fail at once):")
    membership_attack("append", seed=42)
    membership_attack("uniform", seed=42)
    print("  -> §5's random row insertion turns the attack into noise.\n")

    print("Part 2 — data-plane attacks (6 of 40 peers malicious):")
    data_plane_attack(NodeRole.ENTROPY_ATTACKER, seed=77)
    data_plane_attack(NodeRole.JAMMER, seed=77)
    print("  -> entropy attacks starve innovation but never corrupt;")
    print("     jamming corrupts decodes silently — the open problem of §7")
    print("     (homomorphic signatures) is what it would take to stop it.")


if __name__ == "__main__":
    main()
