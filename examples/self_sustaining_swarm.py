#!/usr/bin/env python
"""Self-sustaining swarms (§6): when can the server walk away?

§6 suggests that "in the file download scenario it may be possible
eventually for the server to disconnect itself completely from the
network after the content has been delivered to a small fraction of the
population."  This demo makes the condition precise and shows the
topology dependence:

* the *collective* condition — the swarm's union of coefficient spaces
  spans every generation — is necessary and cheap to check;
* on the acyclic curtain it is NOT sufficient: information only flows
  down the threads, so once the rod goes silent the top rows freeze at
  whatever rank they had;
* on the §6 cyclic random-graph overlay it IS sufficient: mixtures
  circulate and the swarm finishes the distribution among itself.

Run:  python examples/self_sustaining_swarm.py
"""

import numpy as np

from repro.coding import GenerationParams
from repro.core import OverlayNetwork, RandomGraphOverlay
from repro.sim import BroadcastSimulation, GraphBroadcastSimulation

K, D, PEERS = 12, 3, 40
CONTENT_BYTES = 6_000
PARAMS = GenerationParams(generation_size=12, payload_size=125)


def content_bytes(seed: int) -> bytes:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=CONTENT_BYTES, dtype=np.uint8).tobytes()


def curtain_run(seed: int) -> None:
    net = OverlayNetwork(k=K, d=D, seed=seed)
    net.grow(PEERS)
    sim = BroadcastSimulation(net, content_bytes(seed), PARAMS, seed=seed + 1)
    while not sim.swarm_has_full_rank():
        sim.step()
    print(f"[curtain]      swarm holds all DoF at slot {sim.slot} "
          f"({sim.server_packets} server packets) — server detaches")
    sim.detach_server()
    report = sim.run_until_complete(max_slots=800)
    print(f"[curtain]      completion after detach: "
          f"{report.completion_fraction:.0%}  <- the top rows starved")


def random_graph_run(seed: int) -> None:
    overlay = RandomGraphOverlay(k=K, d=D, seed=seed)
    overlay.grow(PEERS)
    sim = GraphBroadcastSimulation(overlay, content_bytes(seed), PARAMS,
                                   seed=seed + 1)
    while not sim.swarm_has_full_rank():
        sim.step()
    print(f"[random graph] swarm holds all DoF at slot {sim.slot} "
          f"({sim.server_packets} server packets) — server detaches")
    sim.detach_server()
    report = sim.run_until_complete(max_slots=800)
    ok = all(n.decoded_ok for n in report.nodes)
    print(f"[random graph] completion after detach: "
          f"{report.completion_fraction:.0%}, bit-exact: {ok}")
    total_dof = sim.generation_count * PARAMS.generation_size
    print(f"[random graph] the server sent {sim.server_packets} packets for "
          f"{PEERS} peers x {total_dof} DoF each — "
          f"{sim.server_packets / (PEERS * total_dof):.1%} of a unicast load")


def main() -> None:
    print(f"{CONTENT_BYTES} bytes to {PEERS} peers (k={K}, d={D});\n"
          "the server leaves the moment the swarm *collectively* holds "
          "every degree of freedom.\n")
    curtain_run(seed=2005)
    print()
    random_graph_run(seed=2005)
    print("\ncycles are what let a swarm redistribute internally — the §6\n"
          "topology trade-off (log delay, self-sustainability) in action.")


if __name__ == "__main__":
    main()
