"""The coordination + source server over real sockets.

:class:`ServerNode` is the live-transport driver of the sans-IO
:class:`~repro.protocol.server_engine.ServerEngine`: every protocol
decision — hello grants, Lemma 1 splices, the complaint→probe→repair
slow path — happens inside the engine, and this module only owns what
a real deployment adds around it:

* the listen socket and one control connection per admitted peer
  (first frame: ``JoinRequest``), each pumping received frames into the
  engine and performing the effects it returns;
* address book upkeep — a ``PeerLocator`` precedes every ``SetParent``
  so the child can dial its new parent;
* probe deadlines as asyncio sleeps feeding
  :class:`~repro.protocol.events.TimerFired` back into the engine;
* the data plane's root: a
  :class:`~repro.coding.encoder.SourceEncoder` pumping coded packets
  down each column's chain (top nodes dial a *data* connection, first
  frame ``DataHello``).

Failure handling is two-layered, both decided by the engine: the
**fast path** treats a control connection dropping without a
``LeaveRequest`` as a crash (:class:`~repro.protocol.events.ConnectionLost`),
the **slow path** probes complained-about suspects and splices them on
probe timeout, exactly as in §3.
"""

from __future__ import annotations

import asyncio
import logging
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..coding.buffers import DEFAULT_POOL
from ..coding.encoder import SourceEncoder
from ..coding.generation import GenerationParams
from ..core.matrix import SERVER
from ..core.server import CoordinationServer
from ..dataplane import EmitRound, EmitToChildren, SourceEngine
from ..obs import (
    DataplaneInstruments,
    FlightRecorder,
    Registry,
    ServerEngineInstruments,
    bind_fields,
    bind_pool,
    bind_sender_totals,
    snapshot_obj,
)
from ..protocol import (
    Admitted,
    CloseConnection,
    ConnectionLost,
    JoinRequest,
    MessageReceived,
    PeerDeparted,
    Probe,
    Send,
    ServerEngine,
    SetParent,
    StartTimer,
    TimerFired,
)
from .control import DataHello, PeerLocator, SessionInfo
from .framing import (
    FramingError,
    encode_data_frames,
    read_message,
    write_control_nowait,
)
from .streams import PacketSender, SenderStats
from .transport import AsyncioTransport, ByteStreamWriter, Listener, Transport

__all__ = ["ServerNode", "ServerStats"]


class ServerStats:
    """Counters the loopback harness folds into its RunReport.

    ``rounds`` and ``packets_sent`` are read-through views over the
    server's :class:`~repro.dataplane.SourceEngine` — the engine's
    bookkeeping is the one authoritative copy since the dataplane
    unification.  The membership counters stay plain driver-owned
    fields.
    """

    def __init__(self, dataplane: SourceEngine) -> None:
        self._dataplane = dataplane
        self.repairs = 0
        self.probes = 0
        self.joins = 0
        self.leaves = 0
        self.crashes = 0

    @property
    def rounds(self) -> int:
        return self._dataplane.rounds

    @property
    def packets_sent(self) -> int:
        return self._dataplane.packets_sent

    def __repr__(self) -> str:  # noqa: D105
        return (
            f"ServerStats(rounds={self.rounds}, "
            f"packets_sent={self.packets_sent}, repairs={self.repairs}, "
            f"probes={self.probes}, joins={self.joins}, "
            f"leaves={self.leaves}, crashes={self.crashes})"
        )


@dataclass
class _PeerHandle:
    """Server-side connection state for one admitted peer."""

    node_id: int
    host: str
    port: int
    writer: ByteStreamWriter
    tasks: list = field(default_factory=list)


class ServerNode:
    """Asyncio server owning the thread matrix and the source stream.

    Args:
        content: Bytes to broadcast.
        params: Coding geometry shared with every peer.
        k: Server threads (matrix columns).
        d: Default per-peer thread count.
        host, port: Listen address (port 0 = ephemeral).
        seed: All membership and coding randomness flows from here.
        insert_mode: ``"append"`` (§3) or ``"uniform"`` (§5 hardening).
        send_interval: Seconds between emission rounds (one coded packet
            per attached column per round).
        queue_limit: Bound of each column's outbound queue.
        keepalive_interval: Idle keep-alive period on data connections.
        probe_timeout: Grace period for a suspect to answer a probe.
        transport: Network + clock seam (real asyncio TCP by default;
            the chaos harness injects a virtual network).
        batched: Use the batched data plane (one mixing gemm per round,
            encode-once frames, coalesced flushes).  Off reproduces the
            scalar per-packet path — RNG-stream and wire-byte identical,
            kept for A/B throughput measurement.
    """

    def __init__(
        self,
        content: bytes,
        params: GenerationParams,
        *,
        k: int,
        d: int,
        host: str = "127.0.0.1",
        port: int = 0,
        seed: int = 0,
        insert_mode: str = "append",
        send_interval: float = 0.005,
        queue_limit: int = 32,
        keepalive_interval: float = 0.25,
        probe_timeout: float = 0.5,
        transport: Optional[Transport] = None,
        batched: bool = True,
    ) -> None:
        self.transport: Transport = (
            transport if transport is not None else AsyncioTransport()
        )
        self.clock = self.transport.clock
        rng = np.random.default_rng(seed)
        self.engine = ServerEngine(
            CoordinationServer(k, d, rng, insert_mode),
            probe_timeout=probe_timeout,
        )
        self.encoder = SourceEncoder(content, params, rng)
        #: The sans-IO data-plane core (generation scheduling + per-round
        #: emission; the stream loop just pumps its effects).
        self.dataplane = SourceEngine(self.encoder, batched=batched)
        self.params = params
        self.content_length = len(content)
        self.host = host
        self.port = port
        self.send_interval = send_interval
        self.queue_limit = queue_limit
        self.keepalive_interval = keepalive_interval
        self.probe_timeout = probe_timeout
        self.batched = batched
        self.stats = ServerStats(self.dataplane)
        self._peers: dict[int, _PeerHandle] = {}
        self._column_senders: dict[int, PacketSender] = {}
        #: One entry per data connection ever served (stats outlive pumps).
        self.sender_stats: list[SenderStats] = []
        self._server: Optional[Listener] = None
        self._stream_task: Optional[asyncio.Task] = None
        self._timer_tasks: set[asyncio.Task] = set()
        self._running = False
        self.log = logging.getLogger("repro.net.server")
        #: Per-node telemetry: engine counters, folded stats dataclasses,
        #: per-column queue depths — everything snapshot-on-read, so the
        #: hot paths keep bumping plain dataclass fields.
        self.registry = Registry("server")
        ServerEngineInstruments(self.registry).attach(self.engine, self.registry)
        DataplaneInstruments(self.registry).attach(
            self.dataplane, self.registry
        )
        self.engine.flight = FlightRecorder()
        bind_fields(
            self.registry, self.stats,
            ("rounds", "packets_sent", "repairs", "probes",
             "joins", "leaves", "crashes"),
            "net", "live ServerStats counter",
        )
        bind_sender_totals(self.registry, lambda: self.sender_stats)
        bind_pool(self.registry, DEFAULT_POOL)
        for column in range(k):
            self.registry.gauge(
                f"net.queue_depth.c{column}",
                "frames queued on this column's outbound pump",
                fn=lambda c=column: (
                    sender.queue_depth
                    if (sender := self._column_senders.get(c)) is not None
                    else 0
                ),
            )

    def snapshot(self) -> dict:
        """This node's registries as a versioned snapshot object."""
        return snapshot_obj(self.registry)

    @property
    def core(self) -> CoordinationServer:
        """The matrix authority (owned by the engine)."""
        return self.engine.core

    # ------------------------------------------------------------------
    # Lifecycle

    async def start(self) -> None:
        """Bind the listen socket and start the emission loop."""
        self._server = await self.transport.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.address[1]
        self.log = logging.getLogger(f"repro.net.server.{self.port}")
        self.registry.name = f"server:{self.port}"
        self._running = True
        self._stream_task = asyncio.ensure_future(self._stream_loop())
        self.log.info(
            "listening on %s:%d (k=%d, d=%d)",
            self.host, self.port, self.core.k, self.core.d,
        )

    async def stop(self) -> None:
        """Close every connection and stop serving."""
        self._running = False
        pending = [t for t in [self._stream_task, *self._timer_tasks]
                   if t is not None]
        for task in pending:
            task.cancel()
        for sender in list(self._column_senders.values()):
            sender.close()
        self._column_senders.clear()
        for handle in list(self._peers.values()):
            handle.writer.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    @property
    def population(self) -> int:
        """Rows currently in the matrix."""
        return self.core.population

    # ------------------------------------------------------------------
    # Data plane

    async def _stream_loop(self) -> None:
        """One emission round per interval: a packet per attached column.

        The :class:`~repro.dataplane.SourceEngine` owns the schedule —
        round-robin generations so every generation keeps flowing
        regardless of which columns are attached, batched or scalar
        emission (RNG-stream identical) — and this loop only translates
        its effects onto the column pumps.
        """
        try:
            while self._running:
                await self.clock.sleep(self.send_interval)
                attached = [
                    (column, s)
                    for column, s in list(self._column_senders.items())
                    if not s.closed
                ]
                for effect in self.dataplane.handle(EmitRound(
                    targets=tuple(column for column, _ in attached)
                )):
                    if not isinstance(effect, EmitToChildren):
                        continue
                    senders = [s for _, s in attached]
                    if self.batched:
                        # One mixing gemm for the whole round, one pooled
                        # serialisation pass, immutable frames shared
                        # with the pumps.
                        frames = encode_data_frames(effect.packets)
                        for sender, frame in zip(senders, frames):
                            sender.enqueue_frame(frame)
                    else:
                        for sender, packet in zip(senders, effect.packets):
                            sender.enqueue(packet)
        except asyncio.CancelledError:
            pass

    # ------------------------------------------------------------------
    # Connection handling

    async def _handle_connection(
        self, reader, writer: ByteStreamWriter
    ) -> None:
        try:
            first = await read_message(reader)
        except FramingError:
            writer.close()
            return
        if isinstance(first, JoinRequest):
            await self._serve_control(first, reader, writer)
        elif isinstance(first, DataHello):
            await self._serve_data(first, reader, writer)
        else:
            writer.close()

    async def _serve_data(
        self, hello: DataHello, reader,
        writer: ByteStreamWriter,
    ) -> None:
        """Stream one column to the child that dialed us."""
        column = hello.column
        if not 0 <= column < self.core.k:
            writer.close()
            return
        old = self._column_senders.get(column)
        if old is not None:
            old.close()
        sender = PacketSender(
            writer, column=column, sender_id=SERVER,
            limit=self.queue_limit, keepalive_interval=self.keepalive_interval,
            clock=self.clock, coalesce=self.batched, logger=self.log,
        )
        self.sender_stats.append(sender.stats)
        self._column_senders[column] = sender
        try:
            await sender.run()
        finally:
            if self._column_senders.get(column) is sender:
                del self._column_senders[column]

    # ------------------------------------------------------------------
    # Control plane: pump the engine

    async def _serve_control(
        self, request: JoinRequest, reader,
        writer: ByteStreamWriter,
    ) -> None:
        handle = self._admit(request, writer)
        try:
            while self._running:
                message = await read_message(reader)
                if message is None:
                    break
                self._pump(self.engine.handle(
                    MessageReceived(message, sender=handle.node_id)
                ))
                if handle.node_id in self.engine.departed:
                    break
        except (FramingError, ConnectionError, OSError):
            pass
        finally:
            self._disconnect(handle)

    def _admit(
        self, request: JoinRequest, writer: ByteStreamWriter
    ) -> _PeerHandle:
        """Run the hello protocol for a fresh control connection."""
        peername = writer.get_extra_info("peername")
        host = peername[0] if peername else "127.0.0.1"
        handle: Optional[_PeerHandle] = None
        for effect in self.engine.handle(MessageReceived(request)):
            if isinstance(effect, Admitted):
                handle = _PeerHandle(
                    node_id=effect.node_id, host=host,
                    port=request.reply_to, writer=writer,
                )
                self._peers[effect.node_id] = handle
                self.stats.joins += 1
                self.log.info(
                    "admitted peer %d from %s:%d with %d threads",
                    effect.node_id, host, request.reply_to,
                    len(effect.assignments),
                )
                # Geometry first, then parent locators, then the grant
                # (delivered by the Send effect that follows): by the
                # time the joiner sees its assignments it can dial them.
                write_control_nowait(writer, SessionInfo(
                    generation_size=self.params.generation_size,
                    payload_size=self.params.payload_size,
                    generation_count=self.encoder.generation_count,
                    content_length=self.content_length,
                    k=self.core.k,
                    d=self.core.d,
                ))
                for _column, parent in effect.assignments:
                    self._send_locator(handle, parent)
            else:
                self._perform(effect)
        return handle

    def _pump(self, effects) -> None:
        for effect in effects:
            self._perform(effect)

    def _perform(self, effect) -> None:
        """Carry out one engine effect on the live transport."""
        if isinstance(effect, Send):
            if isinstance(effect.message, Probe):
                self.stats.probes += 1
                self.log.info("probing suspect %d", effect.to)
            self._notify(effect.to, effect.message)
        elif isinstance(effect, StartTimer):
            task = asyncio.ensure_future(self._timer(effect.key, effect.delay))
            self._timer_tasks.add(task)
            task.add_done_callback(self._timer_tasks.discard)
        elif isinstance(effect, CloseConnection):
            handle = self._peers.get(effect.node_id)
            if handle is not None:
                handle.writer.close()
        elif isinstance(effect, PeerDeparted):
            self.log.info(
                "peer %d departed (%s)", effect.node_id, effect.reason
            )
            if effect.reason == "leave":
                self.stats.leaves += 1
            else:
                self.stats.repairs += 1
                self._peers.pop(effect.node_id, None)
        # Admitted is handled by _admit; ComplaintNoted is bookkeeping
        # for drivers that track repair latency.

    async def _timer(self, key: tuple, delay: float) -> None:
        await self.clock.sleep(delay)
        self._pump(self.engine.handle(TimerFired(key)))

    def _disconnect(self, handle: _PeerHandle) -> None:
        """Control connection gone: a crash unless it said good-bye."""
        if self._running and handle.node_id not in self.engine.departed:
            self.stats.crashes += 1
            self._pump(self.engine.handle(ConnectionLost(handle.node_id)))
        self._peers.pop(handle.node_id, None)
        handle.writer.close()

    # ------------------------------------------------------------------
    # Helpers

    def _send_locator(self, to: _PeerHandle, node_id: int) -> None:
        """Tell ``to`` where ``node_id`` listens (no-op for the server)."""
        if node_id == SERVER:
            return
        peer = self._peers.get(node_id)
        if peer is not None:
            write_control_nowait(to.writer, PeerLocator(
                node_id=node_id, host=peer.host, port=peer.port))

    def _notify(self, node_id: int, message: object) -> None:
        """Fire-and-forget a control message to a connected peer.  A
        ``SetParent`` is preceded by the new parent's locator so the
        child can dial it."""
        if node_id == SERVER:
            return
        handle = self._peers.get(node_id)
        if handle is None:
            return
        try:
            if isinstance(message, SetParent):
                self._send_locator(handle, message.parent)
            write_control_nowait(handle.writer, message)
        except (ConnectionError, OSError):
            pass

    async def serve_forever(self) -> None:
        """Block until cancelled (used by the ``repro serve`` command)."""
        if self._server is None:
            raise RuntimeError("server not started")
        await self._server.serve_forever()
