"""The coordination + source server over real sockets.

:class:`ServerNode` is the live-transport counterpart of
:class:`~repro.protocol_sim.actors.ServerActor`: it owns the same
:class:`~repro.core.server.CoordinationServer` (and therefore the thread
matrix ``M``), serves the hello/good-bye protocols — including the §5
random-row-insertion variant via ``insert_mode="uniform"`` — and
additionally runs the data plane's root: a
:class:`~repro.coding.encoder.SourceEncoder` that pumps coded packets
down each column's chain.

Connections are dialed by the downstream side.  A peer keeps one
*control* connection open (first frame: ``JoinRequest``); the top node
of each column dials a *data* connection (first frame: ``DataHello``)
and receives that column's stream.  Failure handling is two-layered:

* **fast path** — a peer's control connection dropping without a
  ``LeaveRequest`` is treated as a crash: the server splices the row out
  (Lemma 1 repair) and pushes ``SetParent``/``AttachChild`` redirects;
* **slow path** — children whose threads go silent complain; the server
  probes the suspect over its control connection and repairs on probe
  timeout, exactly as in §3.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..coding.encoder import SourceEncoder
from ..coding.generation import GenerationParams
from ..core.matrix import SERVER
from ..core.server import CoordinationServer
from ..protocol_sim.messages import (
    AttachChild,
    ComplaintMsg,
    DetachChild,
    JoinGrant,
    JoinRequest,
    LeaveRequest,
    Probe,
    ProbeAck,
    SetParent,
)
from .control import DataHello, PeerLocator, SessionInfo
from .framing import (
    FramingError,
    encode_data_frames,
    read_message,
    write_control_nowait,
)
from .streams import PacketSender, SenderStats
from .transport import AsyncioTransport, ByteStreamWriter, Listener, Transport

__all__ = ["ServerNode", "ServerStats"]


@dataclass
class ServerStats:
    """Counters the loopback harness folds into its RunReport."""

    rounds: int = 0
    packets_sent: int = 0
    repairs: int = 0
    probes: int = 0
    joins: int = 0
    leaves: int = 0
    crashes: int = 0


@dataclass
class _PeerHandle:
    """Server-side state for one admitted peer."""

    node_id: int
    host: str
    port: int
    writer: ByteStreamWriter
    probe_nonce: Optional[int] = None
    left: bool = False
    tasks: list = field(default_factory=list)


class ServerNode:
    """Asyncio server owning the thread matrix and the source stream.

    Args:
        content: Bytes to broadcast.
        params: Coding geometry shared with every peer.
        k: Server threads (matrix columns).
        d: Default per-peer thread count.
        host, port: Listen address (port 0 = ephemeral).
        seed: All membership and coding randomness flows from here.
        insert_mode: ``"append"`` (§3) or ``"uniform"`` (§5 hardening).
        send_interval: Seconds between emission rounds (one coded packet
            per attached column per round).
        queue_limit: Bound of each column's outbound queue.
        keepalive_interval: Idle keep-alive period on data connections.
        probe_timeout: Grace period for a suspect to answer a probe.
        transport: Network + clock seam (real asyncio TCP by default;
            the chaos harness injects a virtual network).
        batched: Use the batched data plane (one mixing gemm per round,
            encode-once frames, coalesced flushes).  Off reproduces the
            scalar per-packet path — RNG-stream and wire-byte identical,
            kept for A/B throughput measurement.
    """

    def __init__(
        self,
        content: bytes,
        params: GenerationParams,
        *,
        k: int,
        d: int,
        host: str = "127.0.0.1",
        port: int = 0,
        seed: int = 0,
        insert_mode: str = "append",
        send_interval: float = 0.005,
        queue_limit: int = 32,
        keepalive_interval: float = 0.25,
        probe_timeout: float = 0.5,
        transport: Optional[Transport] = None,
        batched: bool = True,
    ) -> None:
        self.transport: Transport = (
            transport if transport is not None else AsyncioTransport()
        )
        self.clock = self.transport.clock
        rng = np.random.default_rng(seed)
        self.core = CoordinationServer(k, d, rng, insert_mode)
        self.encoder = SourceEncoder(content, params, rng)
        self.params = params
        self.content_length = len(content)
        self.host = host
        self.port = port
        self.send_interval = send_interval
        self.queue_limit = queue_limit
        self.keepalive_interval = keepalive_interval
        self.probe_timeout = probe_timeout
        self.batched = batched
        self.stats = ServerStats()
        self._peers: dict[int, _PeerHandle] = {}
        self._column_senders: dict[int, PacketSender] = {}
        #: One entry per data connection ever served (stats outlive pumps).
        self.sender_stats: list[SenderStats] = []
        self._server: Optional[Listener] = None
        self._stream_task: Optional[asyncio.Task] = None
        self._probe_tasks: set[asyncio.Task] = set()
        self._nonce = 0
        self._running = False

    # ------------------------------------------------------------------
    # Lifecycle

    async def start(self) -> None:
        """Bind the listen socket and start the emission loop."""
        self._server = await self.transport.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.address[1]
        self._running = True
        self._stream_task = asyncio.ensure_future(self._stream_loop())

    async def stop(self) -> None:
        """Close every connection and stop serving."""
        self._running = False
        pending = [t for t in [self._stream_task, *self._probe_tasks]
                   if t is not None]
        for task in pending:
            task.cancel()
        for sender in list(self._column_senders.values()):
            sender.close()
        self._column_senders.clear()
        for handle in list(self._peers.values()):
            handle.writer.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    @property
    def population(self) -> int:
        """Rows currently in the matrix."""
        return self.core.population

    # ------------------------------------------------------------------
    # Data plane

    async def _stream_loop(self) -> None:
        """One emission round per interval: a packet per attached column.

        Generations are served round-robin so every generation keeps
        flowing regardless of which columns are attached.
        """
        generation_count = self.encoder.generation_count
        try:
            while self._running:
                await self.clock.sleep(self.send_interval)
                generation = self.stats.rounds % generation_count
                self.stats.rounds += 1
                senders = [
                    s for s in list(self._column_senders.values())
                    if not s.closed
                ]
                if not senders:
                    continue
                if self.batched:
                    # One mixing gemm for the whole round, one pooled
                    # serialisation pass, immutable frames shared with
                    # the pumps.
                    packets = self.encoder.emit_batch(len(senders), generation)
                    for sender, frame in zip(senders, encode_data_frames(packets)):
                        sender.enqueue_frame(frame)
                        self.stats.packets_sent += 1
                else:
                    for sender in senders:
                        sender.enqueue(self.encoder.emit(generation))
                        self.stats.packets_sent += 1
        except asyncio.CancelledError:
            pass

    # ------------------------------------------------------------------
    # Connection handling

    async def _handle_connection(
        self, reader, writer: ByteStreamWriter
    ) -> None:
        try:
            first = await read_message(reader)
        except FramingError:
            writer.close()
            return
        if isinstance(first, JoinRequest):
            await self._serve_control(first, reader, writer)
        elif isinstance(first, DataHello):
            await self._serve_data(first, reader, writer)
        else:
            writer.close()

    async def _serve_data(
        self, hello: DataHello, reader,
        writer: ByteStreamWriter,
    ) -> None:
        """Stream one column to the child that dialed us."""
        column = hello.column
        if not 0 <= column < self.core.k:
            writer.close()
            return
        old = self._column_senders.get(column)
        if old is not None:
            old.close()
        sender = PacketSender(
            writer, column=column, sender_id=SERVER,
            limit=self.queue_limit, keepalive_interval=self.keepalive_interval,
            clock=self.clock, coalesce=self.batched,
        )
        self.sender_stats.append(sender.stats)
        self._column_senders[column] = sender
        try:
            await sender.run()
        finally:
            if self._column_senders.get(column) is sender:
                del self._column_senders[column]

    # ------------------------------------------------------------------
    # Control plane

    async def _serve_control(
        self, request: JoinRequest, reader,
        writer: ByteStreamWriter,
    ) -> None:
        handle = self._admit(request, writer)
        try:
            while self._running:
                message = await read_message(reader)
                if message is None:
                    break
                self._dispatch_control(handle, message)
                if handle.left:
                    break
        except (FramingError, ConnectionError, OSError):
            pass
        finally:
            self._disconnect(handle)

    def _admit(self, request: JoinRequest, writer: ByteStreamWriter) -> _PeerHandle:
        """Run the hello protocol for a fresh control connection."""
        peername = writer.get_extra_info("peername")
        host = peername[0] if peername else "127.0.0.1"
        grant = self.core.hello()
        handle = _PeerHandle(
            node_id=grant.node_id, host=host, port=request.reply_to, writer=writer
        )
        self._peers[grant.node_id] = handle
        self.stats.joins += 1
        # Geometry first, then parent locators, then the grant itself: by
        # the time the joiner sees its assignments it can dial them all.
        write_control_nowait(writer, SessionInfo(
            generation_size=self.params.generation_size,
            payload_size=self.params.payload_size,
            generation_count=self.encoder.generation_count,
            content_length=self.content_length,
            k=self.core.k,
            d=self.core.d,
        ))
        for assignment in grant.assignments:
            self._send_locator(handle, assignment.parent)
        write_control_nowait(writer, JoinGrant(
            node_id=grant.node_id,
            assignments=tuple((a.column, a.parent) for a in grant.assignments),
        ))
        for assignment in grant.assignments:
            self._notify(assignment.parent,
                         AttachChild(column=assignment.column, child=grant.node_id))
        # Uniform insertion may splice the newcomer mid-column: displaced
        # children re-dial the newcomer, which starts serving them.
        for redirect in grant.redirects:
            if redirect.child is None:
                continue
            child = self._peers.get(redirect.child)
            if child is not None:
                self._send_locator(child, grant.node_id)
                self._notify(redirect.child,
                             SetParent(column=redirect.column, parent=grant.node_id))
            self._notify(grant.node_id,
                         AttachChild(column=redirect.column, child=redirect.child))
        return handle

    def _dispatch_control(self, handle: _PeerHandle, message: object) -> None:
        if isinstance(message, LeaveRequest):
            self._handle_leave(handle)
        elif isinstance(message, ComplaintMsg):
            self._handle_complaint(message)
        elif isinstance(message, ProbeAck):
            peer = self._peers.get(message.node_id)
            if peer is not None and peer.probe_nonce == message.nonce:
                peer.probe_nonce = None
        # Unknown or data-plane messages on the control channel: ignore.

    def _handle_leave(self, handle: _PeerHandle) -> None:
        if handle.node_id not in self.core.registry:
            return
        handle.left = True
        self.stats.leaves += 1
        redirects = self.core.goodbye(handle.node_id)
        self._broadcast_redirects(redirects)

    def _handle_complaint(self, message: ComplaintMsg) -> None:
        suspect = self._peers.get(message.suspect)
        if (suspect is None or suspect.left
                or message.suspect not in self.core.registry
                or message.suspect in self.core.failed):
            return
        if suspect.probe_nonce is not None:
            return  # probe already in flight
        self._nonce += 1
        suspect.probe_nonce = self._nonce
        self.stats.probes += 1
        self._notify(message.suspect, Probe(nonce=self._nonce))
        task = asyncio.ensure_future(
            self._probe_deadline(message.suspect, self._nonce)
        )
        self._probe_tasks.add(task)
        task.add_done_callback(self._probe_tasks.discard)

    async def _probe_deadline(self, suspect_id: int, nonce: int) -> None:
        await self.clock.sleep(self.probe_timeout)
        suspect = self._peers.get(suspect_id)
        if suspect is None or suspect.probe_nonce != nonce:
            return  # answered, left, or already repaired
        suspect.writer.close()
        self._repair(suspect)

    def _disconnect(self, handle: _PeerHandle) -> None:
        """Control connection gone: graceful if it said good-bye."""
        if not handle.left and self._running:
            self.stats.crashes += 1
            self._repair(handle)
        self._peers.pop(handle.node_id, None)
        handle.writer.close()

    def _repair(self, handle: _PeerHandle) -> None:
        """Splice a crashed peer out of every column (Lemma 1)."""
        if handle.left or handle.node_id not in self.core.registry:
            return
        handle.left = True
        self.stats.repairs += 1
        self.core.fail(handle.node_id)
        redirects = self.core.repair(handle.node_id)
        self._peers.pop(handle.node_id, None)
        self._broadcast_redirects(redirects)

    def _broadcast_redirects(self, redirects) -> None:
        """Push the post-splice topology to every affected, live peer."""
        for redirect in redirects:
            if redirect.child is not None:
                child = self._peers.get(redirect.child)
                if child is not None:
                    self._send_locator(child, redirect.parent)
                    self._notify(redirect.child, SetParent(
                        column=redirect.column, parent=redirect.parent))
            if redirect.parent != SERVER:
                if redirect.child is not None:
                    self._notify(redirect.parent, AttachChild(
                        column=redirect.column, child=redirect.child))
                else:
                    self._notify(redirect.parent,
                                 DetachChild(column=redirect.column))

    # ------------------------------------------------------------------
    # Helpers

    def _send_locator(self, to: _PeerHandle, node_id: int) -> None:
        """Tell ``to`` where ``node_id`` listens (no-op for the server)."""
        if node_id == SERVER:
            return
        peer = self._peers.get(node_id)
        if peer is not None:
            write_control_nowait(to.writer, PeerLocator(
                node_id=node_id, host=peer.host, port=peer.port))

    def _notify(self, node_id: int, message: object) -> None:
        """Fire-and-forget a control message to a connected peer."""
        if node_id == SERVER:
            return
        handle = self._peers.get(node_id)
        if handle is None:
            return
        try:
            write_control_nowait(handle.writer, message)
        except (ConnectionError, OSError):
            pass

    async def serve_forever(self) -> None:
        """Block until cancelled (used by the ``repro serve`` command)."""
        if self._server is None:
            raise RuntimeError("server not started")
        await self._server.serve_forever()
