"""A deterministic in-memory network driven by a virtual clock.

This is the fault-injection counterpart of real asyncio TCP: the same
:class:`~repro.net.server.ServerNode` / :class:`~repro.net.peer.PeerNode`
code runs unmodified against :class:`VirtualTransport`, but every
connection is an in-memory pipe, every timeout fires on
:class:`VirtualClock` virtual time, and every *link* (an ordered pair of
host names) carries a scripted :class:`LinkFaults`:

* ``latency`` / ``jitter`` — fixed plus seeded-uniform delivery delay;
* ``loss`` — per-segment drop probability (a segment is one ``write``
  call, i.e. one protocol frame — loss stays frame-aligned, like a
  datagram network);
* ``corrupt`` — per-segment single-byte flip, exercising the v2 CRC32
  rejection path end to end;
* ``reorder`` — per-segment probability of swapping with the next
  queued segment;
* ``bandwidth`` / ``buffer_bytes`` — delivery rate cap and the
  receive-window bound ``drain()`` blocks on, which is how a slow
  reader pushes backpressure into the sender's drop-oldest queue;
* ``partitioned`` — both data and new connects blackholed until
  :meth:`VirtualNetwork.heal`;
* ``blackhole`` — one direction silently swallowed (a half-open
  connection: the sender keeps writing happily, the receiver hears
  silence).

All randomness flows from one seeded :class:`random.Random`, all timers
from one heap, and the asyncio loop's ready-queue is settled between
timer firings — so a scenario replayed with the same seed produces an
identical :attr:`VirtualNetwork.trace`, event for event.  No socket is
ever opened.

Scale mode.  The default pipeline pays for its fidelity: every ``write``
copies a segment, wakes a per-pipe pump task, and every timer firing
settles the whole event loop before the next one pops.  That is exactly
right for a dozen peers under scripted faults and far too slow for ten
thousand.  ``VirtualNetwork(turbo=True)`` keeps the same API and the
same determinism (one seed, one heap) but takes three shortcuts sized
for clean links:

* **no-fault fast path** — a segment written to a link with no scripted
  faults is appended straight to the reader's buffer (zero copies, no
  pump wakeup); the pump task is only created the first time a link
  actually needs delay, loss, or throttling;
* **coalesced writes** — virtual writers expose ``writelines`` so
  the drop-oldest pumps flush a whole queue as one segment;
* **timer batching** — a :class:`VirtualClock` built with a non-zero
  ``quantum`` fires every timer due within one quantum together and
  settles the loop once per batch instead of once per timer.

Turbo runs are still deterministic, but their event interleaving (and
hence trace) differs from the default mode — the pinned chaos digests
are recorded in default mode, which stays bit-identical.
"""

from __future__ import annotations

import asyncio
import itertools
import random
from dataclasses import dataclass, replace
from heapq import heappop, heappush
from typing import Any, Awaitable, Optional

from ..transport import Clock, ConnectionHandler

__all__ = [
    "LinkFaults",
    "VirtualClock",
    "VirtualNetwork",
    "VirtualTransport",
]


# ----------------------------------------------------------------------
# Virtual time


class VirtualClock:
    """A :class:`~repro.net.transport.Clock` whose time only moves when a
    driver calls :meth:`advance` / :meth:`run_until`.

    ``sleep`` parks the caller on a timer heap; ``advance`` pops due
    timers in deadline order, settling the event loop (draining its
    ready queue) between firings so causally-dependent wakeups happen in
    a deterministic, repeatable order.
    """

    def __init__(self, *, quantum: float = 0.0) -> None:
        self._now = 0.0
        self._timers: list[tuple[float, int, asyncio.Future]] = []
        self._seq = itertools.count()
        #: Bound on settle iterations, so a busy-spinning task turns
        #: into a loud failure instead of a silent hang.
        self.settle_limit = 10_000
        #: Bound on timer firings per ``run_until`` call: a task that
        #: re-arms an epsilon timer on every wakeup keeps the virtual
        #: deadline finite but the wall clock unbounded — fail loudly
        #: instead.  10k-peer swarms legitimately fire ~100k timers per
        #: advance, so the ceiling is generous.
        self.firing_limit = 2_000_000
        #: Timer coalescing window: all timers due within one quantum of
        #: the earliest are fired together and the loop settles once per
        #: batch.  0.0 (the default) settles after every single timer —
        #: the maximally deterministic interleaving the pinned chaos
        #: digests were recorded under.
        self.quantum = quantum

    def time(self) -> float:
        return self._now

    async def sleep(self, delay: float) -> None:
        if delay <= 0:
            await asyncio.sleep(0)
            return
        future = asyncio.get_running_loop().create_future()
        heappush(self._timers, (self._now + delay, next(self._seq), future))
        await future

    async def wait_for(self, awaitable: Awaitable, timeout: Optional[float]) -> Any:
        if timeout is None:
            return await awaitable
        task = asyncio.ensure_future(awaitable)
        if self.quantum:
            # Scale mode: the overwhelmingly common wait (a frame read
            # with bytes already buffered) completes on its first step —
            # skip the timer future, the heap push and the extra task
            # the full two-future wait would cost per frame.
            await asyncio.sleep(0)
            if task.done() and not task.cancelled():
                return task.result()
        timer = asyncio.ensure_future(self.sleep(timeout))
        try:
            await asyncio.wait({task, timer}, return_when=asyncio.FIRST_COMPLETED)
        except asyncio.CancelledError:
            task.cancel()
            timer.cancel()
            raise
        if task.done() and not task.cancelled():
            timer.cancel()
            return task.result()
        task.cancel()
        try:
            await task
        except (asyncio.CancelledError, Exception):  # noqa: BLE001 - parked result
            pass
        raise asyncio.TimeoutError(f"virtual wait_for exceeded {timeout}s")

    async def advance(self, delay: float) -> None:
        await self.run_until(self._now + delay)

    async def run_until(self, deadline: float) -> None:
        """Fire every timer due at or before ``deadline``, letting the
        event loop settle after each firing; ends with time == deadline."""
        fired = 0
        while True:
            await self._settle()
            while self._timers and self._timers[0][2].done():
                heappop(self._timers)  # cancelled sleeps
            if not self._timers or self._timers[0][0] > deadline:
                break
            fired += 1
            if fired > self.firing_limit:
                raise RuntimeError(
                    f"virtual clock fired {self.firing_limit} timers before "
                    f"reaching t={deadline} (task re-arming an epsilon timer?)"
                )
            when, _, future = heappop(self._timers)
            self._now = max(self._now, when)
            if not future.done():
                future.set_result(None)
            if self.quantum:
                # Batch mode: fire everything due within one quantum,
                # then settle once for the whole batch.
                horizon = min(when + self.quantum, deadline)
                while self._timers and self._timers[0][0] <= horizon:
                    when, _, future = heappop(self._timers)
                    self._now = max(self._now, when)
                    if not future.done():
                        future.set_result(None)
        self._now = max(self._now, deadline)
        await self._settle()

    async def _settle(self) -> None:
        """Yield until the loop's ready queue is empty (all causally
        runnable callbacks have run)."""
        loop = asyncio.get_running_loop()
        ready = getattr(loop, "_ready", None)
        if ready is None:  # unknown loop implementation: best effort
            for _ in range(32):
                await asyncio.sleep(0)
            return
        for _ in range(self.settle_limit):
            await asyncio.sleep(0)
            if not ready:
                return
        raise RuntimeError(
            "virtual clock could not settle the event loop "
            f"in {self.settle_limit} iterations (busy-spinning task?)"
        )


# ----------------------------------------------------------------------
# Links and faults


@dataclass
class LinkFaults:
    """Scripted conditions on one *directed* host-to-host link."""

    latency: float = 0.0
    jitter: float = 0.0
    loss: float = 0.0
    corrupt: float = 0.0
    reorder: float = 0.0
    bandwidth: Optional[float] = None
    buffer_bytes: int = 1 << 16
    partitioned: bool = False
    blackhole: bool = False

    def delivers(self) -> bool:
        return not (self.partitioned or self.blackhole)

    def is_clean(self) -> bool:
        """True when nothing is scripted on the link: a segment can be
        delivered synchronously without changing observable behaviour."""
        return (
            self.latency == 0.0
            and self.jitter == 0.0
            and self.loss == 0.0
            and self.corrupt == 0.0
            and self.reorder == 0.0
            and self.bandwidth is None
            and not self.partitioned
            and not self.blackhole
        )


class _Pipe:
    """One direction of a virtual connection.

    ``write`` queues segments; a single pump task per pipe applies the
    link's faults to each segment in order and appends survivors to the
    readable buffer.  ``drain`` blocks while more than ``buffer_bytes``
    are queued-but-undelivered — the backpressure a slow or throttled
    receiver exerts on the sender.
    """

    _EOF = object()

    def __init__(self, net: "VirtualNetwork", src: str, dst: str) -> None:
        self.net = net
        self.src = src
        self.dst = dst
        self.buffer = bytearray()
        self.eof = False
        self.closed = False  # write side closed (flushes, then EOF)
        self.broken = False  # hard reset: drain raises, pump stops
        self.in_flight = 0
        self._segments: list = []
        self._readable = asyncio.Event()
        self._writable = asyncio.Event()
        self._writable.set()
        self._work = asyncio.Event()
        # Turbo: no pump task until a segment actually needs the fault
        # pipeline — clean links deliver synchronously in feed().
        self._pump_task: Optional[asyncio.Task] = None
        if not net.turbo:
            self._ensure_pump()

    def _ensure_pump(self) -> None:
        if self._pump_task is None:
            self._pump_task = asyncio.ensure_future(self._pump())
            self.net._track(self._pump_task)

    # -- writer side ---------------------------------------------------

    def feed(self, data: bytes) -> None:
        if self.closed or self.broken or not data:
            return
        if (
            self.net.turbo
            and self.in_flight == 0
            and not self._segments
            and self.net.link(self.src, self.dst).is_clean()
        ):
            # Fast path: nothing queued ahead, nothing scripted on the
            # link — append straight to the reader's buffer with zero
            # copies and no pump wakeup.
            self.buffer.extend(data)
            self._readable.set()
            self.net.record("deliver", self.src, self.dst, len(data))
            return
        self.in_flight += len(data)
        self._segments.append(bytes(data))
        self._ensure_pump()
        self._work.set()
        if self.in_flight > self.net.link(self.src, self.dst).buffer_bytes:
            self._writable.clear()

    async def drained(self) -> None:
        while not self._writable.is_set():
            if self.broken:
                raise ConnectionResetError(f"virtual pipe {self.src}->{self.dst} reset")
            await self._writable.wait()
        if self.broken:
            raise ConnectionResetError(f"virtual pipe {self.src}->{self.dst} reset")

    def close(self) -> None:
        """Flush pending segments, then deliver EOF."""
        if self.closed:
            return
        self.closed = True
        if self.net.turbo and self.in_flight == 0 and not self._segments:
            # Queue is empty, so the pump would deliver EOF immediately
            # anyway (it applies no latency to EOF) — do it inline.
            if self.net.link(self.src, self.dst).delivers():
                self.eof = True
                self._readable.set()
                self.net.record("eof", self.src, self.dst)
            else:
                self.net.record("void-eof", self.src, self.dst)
            return
        self._segments.append(self._EOF)
        self._ensure_pump()
        self._work.set()

    def break_(self) -> None:
        """Hard reset (the other endpoint closed the connection): the
        writer's next drain raises, any parked reader sees EOF."""
        self.broken = True
        self.eof = True
        self._work.set()
        self._writable.set()
        self._readable.set()

    # -- reader side ---------------------------------------------------

    async def readexactly(self, n: int) -> bytes:
        while len(self.buffer) < n:
            if self.eof:
                partial = bytes(self.buffer)
                self.buffer.clear()
                raise asyncio.IncompleteReadError(partial, n)
            self._readable.clear()
            await self._readable.wait()
        data = bytes(self.buffer[:n])
        del self.buffer[:n]
        return data

    # -- delivery ------------------------------------------------------

    async def _pump(self) -> None:
        net, clock, rng = self.net, self.net.clock, self.net._rng
        try:
            while not self.broken:
                while not self._segments:
                    self._work.clear()
                    await self._work.wait()
                    if self.broken:
                        return
                segment = self._segments.pop(0)
                if segment is self._EOF:
                    if net.link(self.src, self.dst).delivers():
                        self.eof = True
                        self._readable.set()
                        net.record("eof", self.src, self.dst)
                    else:
                        net.record("void-eof", self.src, self.dst)
                    return
                faults = net.link(self.src, self.dst)
                delay = faults.latency
                if faults.jitter:
                    delay += rng.uniform(0.0, faults.jitter)
                if faults.bandwidth:
                    delay += len(segment) / faults.bandwidth
                if delay > 0:
                    await clock.sleep(delay)
                self._deliver(segment, rng)
        except asyncio.CancelledError:
            pass

    def _deliver(self, segment: bytes, rng: random.Random) -> None:
        net = self.net
        self.in_flight -= len(segment)
        faults = net.link(self.src, self.dst)  # re-read: may have changed mid-flight
        if self.in_flight <= faults.buffer_bytes:
            self._writable.set()
        if not faults.delivers():
            net.record("void", self.src, self.dst, len(segment))
            return
        if faults.loss and rng.random() < faults.loss:
            net.record("lose", self.src, self.dst, len(segment))
            return
        if faults.reorder and self._segments and self._segments[0] is not self._EOF:
            if rng.random() < faults.reorder:
                held = segment
                segment = self._segments.pop(0)
                self._segments.insert(0, held)
                net.record("reorder", self.src, self.dst)
        if faults.corrupt and rng.random() < faults.corrupt:
            index = rng.randrange(len(segment))
            bit = 1 << rng.randrange(8)
            segment = (segment[:index]
                       + bytes([segment[index] ^ bit])
                       + segment[index + 1:])
            net.record("corrupt", self.src, self.dst, index)
        self.buffer.extend(segment)
        self._readable.set()
        net.record("deliver", self.src, self.dst, len(segment))


class _VirtualReader:
    """Reader endpoint of a pipe (duck-typed like StreamReader)."""

    def __init__(self, pipe: _Pipe) -> None:
        self._pipe = pipe

    async def readexactly(self, n: int) -> bytes:
        return await self._pipe.readexactly(n)

    def at_eof(self) -> bool:
        return self._pipe.eof and not self._pipe.buffer


class _VirtualWriter:
    """Writer endpoint of a connection (duck-typed like StreamWriter).

    ``close`` closes the *connection*, matching socket semantics: our
    direction flushes then EOFs, the reverse direction is reset so the
    peer's next ``drain`` raises :class:`ConnectionResetError`.
    """

    def __init__(self, out: _Pipe, back: _Pipe, peername: tuple[str, int]) -> None:
        self._out = out
        self._back = back
        self._peername = peername
        if out.net.turbo:
            # Instance attribute, not a class method: senders probe for
            # ``writelines`` to decide whether to coalesce flushes, and
            # per-frame writes are what the pinned digests were recorded
            # under — only turbo runs advertise coalescing.
            self.writelines = self._writelines

    def write(self, data: bytes) -> None:
        self._out.feed(data)

    def _writelines(self, frames) -> None:
        self._out.feed(b"".join(frames))

    async def drain(self) -> None:
        await self._out.drained()

    def close(self) -> None:
        self._out.close()
        self._back.break_()

    def is_closing(self) -> bool:
        return self._out.closed or self._out.broken

    async def wait_closed(self) -> None:
        return None

    def get_extra_info(self, name: str, default: Any = None) -> Any:
        if name == "peername":
            return self._peername
        return default


class _VirtualListener:
    """A bound (host, port) accepting virtual connections."""

    def __init__(self, net: "VirtualNetwork", host: str, port: int,
                 handler: ConnectionHandler) -> None:
        self.net = net
        self.host = host
        self.port = port
        self.handler = handler
        self.closed = False
        self._closed_event = asyncio.Event()

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def dispatch(self, reader: _VirtualReader, writer: _VirtualWriter) -> None:
        task = asyncio.ensure_future(self.handler(reader, writer))
        self.net._track(task)

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._closed_event.set()
            self.net._listeners.pop((self.host, self.port), None)

    async def wait_closed(self) -> None:
        return None

    async def serve_forever(self) -> None:
        await self._closed_event.wait()


# ----------------------------------------------------------------------
# The network


class VirtualNetwork:
    """All hosts, links and in-flight bytes of one simulated network.

    Hosts are plain strings; a node gets its own host via
    :meth:`transport`, and every ordered host pair is a link with its
    own :class:`LinkFaults`.  Every fault decision draws from one seeded
    generator and every observable event is appended to :attr:`trace`,
    so two runs with the same seed and script are byte-identical.
    """

    def __init__(self, clock: Optional[VirtualClock] = None, *, seed: int = 0,
                 default_faults: Optional[LinkFaults] = None,
                 turbo: bool = False, record_trace: bool = True) -> None:
        self.clock: Clock = clock if clock is not None else VirtualClock()
        self._rng = random.Random(seed)
        self._default = default_faults if default_faults is not None else LinkFaults()
        self._links: dict[tuple[str, str], LinkFaults] = {}
        self._listeners: dict[tuple[str, int], _VirtualListener] = {}
        #: Ephemeral port counter, shared by binds and dial source
        #: ports (matching the allocation order the pinned traces were
        #: recorded under).  Real ports are 16-bit — and PeerLocator
        #: frames encode them as such — so the counter wraps back to
        #: 1024 instead of marching past 65535 (a 10k-peer swarm burns
        #: through the 49152+ range in one join wave).
        self._ports = itertools.count(49152)
        self._tasks: set[asyncio.Task] = set()
        #: Scale mode (see module docstring): synchronous clean-link
        #: delivery, lazy pumps, coalesced writes.  Changes interleaving,
        #: so the pinned chaos digests run with turbo off.
        self.turbo = turbo
        #: Trace recording toggle — a 10k-peer round generates millions
        #: of deliver events; soak runs switch the trace off.
        self.record_trace = record_trace
        #: (time, kind, *details) tuples — the deterministic event trace.
        self.trace: list[tuple] = []

    # -- bookkeeping ---------------------------------------------------

    def _track(self, task: asyncio.Task) -> None:
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    def record(self, kind: str, *details) -> None:
        if self.record_trace:
            self.trace.append((round(self.clock.time(), 9), kind, *details))

    def events(self, *kinds: str) -> list[tuple]:
        """Trace entries filtered by event kind."""
        return [entry for entry in self.trace if entry[1] in kinds]

    async def shutdown(self) -> None:
        """Cancel every pump and handler task still alive."""
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)

    # -- faults --------------------------------------------------------

    def link(self, src: str, dst: str) -> LinkFaults:
        """The (directed) fault record for src -> dst, created on demand."""
        faults = self._links.get((src, dst))
        if faults is None:
            faults = replace(self._default)
            self._links[(src, dst)] = faults
        return faults

    def set_link(self, a: str, b: str, *, symmetric: bool = True, **faults) -> None:
        """Script fault values on a link (both directions by default)."""
        for key, value in faults.items():
            setattr(self.link(a, b), key, value)
            if symmetric:
                setattr(self.link(b, a), key, value)

    def set_default(self, **faults) -> None:
        """Apply fault values to every existing link and all future ones."""
        targets = [self._default, *self._links.values()]
        for key, value in faults.items():
            for target in targets:
                setattr(target, key, value)

    def partition(self, a: str, b: str) -> None:
        self.set_link(a, b, partitioned=True)
        self.record("partition", a, b)

    def heal(self, a: str, b: str) -> None:
        self.set_link(a, b, partitioned=False)
        self.record("heal", a, b)

    # -- topology ------------------------------------------------------

    def transport(self, host: str) -> "VirtualTransport":
        return VirtualTransport(self, host)

    def _next_port(self, host: Optional[str] = None) -> int:
        """The next ephemeral port; skips ports bound on ``host``."""
        while True:
            port = next(self._ports)
            if port > 65535:
                self._ports = itertools.count(1024)
                continue
            if host is None or (host, port) not in self._listeners:
                return port

    def bind(self, host: str, port: int, handler: ConnectionHandler) -> _VirtualListener:
        if port == 0:
            port = self._next_port(host)
        key = (host, port)
        if key in self._listeners:
            raise OSError(f"virtual address {host}:{port} already in use")
        listener = _VirtualListener(self, host, port, handler)
        self._listeners[key] = listener
        self.record("bind", host, port)
        return listener

    async def open_connection(
        self, src: str, dst: str, port: int
    ) -> tuple[_VirtualReader, _VirtualWriter]:
        """Dial ``dst:port`` from ``src`` — SYN latency, then either a
        refusal or a fresh pipe pair handed to the listener's handler."""
        faults = self.link(src, dst)
        delay = faults.latency + (self._rng.uniform(0.0, faults.jitter)
                                  if faults.jitter else 0.0)
        if delay > 0:
            await self.clock.sleep(delay)
        listener = self._listeners.get((dst, port))
        if (listener is None or listener.closed
                or not self.link(src, dst).delivers()
                or self.link(dst, src).partitioned):
            self.record("refused", src, dst, port)
            raise ConnectionRefusedError(f"virtual connect {src}->{dst}:{port}")
        out = _Pipe(self, src, dst)
        back = _Pipe(self, dst, src)
        src_port = self._next_port()
        client_writer = _VirtualWriter(out, back, peername=(dst, port))
        server_writer = _VirtualWriter(back, out, peername=(src, src_port))
        self.record("connect", src, dst, port)
        listener.dispatch(_VirtualReader(out), server_writer)
        return _VirtualReader(back), client_writer


class VirtualTransport:
    """One host's view of a :class:`VirtualNetwork`.

    Binds always land on this transport's own host name (the ``host``
    argument nodes pass is an IP default that has no meaning in-memory),
    which is also the source address of every outgoing dial — so
    per-link faults resolve by node, not by bind string.
    """

    def __init__(self, net: VirtualNetwork, host: str) -> None:
        self.net = net
        self.host = host
        self.clock: Clock = net.clock

    async def connect(self, host: str, port: int):
        return await self.net.open_connection(self.host, host, port)

    async def start_server(self, handler: ConnectionHandler,
                           host: str, port: int) -> _VirtualListener:
        return self.net.bind(self.host, port, handler)
