"""Deterministic in-memory testing rig for the live transport.

Two layers:

* :mod:`~repro.net.testing.virtualnet` — a :class:`VirtualNetwork` of
  in-memory pipes with scripted per-link faults, driven by a
  :class:`VirtualClock`; the server/peer nodes run on it unmodified via
  :class:`VirtualTransport`.
* :mod:`~repro.net.testing.scenarios` — a :class:`ChaosHarness` and a
  registry of named chaos scenarios asserting the §3-§6 protocol
  invariants end to end.
* :mod:`~repro.net.testing.swarm` — the same machinery with every
  scale switch flipped (turbo network, quantum clock, batched joins)
  for 1k-10k peer rounds and the soak runner built on top of them.
"""

from .scenarios import (
    SCENARIOS,
    ChaosConfig,
    ChaosHarness,
    Scenario,
    ScenarioResult,
    get_scenario,
    run_scenario,
    run_scenario_sync,
    trace_digest,
)
from .soak import TRACE_SHAPES, SoakConfig, SoakReport, run_soak
from .swarm import SwarmConfig, SwarmHarness, SwarmReport, run_swarm_round
from .virtualnet import LinkFaults, VirtualClock, VirtualNetwork, VirtualTransport

__all__ = [
    "ChaosConfig",
    "ChaosHarness",
    "LinkFaults",
    "SCENARIOS",
    "Scenario",
    "ScenarioResult",
    "SoakConfig",
    "SoakReport",
    "SwarmConfig",
    "SwarmHarness",
    "SwarmReport",
    "VirtualClock",
    "VirtualNetwork",
    "VirtualTransport",
    "TRACE_SHAPES",
    "get_scenario",
    "run_soak",
    "run_scenario",
    "run_scenario_sync",
    "run_swarm_round",
    "trace_digest",
]
