"""Deterministic in-memory testing rig for the live transport.

Two layers:

* :mod:`~repro.net.testing.virtualnet` — a :class:`VirtualNetwork` of
  in-memory pipes with scripted per-link faults, driven by a
  :class:`VirtualClock`; the server/peer nodes run on it unmodified via
  :class:`VirtualTransport`.
* :mod:`~repro.net.testing.scenarios` — a :class:`ChaosHarness` and a
  registry of named chaos scenarios asserting the §3-§6 protocol
  invariants end to end.
"""

from .scenarios import (
    SCENARIOS,
    ChaosConfig,
    ChaosHarness,
    Scenario,
    ScenarioResult,
    get_scenario,
    run_scenario,
    run_scenario_sync,
    trace_digest,
)
from .virtualnet import LinkFaults, VirtualClock, VirtualNetwork, VirtualTransport

__all__ = [
    "ChaosConfig",
    "ChaosHarness",
    "LinkFaults",
    "SCENARIOS",
    "Scenario",
    "ScenarioResult",
    "VirtualClock",
    "VirtualNetwork",
    "VirtualTransport",
    "get_scenario",
    "run_scenario",
    "run_scenario_sync",
    "trace_digest",
]
