"""Long-horizon churn soaks: virtual hours of membership churn.

A soak is the endurance counterpart to :meth:`SwarmHarness.run_round`:
instead of one join → broadcast → churn → recover arc, it drives a
*schedule* of joins, crashes and graceful leaves — shaped by the
generators in :mod:`repro.workloads.generator` — against a live swarm
for N virtual hours, one epoch at a time.  Between epochs it requires
the control plane to fully absorb the churn (every crash detected and
spliced out) and re-checks the structural invariants; the first
violation stops the run and captures a flight-recorder dump, so a
failing seed yields the engine history around the break, not a bare
assertion at the end of two virtual hours.

Three trace shapes cover the paper's motivating scenarios:

* ``steady`` — Poisson joins, crashes and leaves every epoch (the
  long-lived live channel);
* ``flash`` — a Gaussian arrival spike over a small base rate (the
  release-day rush of §3), with background crashes;
* ``correlated`` — steady trickle plus one mass-failure epoch that
  crashes a fixed fraction of the swarm at once (a rack or AS going
  dark), the worst case for the repair path.

Every run records the membership history it actually applied as a
:class:`~repro.workloads.trace.ChurnTrace`, so a soak that finds a bug
leaves behind a portable reproduction script.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ...workloads.generator import flash_crowd_schedule, steady_schedule
from ...workloads.trace import ChurnTrace, TraceEvent
from .swarm import SwarmConfig, SwarmHarness, _gc_paused

__all__ = ["SoakConfig", "SoakReport", "run_soak", "TRACE_SHAPES"]

#: Recognised ``SoakConfig.trace`` values.
TRACE_SHAPES = ("steady", "flash", "correlated")


@dataclass(frozen=True)
class SoakConfig:
    """Population, horizon and churn shape for one soak run."""

    #: Initial population, joined before the clock starts.
    peers: int = 1000
    #: Soak horizon in *virtual* hours.
    hours: float = 2.0
    #: Epoch length in virtual seconds; churn lands at epoch starts and
    #: invariants are checked at epoch ends.
    epoch: float = 60.0
    #: Churn shape: one of :data:`TRACE_SHAPES`.
    trace: str = "steady"
    seed: int = 0
    #: Mean joins per epoch (base rate for all shapes).
    join_rate: float = 2.0
    #: Mean crashes per epoch.
    fail_rate: float = 1.0
    #: Mean graceful leaves per epoch.
    leave_rate: float = 0.5
    #: ``flash``: peak joins per epoch at the top of the spike.
    peak_rate: float = 40.0
    #: ``correlated``: fraction of the swarm crashed in the burst epoch.
    burst_fraction: float = 0.2
    #: Hard cap on total population (joins beyond it are clipped and
    #: counted — never silently dropped).
    max_peers: int = 0

    def __post_init__(self) -> None:
        if self.trace not in TRACE_SHAPES:
            raise ValueError(
                f"unknown trace shape {self.trace!r}; pick from {TRACE_SHAPES}"
            )
        if self.peers < 1 or self.hours <= 0 or self.epoch <= 0:
            raise ValueError("peers, hours and epoch must be positive")
        if not 0.0 <= self.burst_fraction < 1.0:
            raise ValueError("burst_fraction must be in [0, 1)")

    @property
    def epochs(self) -> int:
        return max(1, int(self.hours * 3600.0 / self.epoch))

    @property
    def population_cap(self) -> int:
        """Effective cap: explicit ``max_peers`` or 2x the start size."""
        return self.max_peers if self.max_peers > 0 else 2 * self.peers

    def swarm(self) -> SwarmConfig:
        """The harness geometry: swarm defaults with soak-grade pacing.

        Keep-alives and silence detection are stretched relative to the
        acceptance round — a soak's cost is dominated by idle-interval
        timers (population x connections x horizon / interval), and
        second-scale failure detection is the round's concern, not the
        endurance run's.
        """
        return SwarmConfig(
            peers=self.peers,
            k=64 if self.peers >= 4000 else 32,
            seed=self.seed,
            keepalive_interval=30.0,
            silence_timeout=90.0,
            probe_timeout=8.0,
            deadline=max(900.0, 4 * self.epoch),
            join_batch=256,
        )


@dataclass
class SoakReport:
    """What one soak applied, what it cost, and where it stopped."""

    trace: str
    peers_start: int
    peers_final: int
    seed: int
    epochs_total: int
    epochs_run: int
    joins: int
    fails: int
    leaves: int
    #: Joins dropped by the population cap (0 = schedule fully applied).
    clipped_joins: int
    final_converged: bool
    virtual_elapsed: float
    wall_elapsed: float
    violations: list[str] = field(default_factory=list)
    #: Engine flight-recorder dump captured at the first violation.
    flight_dump: str = ""
    #: The membership history actually applied, replayable via
    #: :mod:`repro.workloads.trace`.
    history: ChurnTrace = field(default_factory=lambda: ChurnTrace(events=[]))

    @property
    def ok(self) -> bool:
        return (
            self.final_converged
            and not self.violations
            and self.epochs_run == self.epochs_total
        )

    def summary(self) -> str:
        status = "ok" if self.ok else "FAIL"
        return (
            f"soak {self.trace} n={self.peers_start}->{self.peers_final} "
            f"seed={self.seed}: {status} "
            f"epochs={self.epochs_run}/{self.epochs_total} "
            f"joins={self.joins} fails={self.fails} leaves={self.leaves} "
            f"virtual={self.virtual_elapsed / 3600.0:.2f}h "
            f"wall={self.wall_elapsed:.1f}s"
        )


def _schedules(
    config: SoakConfig, rng: np.random.Generator
) -> tuple[list[int], list[int], list[int]]:
    """Per-epoch (joins, fails, leaves) counts for the chosen shape."""
    epochs = config.epochs
    if config.trace == "flash":
        joins = flash_crowd_schedule(
            epochs,
            peak_rate=config.peak_rate,
            peak_at=max(1, epochs // 4),
            width=max(1.0, epochs / 12.0),
            rng=rng,
            base_rate=config.join_rate,
        )
    else:
        joins = steady_schedule(epochs, config.join_rate, rng)
    fails = steady_schedule(epochs, config.fail_rate, rng)
    leaves = steady_schedule(epochs, config.leave_rate, rng)
    if config.trace == "correlated":
        # The burst epoch replaces the background hazard outright: the
        # point is one synchronised mass failure, not a noisy epoch.
        fails[epochs // 2] = -1  # sentinel, resolved against live count
    return joins, fails, leaves


class _SoakRun:
    """One soak execution (state shared between the epoch phases)."""

    def __init__(self, config: SoakConfig) -> None:
        self.config = config
        self.harness = SwarmHarness(config.swarm())
        self.rng = np.random.default_rng(config.seed ^ 0x50A4)
        self.events: list[TraceEvent] = []
        self.joins = 0
        self.fails = 0
        self.leaves = 0
        self.clipped = 0
        self.epochs_run = 0
        self.final_converged = False

    # -- churn application --------------------------------------------

    def _pick_alive(self, count: int) -> list[int]:
        live = [index for index, _ in self.harness.alive()]
        count = min(count, max(0, len(live) - 2))
        if count <= 0:
            return []
        chosen = self.rng.choice(len(live), size=count, replace=False)
        return [live[i] for i in sorted(chosen)]

    async def _apply_joins(self, count: int) -> None:
        room = self.config.population_cap - len(
            [1 for i, _ in self.harness.alive()]
        )
        clipped = max(0, count - max(0, room))
        self.clipped += clipped
        count -= clipped
        if count <= 0:
            return
        added = await self.harness.add_peers(
            count, batch=256, timeout=self.harness.swarm.deadline
        )
        self.joins += len(added)
        for peer in added:
            self.events.append(TraceEvent(
                time=self.harness.clock.time(), kind="join",
                node_id=-1 if peer.node_id is None else peer.node_id,
                degree=self.harness.config.d,
            ))

    def _apply_fails(self, count: int) -> None:
        if count < 0:  # correlated-burst sentinel
            count = int(len(self.harness.alive()) * self.config.burst_fraction)
        for index in self._pick_alive(count):
            node_id = self.harness.peers[index].node_id
            self.harness.kill(index)
            self.fails += 1
            self.events.append(TraceEvent(
                time=self.harness.clock.time(), kind="fail",
                node_id=-1 if node_id is None else node_id,
            ))

    async def _apply_leaves(self, count: int) -> None:
        for index in self._pick_alive(count):
            node_id = self.harness.peers[index].node_id
            await self.harness.leave(index)
            self.leaves += 1
            self.events.append(TraceEvent(
                time=self.harness.clock.time(), kind="leave",
                node_id=-1 if node_id is None else node_id,
            ))

    # -- invariants ----------------------------------------------------

    def _check_epoch(self, epoch: int) -> bool:
        """Structural invariants that must hold at every epoch boundary.

        Decode completion is a liveness property (fresh joiners are
        legitimately mid-decode) and is only demanded at the end of the
        run; what every epoch must show is a consistent control plane:
        thread maps matching the matrix and every departure spliced out.
        """
        harness = self.harness
        before = len(harness.violations)
        core = harness.server.engine.core
        for index, peer in harness.alive():
            if peer.node_id is None or not core.is_working(peer.node_id):
                continue
            expected = core.matrix.parents_of(peer.node_id)
            harness.expect(
                dict(peer.engine.parents) == dict(expected),
                f"epoch {epoch}: peer{index} thread map "
                f"{dict(peer.engine.parents)} != matrix row {dict(expected)}",
            )
        for index in harness.killed:
            node_id = harness.peers[index].node_id
            harness.expect(
                node_id is None or not core.is_working(node_id),
                f"epoch {epoch}: killed peer{index} (node {node_id}) "
                f"still working",
            )
        for index in harness.left:
            node_id = harness.peers[index].node_id
            harness.expect(
                node_id not in core.registry,
                f"epoch {epoch}: left peer{index} (node {node_id}) "
                f"still registered",
            )
        fresh = harness.violations[before:]
        if fresh:
            harness._record_flight_dump(fresh)
            return False
        return True

    # -- the run -------------------------------------------------------

    async def run(self) -> SoakReport:
        config = self.config
        harness = self.harness
        t0 = time.perf_counter()
        with _gc_paused():
            await harness.join_all()
            started = await harness.broadcast()
            harness.expect(started, "initial broadcast never converged")
            joins, fails, leaves = _schedules(config, self.rng)
            if not harness.violations:
                for epoch in range(config.epochs):
                    await self._apply_joins(joins[epoch])
                    self._apply_fails(fails[epoch])
                    await self._apply_leaves(leaves[epoch])
                    healed = await harness.run_until(
                        harness.repaired, timeout=config.epoch
                    )
                    remaining = (epoch + 1) * config.epoch - (
                        harness.clock.time() - harness._t0
                    )
                    if remaining > 0:
                        await harness.settle(remaining)
                    if not healed:
                        harness.expect(
                            False,
                            f"epoch {epoch}: churn not absorbed within "
                            f"{config.epoch}s (undetected crash or "
                            f"unfinished splice)",
                        )
                        harness._record_flight_dump(harness.violations[-1:])
                    self.epochs_run = epoch + 1
                    if harness.violations or not self._check_epoch(epoch):
                        break
            if not harness.violations:
                self.final_converged = await harness.run_until(
                    harness.converged, timeout=harness.swarm.deadline
                )
                await harness.settle()
                if self.final_converged:
                    harness.check_invariants()
                else:
                    harness.expect(
                        False, "survivors never re-converged after the soak"
                    )
        return SoakReport(
            trace=config.trace,
            peers_start=config.peers,
            peers_final=len(harness.alive()),
            seed=config.seed,
            epochs_total=config.epochs,
            epochs_run=self.epochs_run,
            joins=self.joins,
            fails=self.fails,
            leaves=self.leaves,
            clipped_joins=self.clipped,
            final_converged=self.final_converged,
            virtual_elapsed=harness.clock.time() - harness._t0,
            wall_elapsed=time.perf_counter() - t0,
            violations=list(harness.violations),
            flight_dump=harness.flight_dump,
            history=ChurnTrace(events=list(self.events)),
        )


async def run_soak(config: SoakConfig) -> SoakReport:
    """Run one soak to completion (or first violation) and tear down."""
    run = _SoakRun(config)
    try:
        return await run.run()
    finally:
        await run.harness.teardown()
