"""Chaos scenarios: scripted failure storms against a live deployment.

Each scenario brings up a :class:`~repro.net.server.ServerNode` plus N
:class:`~repro.net.peer.PeerNode` instances, injects faults mid-stream
(crashes, partitions, loss, corruption, half-open links, slow readers),
and asserts the protocol invariants of §3-§6:

* **matrix consistency** — every working peer's ``parents`` map agrees
  with the server's thread matrix once the control plane quiesces;
* **membership** — killed peers end up spliced out of the registry,
  graceful leavers disappear entirely (Lemma 1);
* **delivery** — every surviving peer decodes every generation,
  byte-for-byte.

Scenarios run on either transport.  Under ``virtual`` (the default)
everything is in-memory on a :class:`~repro.net.testing.virtualnet.
VirtualClock` — milliseconds of wall time, no sockets, and a
deterministic event trace (same seed, same script -> identical trace).
Under ``live`` the same script drives real asyncio TCP on 127.0.0.1;
only scenarios whose faults are pure churn (crash / leave / join) can
run there, marked ``requires_virtual=False``.
"""

from __future__ import annotations

import asyncio
import hashlib
import re
from dataclasses import dataclass, field, replace
from typing import Awaitable, Callable, Optional

import numpy as np

from ...coding.generation import GenerationParams
from ...core.matrix import SERVER
from ...obs import format_dump
from ...protocol import ReconnectBackoff
from ..peer import PeerNode
from ..server import ServerNode
from ..transport import AsyncioTransport, Clock, Transport
from .virtualnet import VirtualClock, VirtualNetwork

__all__ = [
    "ChaosConfig",
    "ChaosHarness",
    "SCENARIOS",
    "Scenario",
    "ScenarioResult",
    "get_scenario",
    "run_scenario",
    "run_scenario_sync",
    "trace_digest",
]


@dataclass(frozen=True)
class ChaosConfig:
    """Deployment geometry and pacing shared by all scenarios."""

    peers: int = 6
    k: int = 4
    d: int = 2
    generation_size: int = 8
    payload_size: int = 64
    generations: int = 2
    seed: int = 0
    insert_mode: str = "append"
    send_interval: float = 0.05
    queue_limit: int = 32
    keepalive_interval: float = 0.5
    silence_timeout: float = 2.0
    probe_timeout: float = 0.5
    reconnect_base: float = 0.05
    reconnect_max: float = 0.8
    #: Peer fan-out policy: "eager" (the default, digest-pinned) or
    #: "innovative" (swarm scale mode — see PeerNode.forward_policy).
    forward_policy: str = "eager"
    #: Packets recoded toward a child the moment it attaches.
    seed_burst: int = 1
    #: Scenario budget in (virtual) seconds; exceeding it is a failure.
    deadline: float = 120.0

    @property
    def content_size(self) -> int:
        return self.generations * self.generation_size * self.payload_size


@dataclass
class ScenarioResult:
    """Outcome of one scenario run."""

    name: str
    transport: str
    seed: int
    converged: bool
    elapsed: float
    violations: list[str] = field(default_factory=list)
    repairs: int = 0
    crashes: int = 0
    probes: int = 0
    leaves: int = 0
    reconnects: int = 0
    complaints: int = 0
    drops: int = 0
    killed: tuple[int, ...] = ()
    #: The VirtualNetwork event trace (empty on the live transport).
    trace: tuple = ()
    #: Flight-recorder dump of the implicated engines, captured the
    #: moment an invariant check failed ("" when everything held).
    flight_dump: str = ""

    @property
    def ok(self) -> bool:
        return self.converged and not self.violations

    def summary(self) -> str:
        status = "ok" if self.ok else "FAIL"
        line = (
            f"{self.name}: {status} t={self.elapsed:.2f}s "
            f"repairs={self.repairs} reconnects={self.reconnects} "
            f"complaints={self.complaints} drops={self.drops}"
        )
        for violation in self.violations:
            line += f"\n  violation: {violation}"
        if self.violations and self.flight_dump:
            line += "\n" + self.flight_dump
        return line


def trace_digest(trace) -> str:
    """A short stable fingerprint of an event trace (determinism checks)."""
    return hashlib.sha256(repr(tuple(trace)).encode()).hexdigest()[:16]


class ChaosHarness:
    """One deployment under test: server + peers + fault controls.

    Scenario coroutines receive a harness, call :meth:`start`, script
    faults against :attr:`net` (virtual mode), drive time forward with
    :meth:`run_until` / :meth:`settle`, and record assertion failures
    via :meth:`expect` — failures accumulate rather than raise, so the
    deployment is always torn down cleanly and every violated invariant
    is reported at once.
    """

    def __init__(
        self,
        config: ChaosConfig,
        *,
        transport: str = "virtual",
        turbo: bool = False,
        quantum: float = 0.0,
        record_trace: bool = True,
    ) -> None:
        if transport not in ("virtual", "live"):
            raise ValueError(f"unknown transport {transport!r}")
        self.config = config
        self.mode = transport
        if transport == "virtual":
            self.net: Optional[VirtualNetwork] = VirtualNetwork(
                VirtualClock(quantum=quantum),
                seed=config.seed,
                turbo=turbo,
                record_trace=record_trace,
            )
            self.clock: Clock = self.net.clock
        else:
            self.net = None
            self.clock = AsyncioTransport().clock
        self.server: Optional[ServerNode] = None
        self.peers: list[PeerNode] = []
        # node_id -> peer index, maintained as peers join (and rebuilt
        # lazily if a lookup races a grant) so topology reads like
        # ``data_edges`` stay O(edges) instead of O(edges * peers).
        self._node_index: dict[int, int] = {}
        self.killed: set[int] = set()
        self.left: set[int] = set()
        self.violations: list[str] = []
        self.flight_dump = ""
        self.content = b""
        self._t0 = 0.0
        #: Granularity of the driving loop (one server emission round).
        self.step = config.send_interval

    # -- construction --------------------------------------------------

    def _transport_for(self, host: str) -> Transport:
        if self.net is not None:
            return self.net.transport(host)
        return AsyncioTransport()

    @property
    def server_host(self) -> str:
        return "server" if self.net is not None else "127.0.0.1"

    async def start(self, peers: Optional[int] = None) -> None:
        """Bring up the server and the initial peer population."""
        config = self.config
        rng = np.random.default_rng(config.seed)
        self.content = rng.integers(
            0, 256, size=config.content_size, dtype=np.uint8
        ).tobytes()
        params = GenerationParams(config.generation_size, config.payload_size)
        self.server = ServerNode(
            self.content, params,
            k=config.k, d=config.d, seed=config.seed,
            insert_mode=config.insert_mode,
            send_interval=config.send_interval,
            queue_limit=config.queue_limit,
            keepalive_interval=config.keepalive_interval,
            probe_timeout=config.probe_timeout,
            transport=self._transport_for(self.server_host),
        )
        await self._drive(self.server.start())
        self._t0 = self.clock.time()
        for _ in range(config.peers if peers is None else peers):
            await self.add_peer()

    def _make_peer(self, index: int) -> PeerNode:
        config = self.config
        return PeerNode(
            self.server_host, self.server.port,
            seed=config.seed + 1 + index,
            queue_limit=config.queue_limit,
            keepalive_interval=config.keepalive_interval,
            silence_timeout=config.silence_timeout,
            reconnect_base=config.reconnect_base,
            reconnect_max=config.reconnect_max,
            forward_policy=config.forward_policy,
            seed_burst=config.seed_burst,
            transport=self._transport_for(f"peer{index}"),
        )

    async def add_peer(self) -> PeerNode:
        """Join one more peer (host ``peerN`` on the virtual network)."""
        index = len(self.peers)
        peer = self._make_peer(index)
        await self._drive(peer.start())
        self.peers.append(peer)
        if peer.node_id is not None:
            self._node_index[peer.node_id] = index
        return peer

    async def add_peers(
        self, count: int, *, batch: int = 64, timeout: float = 60.0
    ) -> list[PeerNode]:
        """Join ``count`` peers, dialling up to ``batch`` concurrently.

        Serial joins pump the clock once per peer, which is fine for a
        dozen and is the dominant cost at ten thousand — batched joins
        overlap the hello round-trips instead.  Join *order* (and hence
        node-id assignment) still follows peer index: hellos are sent in
        index order on a deterministic clock.
        """
        added: list[PeerNode] = []
        while len(added) < count:
            group = min(batch, count - len(added))
            start_index = len(self.peers)
            peers = [self._make_peer(start_index + i) for i in range(group)]
            self.peers.extend(peers)
            await self._drive(
                asyncio.gather(*(peer.start() for peer in peers)),
                timeout=timeout,
            )
            for offset, peer in enumerate(peers):
                if peer.node_id is not None:
                    self._node_index[peer.node_id] = start_index + offset
            added.extend(peers)
        return added

    async def teardown(self) -> None:
        try:
            if self.server is not None:
                await self._drive(self.server.stop(), timeout=30.0)
            for index, peer in enumerate(self.peers):
                if index not in self.killed:
                    await self._drive(peer.close(), timeout=30.0)
        finally:
            if self.net is not None:
                await self.net.shutdown()

    # -- time ----------------------------------------------------------

    async def _drive(self, coroutine: Awaitable, timeout: float = 10.0):
        """Await a coroutine while pumping the clock (virtual time does
        not advance by itself, and node start-up needs timers to fire)."""
        task = asyncio.ensure_future(coroutine)
        deadline = self.clock.time() + timeout
        while not task.done() and self.clock.time() < deadline:
            await self.clock.advance(self.step)
        if not task.done():
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            raise asyncio.TimeoutError(f"drive exceeded {timeout}s")
        return task.result()

    async def run_until(
        self, predicate: Callable[[], bool], timeout: Optional[float] = None
    ) -> bool:
        """Advance time one emission round at a time until ``predicate``
        holds; False if the (virtual) deadline passes first."""
        deadline = self.clock.time() + (
            self.config.deadline if timeout is None else timeout
        )
        while not predicate():
            if self.clock.time() >= deadline:
                return False
            await self.clock.advance(self.step)
        return True

    async def settle(self, duration: Optional[float] = None) -> None:
        """Let in-flight control traffic land before checking invariants.

        A scenario that never quiesces (a busy-spinning task, a timer
        loop that re-arms faster than the clock drains it) used to hang
        here — the clock's settle loop would spin until the process was
        killed, leaving no evidence.  The advance now runs under a
        virtual-time deadline; if the clock cannot settle, the failure
        is recorded as a violation with a full flight-recorder dump and
        the harness proceeds to an orderly teardown.
        """
        span = 4 * self.config.send_interval if duration is None else duration
        try:
            await self.clock.advance(span)
        except RuntimeError as error:
            message = f"settle never quiesced: {error}"
            self.violations.append(message)
            self._record_flight_dump([message])

    # -- fault injection ----------------------------------------------

    def host(self, index: int) -> str:
        return f"peer{index}"

    def kill(self, index: int) -> None:
        """Crash a peer: no good-bye, all its transports torn down."""
        self.peers[index].kill()
        self.killed.add(index)
        if self.net is not None:
            self.net.record("kill", self.host(index))

    async def leave(self, index: int) -> None:
        """Graceful good-bye (§3) for one peer."""
        await self._drive(self.peers[index].leave())
        self.left.add(index)
        if self.net is not None:
            self.net.record("leave", self.host(index))

    def isolate(self, index: int) -> None:
        """Partition a peer from the server and every other peer."""
        host = self.host(index)
        self.net.partition(host, self.server_host)
        for other in range(len(self.peers)):
            if other != index:
                self.net.partition(host, self.host(other))

    def rejoin(self, index: int) -> None:
        """Heal every link cut by :meth:`isolate`."""
        host = self.host(index)
        self.net.heal(host, self.server_host)
        for other in range(len(self.peers)):
            if other != index:
                self.net.heal(host, self.host(other))

    # -- observation ---------------------------------------------------

    def alive(self) -> list[tuple[int, PeerNode]]:
        return [
            (index, peer) for index, peer in enumerate(self.peers)
            if index not in self.killed and index not in self.left
        ]

    def converged(self) -> bool:
        alive = self.alive()
        return bool(alive) and all(peer.completed for _, peer in alive)

    def progress(self) -> float:
        alive = self.alive()
        if not alive:
            return 0.0
        return float(np.mean([
            peer.rank / peer.needed if peer.needed else 0.0
            for _, peer in alive
        ]))

    def index_of(self, node_id: int) -> Optional[int]:
        if node_id is None or node_id == SERVER:
            return None
        index = self._node_index.get(node_id)
        if index is not None:
            return index
        if len(self._node_index) < len(self.peers):
            # Some peers got their grant after the last index update
            # (e.g. a scenario drove start() by hand); refresh once.
            self._node_index = {
                peer.node_id: i
                for i, peer in enumerate(self.peers)
                if peer.node_id is not None
            }
            return self._node_index.get(node_id)
        return None

    def data_edges(self) -> list[tuple[int, int, int]]:
        """Live peer-to-peer (parent_index, child_index, column) edges,
        read from the server's thread matrix."""
        matrix = self.server.core.matrix
        edges = []
        for child_index, child in self.alive():
            if child.node_id is None:
                continue
            if not self.server.core.is_working(child.node_id):
                continue
            for column, parent in sorted(matrix.parents_of(child.node_id).items()):
                parent_index = self.index_of(parent)
                if parent_index is not None:
                    edges.append((parent_index, child_index, column))
        return edges

    def pick_parent(self, *, peer_parents_only: bool = False) -> int:
        """Index of the first peer that currently feeds another peer.

        With ``peer_parents_only`` the pick is restricted to feeders
        whose own parents are all peers: peer parents serve any child
        that dials them, whereas the server runs exactly one sender per
        column, so only such a node can keep receiving data after being
        spliced out of the matrix.
        """
        matrix = self.server.core.matrix
        feeders: list[int] = []
        for parent_index, _, _ in self.data_edges():
            if parent_index not in feeders:
                feeders.append(parent_index)
        if peer_parents_only:
            feeders = [
                index for index in feeders
                if all(
                    parent != SERVER
                    for parent in matrix.parents_of(
                        self.peers[index].node_id
                    ).values()
                )
            ]
        if not feeders:
            raise LookupError("no suitable peer-to-peer edge in the matrix")
        return feeders[0]

    # -- invariants ----------------------------------------------------

    def expect(self, condition: bool, message: str) -> None:
        """Record an assertion; failures accumulate in the result."""
        if not condition:
            self.violations.append(message)

    def check_invariants(self) -> None:
        """The §3-§6 protocol invariants every scenario must end on.

        Read straight off the engines: the server engine's core is the
        matrix authority and each peer engine's thread map is the
        ground truth its driver clips from.  A violation captures a
        flight-recorder dump of the implicated engines — the last N
        events and effects each one saw — so a failing seed yields an
        actionable trace, not a bare assertion message.
        """
        before = len(self.violations)
        core = self.server.engine.core
        for index, peer in self.alive():
            if peer.node_id is None or not core.is_working(peer.node_id):
                continue
            expected = core.matrix.parents_of(peer.node_id)
            self.expect(
                dict(peer.engine.parents) == dict(expected),
                f"peer{index} thread map {dict(peer.engine.parents)} "
                f"!= matrix row {dict(expected)}",
            )
        for index in self.killed:
            node_id = self.peers[index].node_id
            self.expect(
                node_id is None or not core.is_working(node_id),
                f"killed peer{index} (node {node_id}) still working",
            )
            self.expect(
                node_id is None or node_id in self.server.engine.departed,
                f"killed peer{index} (node {node_id}) not marked departed",
            )
        for index in self.left:
            node_id = self.peers[index].node_id
            self.expect(
                node_id not in core.registry,
                f"left peer{index} (node {node_id}) still registered",
            )
            self.expect(
                node_id is None or node_id in self.server.engine.departed,
                f"left peer{index} (node {node_id}) not marked departed",
            )
        for index, peer in self.alive():
            self.expect(peer.completed, f"peer{index} never finished decoding")
            if peer.completed:
                self.expect(
                    peer.recovered_content() == self.content,
                    f"peer{index} decoded the wrong bytes",
                )
        if len(self.violations) > before:
            self._record_flight_dump(self.violations[before:])

    def _record_flight_dump(self, new_violations: list[str]) -> None:
        """Dump the flight recorders of every engine a violation names
        (plus the server's — the matrix authority is always relevant)."""
        sections = []
        if self.server is not None and self.server.engine.flight is not None:
            sections.append(format_dump(self.server.engine.flight, "server"))
        implicated = sorted({
            int(match)
            for violation in new_violations
            for match in re.findall(r"peer(\d+)", violation)
        })
        if not implicated:
            implicated = [index for index, _ in self.alive()]
        for index in implicated:
            peer = self.peers[index]
            if peer.engine.flight is not None:
                sections.append(format_dump(
                    peer.engine.flight, f"peer{index} (node {peer.node_id})",
                ))
        self.flight_dump = "\n".join(sections)

    def result(self, name: str) -> ScenarioResult:
        stats = self.server.stats if self.server is not None else None
        return ScenarioResult(
            name=name,
            transport=self.mode,
            seed=self.config.seed,
            converged=self.converged(),
            elapsed=self.clock.time() - self._t0,
            violations=list(self.violations),
            repairs=stats.repairs if stats else 0,
            crashes=stats.crashes if stats else 0,
            probes=stats.probes if stats else 0,
            leaves=stats.leaves if stats else 0,
            reconnects=sum(p.stats.reconnects for p in self.peers),
            complaints=sum(p.stats.complaints for p in self.peers),
            drops=sum(
                s.dropped
                for p in self.peers for s in p.sender_stats
            ) + sum(s.dropped for s in self.server.sender_stats),
            killed=tuple(sorted(self.killed)),
            trace=tuple(self.net.trace) if self.net is not None else (),
            flight_dump=self.flight_dump,
        )


# ----------------------------------------------------------------------
# Scenario registry


@dataclass(frozen=True)
class Scenario:
    """A named chaos script plus the deployment it runs against."""

    name: str
    description: str
    run: Callable[[ChaosHarness], Awaitable[None]]
    config: ChaosConfig = ChaosConfig()
    #: True if the script injects link faults only the in-memory
    #: network can express (loss, corruption, partitions, ...).
    requires_virtual: bool = True


SCENARIOS: dict[str, Scenario] = {}


def scenario(
    name: str,
    description: str,
    *,
    config: ChaosConfig = ChaosConfig(),
    requires_virtual: bool = True,
):
    def register(fn):
        SCENARIOS[name] = Scenario(name, description, fn, config, requires_virtual)
        return fn

    return register


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r}; known: {known}") from None


async def run_scenario(
    name: str, *, seed: int = 0, transport: str = "virtual"
) -> ScenarioResult:
    """Execute one scenario and return its result (never raises on a
    protocol violation — see :attr:`ScenarioResult.violations`)."""
    spec = get_scenario(name)
    if transport == "live" and spec.requires_virtual:
        raise ValueError(
            f"scenario {name!r} scripts link faults and needs the virtual transport"
        )
    config = replace(spec.config, seed=seed)
    harness = ChaosHarness(config, transport=transport)
    try:
        await spec.run(harness)
    finally:
        await harness.teardown()
    return harness.result(spec.name)


def run_scenario_sync(
    name: str, *, seed: int = 0, transport: str = "virtual"
) -> ScenarioResult:
    """Blocking wrapper around :func:`run_scenario`."""
    return asyncio.run(run_scenario(name, seed=seed, transport=transport))


# ----------------------------------------------------------------------
# The catalogue


@scenario(
    "baseline",
    "No faults: every peer joins, decodes everything, matrix stays consistent.",
    requires_virtual=False,
)
async def _baseline(h: ChaosHarness) -> None:
    await h.start()
    h.expect(await h.run_until(h.converged), "deployment never converged")
    await h.settle()
    h.check_invariants()
    h.expect(h.server.stats.repairs == 0, "repairs on a healthy network")


@scenario(
    "latency_jitter",
    "Every link gets fixed latency plus seeded jitter; convergence survives "
    "the skew.",
)
async def _latency_jitter(h: ChaosHarness) -> None:
    h.net.set_default(latency=0.01, jitter=0.005)
    await h.start()
    h.expect(await h.run_until(h.converged), "never converged under latency")
    await h.settle(0.5)
    h.check_invariants()


@scenario(
    "reordered_delivery",
    "Peer-to-peer data frames are randomly swapped in flight; rank-based "
    "decoding is order-oblivious.",
)
async def _reordered_delivery(h: ChaosHarness) -> None:
    await h.start()
    for a in range(h.config.peers):
        for b in range(h.config.peers):
            if a != b:
                h.net.set_link(h.host(a), h.host(b), symmetric=False, reorder=0.3)
    h.expect(await h.run_until(h.converged), "never converged under reordering")
    await h.settle()
    h.check_invariants()


@scenario(
    "lossy_links",
    "8% frame loss on every peer-to-peer link; coded packets are fungible so "
    "the stream heals itself.",
)
async def _lossy_links(h: ChaosHarness) -> None:
    await h.start()
    for a in range(h.config.peers):
        for b in range(h.config.peers):
            if a != b:
                h.net.set_link(h.host(a), h.host(b), symmetric=False, loss=0.08)
    h.expect(await h.run_until(h.converged), "never converged under loss")
    await h.settle()
    h.check_invariants()


@scenario(
    "corrupt_link",
    "Bit flips on one parent->child data link; CRC32 rejects the frame, the "
    "child reconnects, the stream recovers.",
)
async def _corrupt_link(h: ChaosHarness) -> None:
    await h.start()
    parent, child, _ = h.data_edges()[0]
    h.net.set_link(h.host(parent), h.host(child), symmetric=False, corrupt=0.9)
    h.expect(
        await h.run_until(
            lambda: len(h.net.events("corrupt")) >= 3, timeout=30.0
        ),
        "corruption fault never fired (scenario tested nothing)",
    )
    h.net.set_link(h.host(parent), h.host(child), symmetric=False, corrupt=0.0)
    h.expect(await h.run_until(h.converged), "never converged after corruption")
    await h.settle()
    h.check_invariants()


@scenario(
    "crash_parent_midstream",
    "A peer that feeds other peers dies abruptly at ~25% progress; the server "
    "splices it out and every survivor still decodes everything.",
    requires_virtual=False,
)
async def _crash_parent_midstream(h: ChaosHarness) -> None:
    await h.start()
    h.expect(
        await h.run_until(lambda: h.progress() >= 0.25),
        "no decode progress before the crash",
    )
    h.kill(h.pick_parent())
    h.expect(await h.run_until(h.converged), "survivors never converged")
    await h.settle()
    h.check_invariants()
    h.expect(h.server.stats.repairs >= 1, "crash never repaired")


@scenario(
    "multi_crash",
    "Two peers crash in sequence; the matrix is repaired twice and the "
    "survivors converge.",
    config=ChaosConfig(peers=8),
    requires_virtual=False,
)
async def _multi_crash(h: ChaosHarness) -> None:
    await h.start()
    h.expect(
        await h.run_until(lambda: h.progress() >= 0.2),
        "no decode progress before the crashes",
    )
    first = h.pick_parent()
    h.kill(first)
    h.expect(
        await h.run_until(lambda: h.server.stats.repairs >= 1),
        "first crash never repaired",
    )
    second = next(i for i, _ in h.alive() if i != first)
    h.kill(second)
    h.expect(await h.run_until(h.converged), "survivors never converged")
    await h.settle()
    h.check_invariants()
    h.expect(h.server.stats.repairs >= 2, "second crash never repaired")


@scenario(
    "partition_repair",
    "A peer is partitioned from everyone; probes go unanswered, the server "
    "repairs it away, and after healing it still finishes decoding off its "
    "old parents (§6: the data plane outlives membership).",
)
async def _partition_repair(h: ChaosHarness) -> None:
    await h.start()
    h.expect(
        await h.run_until(lambda: h.progress() >= 0.2),
        "no decode progress before the partition",
    )
    victim = h.pick_parent(peer_parents_only=True)
    h.isolate(victim)
    h.expect(
        await h.run_until(lambda: h.server.stats.repairs >= 1, timeout=30.0),
        "partitioned peer never repaired away",
    )
    h.rejoin(victim)
    h.expect(await h.run_until(h.converged), "peers never converged after heal")
    await h.settle()
    h.check_invariants()
    node_id = h.peers[victim].node_id
    h.expect(
        not h.server.core.is_working(node_id),
        f"partitioned node {node_id} still in the matrix",
    )


@scenario(
    "halfopen_parent",
    "One direction of a parent->child link silently blackholes: the child "
    "complains, the probe is ACKed (parent is alive), so no repair happens "
    "and the child recovers once the link heals.",
)
async def _halfopen_parent(h: ChaosHarness) -> None:
    await h.start()
    parent, child, _ = h.data_edges()[0]
    h.net.set_link(h.host(parent), h.host(child), symmetric=False, blackhole=True)
    h.expect(
        await h.run_until(
            lambda: h.peers[child].stats.complaints >= 1, timeout=30.0
        ),
        "child never complained about the half-open parent",
    )
    h.expect(
        await h.run_until(lambda: h.server.stats.probes >= 1, timeout=30.0),
        "server never probed the suspect",
    )
    h.net.set_link(h.host(parent), h.host(child), symmetric=False, blackhole=False)
    h.expect(await h.run_until(h.converged), "never converged after heal")
    await h.settle()
    h.check_invariants()
    h.expect(
        h.server.stats.repairs == 0,
        "healthy parent was repaired away on a half-open link (false positive)",
    )


@scenario(
    "reconnect_backoff_storm",
    "A child is cut off from one parent; its redial attempts in the trace "
    "must follow the exponential backoff schedule exactly.",
)
async def _reconnect_backoff_storm(h: ChaosHarness) -> None:
    await h.start()
    edges = h.data_edges()
    parent, child, _ = next(
        (p, c, col) for p, c, col in edges
        if sum(1 for p2, c2, _ in edges if (p2, c2) == (p, c)) == 1
    )
    h.net.partition(h.host(child), h.host(parent))

    def refusals() -> list[tuple]:
        return [
            event for event in h.net.events("refused")
            if event[2] == h.host(child) and event[3] == h.host(parent)
        ]

    h.expect(
        await h.run_until(lambda: len(refusals()) >= 5, timeout=30.0),
        "child never went through five refused redials",
    )
    times = [event[0] for event in refusals()[:5]]
    deltas = [round(b - a, 9) for a, b in zip(times, times[1:])]
    expected = ReconnectBackoff(
        h.config.reconnect_base, h.config.reconnect_max
    ).schedule(len(deltas))
    h.expect(
        all(abs(d - e) < 1e-6 for d, e in zip(deltas, expected)),
        f"redial spacing {deltas} does not follow backoff schedule {expected}",
    )
    h.net.heal(h.host(child), h.host(parent))
    h.expect(await h.run_until(h.converged), "never converged after heal")
    await h.settle()
    h.check_invariants()


@scenario(
    "slow_reader_backpressure",
    "One child's inbound link is throttled with a tiny receive window; the "
    "parent's drop-oldest queue sheds packets instead of stalling, and the "
    "child still converges via its other thread.",
    config=ChaosConfig(queue_limit=4),
)
async def _slow_reader_backpressure(h: ChaosHarness) -> None:
    await h.start()
    parent, child, _ = h.data_edges()[0]
    h.net.set_link(
        h.host(parent), h.host(child), symmetric=False,
        bandwidth=500.0, buffer_bytes=256,
    )
    h.expect(await h.run_until(h.converged), "never converged while throttled")
    await h.settle()
    h.check_invariants()
    dropped = sum(s.dropped for s in h.peers[parent].sender_stats) + sum(
        sender.stats.dropped for sender in h.peers[parent].child_senders
    )
    h.expect(dropped >= 1, "backpressure never forced a drop-oldest eviction")


@scenario(
    "graceful_leave_reclip",
    "A feeding peer says good-bye mid-stream; Lemma 1 splices its parents to "
    "its children with zero repairs and the survivors converge.",
    requires_virtual=False,
)
async def _graceful_leave_reclip(h: ChaosHarness) -> None:
    await h.start()
    h.expect(
        await h.run_until(lambda: h.progress() >= 0.2),
        "no decode progress before the leave",
    )
    leaver = h.pick_parent()
    await h.leave(leaver)
    h.expect(await h.run_until(h.converged), "survivors never converged")
    await h.settle()
    h.check_invariants()
    h.expect(h.server.stats.leaves == 1, "good-bye never reached the server")
    h.expect(h.server.stats.repairs == 0, "a graceful leave triggered repair")


@scenario(
    "uniform_adversarial_joins",
    "Peers join staggered mid-broadcast under §5 uniform insertion; displaced "
    "children re-clip onto the newcomers and everyone converges.",
    config=ChaosConfig(peers=3, insert_mode="uniform"),
    requires_virtual=False,
)
async def _uniform_adversarial_joins(h: ChaosHarness) -> None:
    await h.start()
    for _ in range(4):
        await h.clock.advance(6 * h.config.send_interval)
        await h.add_peer()
    h.expect(await h.run_until(h.converged), "staggered joins never converged")
    await h.settle()
    h.check_invariants()
    h.expect(len(h.peers) == 7, "not all joins completed")
