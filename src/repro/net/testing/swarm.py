"""Large-swarm harness: thousands of peers on the turbo virtual network.

The chaos scenarios optimise for fidelity — per-frame delivery, a trace
of every event, a settle after every timer — which is the right trade
at a dozen peers and hopeless at ten thousand.  :class:`SwarmHarness`
reuses the exact same node code and :class:`ChaosHarness` machinery but
flips every scale switch at once:

* the :class:`~repro.net.testing.virtualnet.VirtualNetwork` runs in
  ``turbo`` mode (synchronous clean-link delivery, lazy pumps,
  coalesced writes) with trace recording off;
* the :class:`~repro.net.testing.virtualnet.VirtualClock` batches all
  timers due within one ``quantum`` and settles the loop once per
  batch;
* joins are batched (:meth:`ChaosHarness.add_peers`) instead of one
  clock pump per peer;
* pacing is stretched — seconds-long emission intervals and long
  keepalives, so virtual hours cost thousands of timer firings per
  node, not millions.

The headline driver is :meth:`SwarmHarness.run_round`: join *n* peers,
broadcast until everyone decodes, crash a fraction of the swarm, and
run until every survivor has decoded — the acceptance gate for the
10k-peer scaling work.  :meth:`report` reads the result off the
server's observability registry (no trace needed).
"""

from __future__ import annotations

import asyncio
import contextlib
import gc
import time
from dataclasses import dataclass, field

import numpy as np

from ...obs import snapshot_obj
from .scenarios import ChaosConfig, ChaosHarness

__all__ = ["SwarmConfig", "SwarmHarness", "SwarmReport", "run_swarm_round"]


@contextlib.contextmanager
def _gc_paused():
    """Suspend the cyclic collector for the duration of a swarm phase.

    A 10k-peer swarm is millions of long-lived, heavily cross-linked
    objects; generational GC rescans that graph every few thousand
    allocations and eats ~40% of the round's wall clock finding nothing
    to free.  One collection at the end reclaims the true garbage.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
            gc.collect()


@dataclass(frozen=True)
class SwarmConfig:
    """Geometry and pacing for one large-swarm round.

    Defaults are sized for a 1k-peer smoke; scale ``peers`` up and the
    rest holds.  Content is deliberately small (one generation): swarm
    runs measure control-plane and transport scaling, not bulk decode
    throughput — the microbenches cover coding-path speed.
    """

    peers: int = 1000
    #: Server threads.  Chains are ~``peers * d / k`` deep; a wide
    #: server keeps depth (and hence per-round settle work) manageable.
    k: int = 32
    d: int = 2
    generation_size: int = 8
    payload_size: int = 32
    generations: int = 1
    seed: int = 0
    insert_mode: str = "append"
    #: One server emission round per (virtual) second.
    send_interval: float = 1.0
    queue_limit: int = 32
    keepalive_interval: float = 10.0
    silence_timeout: float = 30.0
    probe_timeout: float = 4.0
    reconnect_base: float = 0.5
    reconnect_max: float = 4.0
    #: Virtual-time budget for each phase (join / broadcast / re-decode).
    deadline: float = 900.0
    #: Timer-coalescing window for the quantum clock.
    quantum: float = 0.25
    #: Concurrent hellos per join wave.
    join_batch: int = 256
    #: Fraction of the swarm crashed by :meth:`SwarmHarness.churn`.
    churn_fraction: float = 0.10

    def chaos(self) -> ChaosConfig:
        return ChaosConfig(
            peers=self.peers,
            k=self.k,
            d=self.d,
            generation_size=self.generation_size,
            payload_size=self.payload_size,
            generations=self.generations,
            seed=self.seed,
            insert_mode=self.insert_mode,
            send_interval=self.send_interval,
            queue_limit=self.queue_limit,
            keepalive_interval=self.keepalive_interval,
            silence_timeout=self.silence_timeout,
            probe_timeout=self.probe_timeout,
            reconnect_base=self.reconnect_base,
            reconnect_max=self.reconnect_max,
            forward_policy="innovative",
            seed_burst=self.generation_size,
            deadline=self.deadline,
        )


@dataclass
class SwarmReport:
    """What one swarm round cost and whether it converged."""

    peers: int
    seed: int
    joined: int
    killed: int
    converged: bool
    survivors_decoded: bool
    virtual_elapsed: float
    wall_join: float
    wall_broadcast: float
    wall_churn: float
    violations: list[str] = field(default_factory=list)
    #: Raw server counters lifted from the obs registry snapshot.
    server_metrics: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.converged and self.survivors_decoded and not self.violations

    @property
    def wall_total(self) -> float:
        return self.wall_join + self.wall_broadcast + self.wall_churn

    def summary(self) -> str:
        status = "ok" if self.ok else "FAIL"
        return (
            f"swarm n={self.peers} seed={self.seed}: {status} "
            f"wall={self.wall_total:.1f}s "
            f"(join {self.wall_join:.1f}s, broadcast {self.wall_broadcast:.1f}s, "
            f"churn {self.wall_churn:.1f}s) virtual={self.virtual_elapsed:.0f}s "
            f"killed={self.killed}"
        )


class SwarmHarness(ChaosHarness):
    """A :class:`ChaosHarness` with every scale switch flipped."""

    def __init__(self, config: SwarmConfig) -> None:
        super().__init__(
            config.chaos(),
            transport="virtual",
            turbo=True,
            quantum=config.quantum,
            record_trace=False,
        )
        self.swarm = config
        self._churn_rng = np.random.default_rng(config.seed ^ 0xC0FFEE)
        # Deep chains cascade synchronously in turbo mode: one server
        # emission can ripple through hundreds of hops inside a single
        # settle, each hop costing a few ready-queue passes.
        self.clock.settle_limit = 500_000

    # -- phases --------------------------------------------------------

    async def join_all(self) -> None:
        """Server up, then the whole population in concurrent waves."""
        await self.start(peers=0)
        await self.add_peers(
            self.swarm.peers,
            batch=self.swarm.join_batch,
            timeout=self.swarm.deadline,
        )

    async def broadcast(self, until_progress: float = 1.0) -> bool:
        """Advance until mean decode progress reaches the target (1.0
        with everyone complete = full convergence)."""
        if until_progress >= 1.0:
            return await self.run_until(
                self.converged, timeout=self.swarm.deadline
            )
        return await self.run_until(
            lambda: self.progress() >= until_progress,
            timeout=self.swarm.deadline,
        )

    def churn(self, fraction: float | None = None) -> list[int]:
        """Crash a uniformly random fraction of the live population."""
        fraction = self.swarm.churn_fraction if fraction is None else fraction
        live = [index for index, _ in self.alive()]
        count = int(len(live) * fraction)
        victims = sorted(
            self._churn_rng.choice(len(live), size=count, replace=False)
        )
        chosen = [live[v] for v in victims]
        for index in chosen:
            self.kill(index)
        return chosen

    async def survivors_decoded(self) -> bool:
        """Advance until every survivor holds the full content again.

        Survivors whose parents died must complain, get repaired and
        keep decoding off their new streams — this is where the repair
        path earns its keep at scale.
        """
        return await self.run_until(self.converged, timeout=self.swarm.deadline)

    async def teardown(self) -> None:
        """Batched shutdown: close every surviving peer concurrently.

        The chaos teardown closes peers one clock-pump at a time —
        that ordering is part of the pinned traces, but here it would
        cost more wall time than the round itself.
        """
        try:
            if self.server is not None:
                await self._drive(self.server.stop(), timeout=30.0)
            open_peers = [
                peer for index, peer in enumerate(self.peers)
                if index not in self.killed
            ]
            if open_peers:
                await self._drive(
                    asyncio.gather(*(peer.close() for peer in open_peers)),
                    timeout=60.0,
                )
        finally:
            if self.net is not None:
                await self.net.shutdown()

    def repaired(self) -> bool:
        """True once every crash has been detected and spliced out."""
        core = self.server.core
        if core.failed:
            return False
        return all(
            self.peers[index].node_id is None
            or self.peers[index].node_id not in core.registry
            for index in self.killed
        )

    # -- the acceptance round ------------------------------------------

    async def run_round(self) -> SwarmReport:
        """join -> broadcast -> 10% churn mid-decode -> survivors decode.

        The churn lands at half progress, so the killed peers take live
        streams down with them: their children must complain, get
        redirected, and finish decoding off the replacement parents.
        """
        with _gc_paused():
            t0 = time.perf_counter()
            await self.join_all()
            t1 = time.perf_counter()
            started = await self.broadcast(until_progress=0.5)
            t2 = time.perf_counter()
            killed = self.churn()
            decoded = await self.survivors_decoded()
            converged = started and decoded
            healed = await self.run_until(
                self.repaired, timeout=self.swarm.deadline
            )
            await self.settle()
            if decoded and healed:
                self.check_invariants()
            else:
                self.expect(decoded, "survivors never finished decoding")
                self.expect(healed, "server never repaired all crashed peers")
            t3 = time.perf_counter()
        return self.report(
            converged=converged,
            decoded=decoded,
            killed=len(killed),
            wall=(t1 - t0, t2 - t1, t3 - t2),
        )

    # -- reporting -----------------------------------------------------

    def report(
        self,
        *,
        converged: bool,
        decoded: bool,
        killed: int,
        wall: tuple[float, float, float],
    ) -> SwarmReport:
        """Fold the server's obs registry into a :class:`SwarmReport`."""
        snapshot = snapshot_obj(self.server.registry)
        sections = next(iter(snapshot["registries"].values()), {})
        metrics: dict = {}
        for kind in ("counters", "gauges"):
            metrics.update(sections.get(kind, {}))
        return SwarmReport(
            peers=self.swarm.peers,
            seed=self.swarm.seed,
            joined=sum(1 for p in self.peers if p.node_id is not None),
            killed=killed,
            converged=converged,
            survivors_decoded=decoded,
            virtual_elapsed=self.clock.time() - self._t0,
            wall_join=wall[0],
            wall_broadcast=wall[1],
            wall_churn=wall[2],
            violations=list(self.violations),
            server_metrics=metrics,
        )


async def run_swarm_round(config: SwarmConfig) -> SwarmReport:
    """Convenience wrapper: one full round with clean teardown."""
    harness = SwarmHarness(config)
    try:
        return await harness.run_round()
    finally:
        await harness.teardown()
