"""A live peer: clip, recode, forward — over real sockets.

:class:`PeerNode` is the live-transport driver of the sans-IO
:class:`~repro.protocol.peer_engine.PeerEngine`.  The engine owns every
peer-side protocol decision — which parent feeds which column, when to
complain, how long to back off — and this module owns the I/O around
it: it joins through the server's hello protocol, dials one upstream
*data* connection per assigned thread, feeds everything it receives
into the shared :class:`~repro.coding.recoder.Recoder`, and fans fresh
random mixtures out to the children that dial it — each child behind a
bounded drop-oldest queue (see :mod:`repro.net.streams`).

Robustness model, mirroring §3/§5 on a real event loop:

* an upstream connection that drops or falls silent for
  ``silence_timeout`` raises an
  :class:`~repro.protocol.events.UpstreamDown` event; the engine
  decides whether that deserves a ``ComplaintMsg`` (once per silence
  episode) and how long the redial should back off;
* a ``SetParent`` push from the server (repair, uniform-insert splice,
  or graceful leave upstream) re-clips the thread through the engine's
  ``Clip`` effect: the old upstream task is cancelled and a new one
  dials the new parent — the live Lemma 1 repair;
* losing the *server* stops membership repair but not the data plane:
  established peer connections keep streaming (the §6 observation that
  swarms outlive the server).
"""

from __future__ import annotations

import asyncio
import logging
from typing import Callable, Optional

import numpy as np

from ..coding.generation import GenerationParams
from ..coding.packet import CodedPacket
from ..coding.recoder import Recoder
from ..core.matrix import SERVER
from ..dataplane import (
    ChildAttached,
    ChildDetached,
    EmitToChildren,
    IdlePoll,
    MarkComplete,
    PacketArrived,
    RelayEngine,
    RequestIdle,
    resolve_policy,
)
from ..obs import (
    DataplaneInstruments,
    FlightRecorder,
    PeerEngineInstruments,
    Registry,
    bind_fields,
    bind_sender_totals,
    snapshot_obj,
)
from ..protocol import (
    Backoff,
    Clip,
    CloseChildren,
    ComplaintMsg,
    JoinGrant,
    JoinRequest,
    KeepAlive,
    LeaveRequest,
    MessageReceived,
    PeerEngine,
    ReconnectBackoff,
    Send,
    ServerLost,
    StopThread,
    UpstreamDown,
)
from .control import DataHello, PeerLocator, SessionInfo
from .framing import (
    CrcMismatchError,
    FramingError,
    encode_mixture_frames,
    read_message,
    send_control,
    write_control_nowait,
)
from .streams import PacketSender, SenderStats
from .transport import AsyncioTransport, ByteStreamWriter, Listener, Transport

__all__ = ["PeerNode", "PeerStats", "ReconnectBackoff"]


class PeerStats:
    """Counters the loopback harness folds into its RunReport.

    The data-plane counters (``received``/``innovative``/``forwarded``/
    ``idle_emits``) are read-through views over the peer's
    :class:`~repro.dataplane.RelayEngine` — the engine's bookkeeping is
    the one authoritative copy since the dataplane unification (they
    read 0 until the join grant creates the engine).  The transport
    counters stay plain driver-owned fields.
    """

    def __init__(self) -> None:
        self._dataplane: Optional[RelayEngine] = None
        self.reconnects = 0
        self.complaints = 0
        self.keepalives_seen = 0
        self.crc_failures = 0

    @property
    def received(self) -> int:
        return self._dataplane.received if self._dataplane else 0

    @property
    def innovative(self) -> int:
        return self._dataplane.innovative if self._dataplane else 0

    @property
    def forwarded(self) -> int:
        return self._dataplane.forwarded if self._dataplane else 0

    @property
    def idle_emits(self) -> int:
        return self._dataplane.idle_emits if self._dataplane else 0

    def __repr__(self) -> str:  # noqa: D105
        return (
            f"PeerStats(received={self.received}, "
            f"innovative={self.innovative}, forwarded={self.forwarded}, "
            f"reconnects={self.reconnects}, complaints={self.complaints}, "
            f"keepalives_seen={self.keepalives_seen}, "
            f"crc_failures={self.crc_failures})"
        )


class PeerNode:
    """One live peer of the curtain-rod overlay.

    Args:
        server_host, server_port: The coordination server.
        host: Address to listen on for child data connections.
        seed: Seeds this peer's coding randomness.
        queue_limit: Bound of each child's outbound queue.
        keepalive_interval: Idle keep-alive period toward children.
        silence_timeout: Upstream silence treated as a dead thread.
        reconnect_base, reconnect_max: Exponential backoff bounds for
            upstream redials.
        on_complete: Callback invoked once, when every generation
            decodes.
        transport: Network + clock seam (real asyncio TCP by default;
            the chaos harness injects a virtual network).
        batched: Use the batched data plane (one recode gemm per
            fan-out, encode-once frames, coalesced flushes).  Off
            reproduces the scalar per-packet path — RNG-stream and
            wire-byte identical, kept for A/B throughput measurement.
        forward_policy: ``"eager"`` (default) recodes toward every
            child on *every* upstream arrival — the paper's constant
            per-thread flow, which is fine on rate-limited real links
            but multiplies per hop on an infinitely fast virtual
            network.  ``"innovative"`` fans out only when the arrival
            raised our rank, bounding total forwards per node at
            ``rank x children`` — the swarm harness's scale mode.
        seed_burst: Packets recoded toward a child immediately when it
            attaches (default 1).  Swarm runs set it to the generation
            size so a repaired child recovers from the burst instead of
            waiting on upstream innovation.
    """

    def __init__(
        self,
        server_host: str,
        server_port: int,
        *,
        host: str = "127.0.0.1",
        seed: int = 0,
        queue_limit: int = 32,
        keepalive_interval: float = 0.25,
        silence_timeout: float = 1.0,
        reconnect_base: float = 0.05,
        reconnect_max: float = 2.0,
        on_complete: Optional[Callable[["PeerNode"], None]] = None,
        transport: Optional[Transport] = None,
        batched: bool = True,
        forward_policy: str = "eager",
        seed_burst: int = 1,
    ) -> None:
        resolve_policy(forward_policy)  # fail fast on a bad spelling
        if seed_burst < 0:
            raise ValueError("seed_burst must be >= 0")
        self.transport: Transport = (
            transport if transport is not None else AsyncioTransport()
        )
        self.clock = self.transport.clock
        self.server_host = server_host
        self.server_port = server_port
        self.host = host
        self.port = 0
        self.engine = PeerEngine(
            None,
            silence_timeout=silence_timeout,
            reconnect_base=reconnect_base,
            reconnect_max=reconnect_max,
        )
        self.queue_limit = queue_limit
        self.keepalive_interval = keepalive_interval
        self.silence_timeout = silence_timeout
        self.reconnect_base = reconnect_base
        self.reconnect_max = reconnect_max
        self.on_complete = on_complete
        self.batched = batched
        self.forward_policy = forward_policy
        self.seed_burst = seed_burst
        self.stats = PeerStats()
        self.completed = False
        self.recoder: Optional[Recoder] = None
        #: The sans-IO data-plane core (created with the recoder once
        #: the join grant fixes the coding geometry).
        self.dataplane: Optional[RelayEngine] = None
        self.session: Optional[SessionInfo] = None
        self._rng = np.random.default_rng(seed)
        #: node id -> (host, port), learned from PeerLocator pushes
        self._addresses: dict[int, tuple[str, int]] = {}
        #: (child id, column) -> outbound pump
        self._children: dict[tuple[int, int], PacketSender] = {}
        #: One entry per child connection ever served (stats outlive pumps).
        self.sender_stats: list[SenderStats] = []
        self._thread_tasks: dict[int, asyncio.Task] = {}
        self._listener: Optional[Listener] = None
        self._control_writer: Optional[ByteStreamWriter] = None
        self._control_task: Optional[asyncio.Task] = None
        self._running = False
        self.log = logging.getLogger("repro.net.peer")
        #: Per-node telemetry; renamed to ``peer:<node_id>`` once the
        #: grant assigns us an id.  Everything is snapshot-on-read.
        self.registry = Registry("peer")
        PeerEngineInstruments(self.registry).attach(self.engine, self.registry)
        self.engine.flight = FlightRecorder()
        bind_fields(
            self.registry, self.stats,
            ("received", "innovative", "forwarded", "reconnects",
             "complaints", "keepalives_seen", "crc_failures"),
            "net", "live PeerStats counter",
        )
        bind_sender_totals(self.registry, lambda: self.sender_stats)
        self.registry.gauge(
            "net.rank", "degrees of freedom collected", fn=lambda: self.rank,
        )
        self.registry.gauge(
            "net.needed", "degrees of freedom for a full decode",
            fn=lambda: self.needed,
        )
        self.registry.gauge(
            "net.children", "attached child pumps",
            fn=lambda: len(self._children),
        )

    def snapshot(self) -> dict:
        """This node's registries as a versioned snapshot object."""
        return snapshot_obj(self.registry)

    @property
    def node_id(self) -> Optional[int]:
        """Server-assigned id (known once the grant arrives)."""
        return self.engine.node_id

    @property
    def parents(self) -> dict[int, int]:
        """column -> upstream node id (SERVER for the chain top)."""
        return self.engine.parents

    @property
    def server_lost(self) -> bool:
        """The control connection died: no more membership repair."""
        return self.engine.server_lost

    # ------------------------------------------------------------------
    # Lifecycle

    async def start(self) -> None:
        """Listen, join through the server, and clip every thread."""
        self._listener = await self.transport.start_server(
            self._handle_child, self.host, 0
        )
        self.port = self._listener.address[1]
        self._running = True
        reader, writer = await self.transport.connect(
            self.server_host, self.server_port
        )
        self._control_writer = writer
        await send_control(writer, JoinRequest(reply_to=self.port))
        grant = await self._await_grant(reader)
        self.engine.node_id = grant.node_id
        self.log = logging.getLogger(f"repro.net.peer.{grant.node_id}")
        self.registry.name = f"peer:{grant.node_id}"
        self.log.info(
            "joined as node %d with threads %s",
            grant.node_id, [column for column, _ in grant.assignments],
        )
        self.recoder = Recoder(
            GenerationParams(self.session.generation_size,
                             self.session.payload_size),
            self.session.generation_count,
            self._rng,
            node_id=grant.node_id,
        )
        self.dataplane = RelayEngine(
            self.recoder,
            policy=self.forward_policy,
            batched=self.batched,
            seed_burst=self.seed_burst,
        )
        self.stats._dataplane = self.dataplane
        DataplaneInstruments(self.registry).attach(
            self.dataplane, self.registry
        )
        # A child that dialed before the grant arrived (possible only
        # under exotic orderings) is attached now so the fan-out list
        # matches the live pumps.
        for key in list(self._children):
            self._pump_dataplane(self.dataplane.handle(
                ChildAttached(key, column=key[1])
            ))
        self._control_task = asyncio.ensure_future(self._control_loop(reader))
        self._dispatch_control(grant)

    async def _await_grant(self, reader) -> JoinGrant:
        """Consume the admission sequence: SessionInfo, locators, grant."""
        while True:
            message = await read_message(reader)
            if message is None:
                raise ConnectionError("server closed during admission")
            if isinstance(message, SessionInfo):
                self.session = message
            elif isinstance(message, PeerLocator):
                self._addresses[message.node_id] = (message.host, message.port)
            elif isinstance(message, JoinGrant):
                if self.session is None:
                    raise FramingError("grant arrived before session info")
                return message

    async def leave(self) -> None:
        """Graceful good-bye, then tear everything down."""
        if self._control_writer is not None and not self.server_lost:
            try:
                await send_control(
                    self._control_writer,
                    LeaveRequest(node_id=self.node_id),
                )
            except (ConnectionError, OSError):
                pass
        await self.close()

    async def close(self) -> None:
        """Stop all tasks and close all transports (no good-bye)."""
        self._running = False
        pending = list(self._thread_tasks.values())
        if self._control_task is not None:
            pending.append(self._control_task)
        for task in pending:
            task.cancel()
        self._thread_tasks.clear()
        for sender in list(self._children.values()):
            sender.close()
        self._children.clear()
        if self._control_writer is not None:
            self._control_writer.close()
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    def kill(self) -> None:
        """Abrupt, silent death — the failure the repair protocol exists
        for.  Closes every transport without a good-bye or any awaiting."""
        self._running = False
        for task in list(self._thread_tasks.values()):
            task.cancel()
        self._thread_tasks.clear()
        if self._control_task is not None:
            self._control_task.cancel()
        for sender in list(self._children.values()):
            sender.close()
        self._children.clear()
        if self._control_writer is not None:
            self._control_writer.close()
        if self._listener is not None:
            self._listener.close()

    # ------------------------------------------------------------------
    # Introspection

    @property
    def rank(self) -> int:
        """Degrees of freedom collected so far."""
        return self.recoder.decoder.total_rank if self.recoder else 0

    @property
    def needed(self) -> int:
        """Degrees of freedom required for a full decode."""
        return self.recoder.decoder.total_dof if self.recoder else 0

    def recovered_content(self) -> bytes:
        """The decoded bytes; requires completeness."""
        if self.recoder is None or not self.recoder.decoder.is_complete:
            raise RuntimeError("content not fully decoded yet")
        return self.recoder.decoder.recover(self.session.content_length)

    # ------------------------------------------------------------------
    # Control plane: pump the engine

    async def _control_loop(self, reader) -> None:
        try:
            while self._running:
                message = await read_message(reader)
                if message is None:
                    break
                self._dispatch_control(message)
        except (FramingError, ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            return
        # The server is gone.  Keep the data plane alive (§6): existing
        # upstream connections and children continue, but there is no
        # more membership repair.
        self.log.info("server lost; data plane continues without repair")
        self.engine.handle(ServerLost())

    def _dispatch_control(self, message: object) -> None:
        if isinstance(message, PeerLocator):
            self._addresses[message.node_id] = (message.host, message.port)
            return
        self._perform_all(self.engine.handle(MessageReceived(message)))

    def _perform_all(self, effects) -> None:
        """Carry out the engine's control effects (everything except
        ``Backoff``, which only the thread loops await)."""
        for effect in effects:
            if isinstance(effect, Send):
                self._write_control(effect.message)
            elif isinstance(effect, Clip):
                self._restart_thread(effect.column)
            elif isinstance(effect, StopThread):
                task = self._thread_tasks.pop(effect.column, None)
                if task is not None:
                    task.cancel()
            elif isinstance(effect, CloseChildren):
                for (child, column), sender in list(self._children.items()):
                    if column == effect.column:
                        sender.close()

    def _write_control(self, message: object) -> None:
        if self._control_writer is None:
            return
        if isinstance(message, ComplaintMsg):
            self.stats.complaints += 1
            self.log.info(
                "complaining about node %d on column %d",
                message.suspect, message.column,
            )
        try:
            write_control_nowait(self._control_writer, message)
        except (ConnectionError, OSError):
            pass

    # ------------------------------------------------------------------
    # Upstream data plane (we are the child)

    def _restart_thread(self, column: int) -> None:
        """(Re)start the upstream pump for one thread."""
        old = self._thread_tasks.pop(column, None)
        if old is not None:
            old.cancel()
        if not self._running or column not in self.parents:
            return
        self.log.debug(
            "column %d: clipping to parent %d", column, self.parents[column],
        )
        self._thread_tasks[column] = asyncio.ensure_future(
            self._thread_loop(column)
        )

    async def _thread_loop(self, column: int) -> None:
        """Dial the current parent of ``column`` and consume its stream,
        reconnecting with exponential backoff for as long as we hold the
        thread.  The engine judges every session end: a healthy one
        redials immediately, a silent one complains (at most once per
        episode) and backs off."""
        while self._running and column in self.parents:
            parent = self.parents[column]
            address = (
                (self.server_host, self.server_port) if parent == SERVER
                else self._addresses.get(parent)
            )
            saw_traffic = False
            if address is not None:
                saw_traffic = await self._consume_upstream(
                    column, parent, address)
            delay: Optional[float] = None
            for effect in self.engine.handle(UpstreamDown(
                column=column, parent=parent, saw_traffic=saw_traffic,
            )):
                if isinstance(effect, Send):
                    self._write_control(effect.message)
                elif isinstance(effect, Backoff):
                    delay = effect.delay
            if delay is None:
                continue  # healthy session: redial immediately
            self.log.debug(
                "column %d: redialing parent %d after %.3fs backoff",
                column, self.parents.get(column, parent), delay,
            )
            try:
                await self.clock.sleep(delay)
            except asyncio.CancelledError:
                return
            self.stats.reconnects += 1

    async def _consume_upstream(
        self, column: int, parent: int, address: tuple[str, int]
    ) -> bool:
        """One connection lifetime; True if any packet arrived (healthy
        session — reset the backoff)."""
        writer: Optional[ByteStreamWriter] = None
        saw_traffic = False
        try:
            reader, writer = await self.transport.connect(*address)
            await send_control(writer, DataHello(
                node_id=self.node_id, column=column))
            while self._running and self.parents.get(column) == parent:
                message = await self.clock.wait_for(
                    read_message(reader), timeout=self.silence_timeout
                )
                if message is None:
                    break  # upstream closed
                if isinstance(message, CodedPacket):
                    saw_traffic = True
                    self._on_packet(message)
                elif isinstance(message, KeepAlive):
                    saw_traffic = True
                    self.stats.keepalives_seen += 1
        except CrcMismatchError:
            self.stats.crc_failures += 1
            self.log.info(
                "column %d: corrupted frame from parent %d (CRC mismatch), "
                "dropping connection", column, parent,
            )
        except (asyncio.TimeoutError, ConnectionError, OSError, FramingError):
            pass
        except asyncio.CancelledError:
            raise
        finally:
            if writer is not None:
                writer.close()
        return saw_traffic

    # ------------------------------------------------------------------
    # Downstream data plane (we are the parent)

    async def _handle_child(
        self, reader, writer: ByteStreamWriter
    ) -> None:
        try:
            hello = await read_message(reader)
        except FramingError:
            writer.close()
            return
        if not isinstance(hello, DataHello) or not self._running:
            writer.close()
            return
        key = (hello.node_id, hello.column)
        old = self._children.pop(key, None)
        if old is not None:
            old.close()
        # Tell the engine first: it owns the fan-out order, decides the
        # seed-burst (its emit() draws land exactly where the inline
        # burst's did — pump construction draws no RNG), and asks for
        # idle data-fills via RequestIdle under gated policies.
        effects = (
            self.dataplane.handle(ChildAttached(key, column=hello.column))
            if self.dataplane is not None else []
        )
        wants_idle = any(isinstance(e, RequestIdle) for e in effects)
        sender = PacketSender(
            writer, column=hello.column, sender_id=self.node_id or -1,
            limit=self.queue_limit, keepalive_interval=self.keepalive_interval,
            clock=self.clock, coalesce=self.batched,
            idle_packet=(
                (lambda k=key: self._emit_idle(k)) if wants_idle else None
            ),
            logger=self.log,
        )
        self.sender_stats.append(sender.stats)
        self._children[key] = sender
        # The per-neighbour-queue observable: one gauge per (child,
        # column), reading whatever pump currently serves that key.
        self.registry.gauge(
            f"net.queue_depth.child{hello.node_id}.c{hello.column}",
            "frames queued toward this child",
            fn=lambda k=key: (
                pump.queue_depth
                if (pump := self._children.get(k)) is not None else 0
            ),
        )
        self._pump_dataplane(effects)
        try:
            await sender.run()
        finally:
            if self._children.get(key) is sender:
                del self._children[key]
                if self.dataplane is not None:
                    self.dataplane.handle(ChildDetached(key))

    def _emit_idle(self, key: tuple[int, int]) -> Optional[CodedPacket]:
        """A fresh mixture for an idle child link (swarm scale mode)."""
        if self.dataplane is None:
            return None
        for effect in self.dataplane.handle(IdlePoll(key)):
            if isinstance(effect, EmitToChildren):
                return effect.packets[0]
        return None

    def _on_packet(self, packet: CodedPacket) -> None:
        """Ingest one upstream packet and fan fresh mixtures downstream."""
        self._pump_dataplane(self.dataplane.handle(PacketArrived(packet)))

    def _pump_dataplane(self, effects) -> None:
        """Carry out the data-plane engine's effects on the live pumps."""
        for effect in effects:
            if isinstance(effect, EmitToChildren):
                if effect.rows is not None:
                    # The batched fused path: mixtures go straight from
                    # the recode gemm output to wire frames — no
                    # intermediate packet objects, each frame serialised
                    # exactly once.
                    frames = encode_mixture_frames(
                        effect.rows, self.recoder.params.generation_size,
                        origin=self.recoder.node_id,
                    )
                    for key, frame in zip(effect.children, frames):
                        sender = self._children.get(key)
                        if sender is not None:
                            sender.enqueue_frame(frame)
                else:
                    for key, mixture in zip(effect.children, effect.packets):
                        sender = self._children.get(key)
                        if sender is not None:
                            sender.enqueue(mixture)
            elif isinstance(effect, MarkComplete):
                self.completed = True
                if self.on_complete is not None:
                    self.on_complete(self)
            # Ingested and RequestIdle are bookkeeping: the former is
            # trace/observability-only, the latter is honoured at pump
            # construction in _handle_child.

    #: All child pumps currently attached (diagnostics / harness).
    @property
    def child_senders(self) -> list[PacketSender]:
        return list(self._children.values())
