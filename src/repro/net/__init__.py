"""repro.net — the curtain-rod protocol over real sockets.

Where :mod:`repro.protocol_sim` runs the §3 protocols inside a
discrete-event engine and :mod:`repro.sim` runs the data plane in
synchronous slots, this package runs both on asyncio TCP: a
:class:`ServerNode` owning the thread matrix and the source stream, and
:class:`PeerNode` instances that clip threads, recode with the shared
:mod:`repro.coding` machinery, and forward through bounded per-child
queues.  :func:`run_loopback` deploys a whole session in one process
and reports through the simulators' :class:`~repro.sim.report.RunReport`.

All I/O goes through the :class:`Transport` seam — real asyncio streams
by default, or the in-memory fault-injecting network of
:mod:`repro.net.testing` (kept out of this package's import graph; pull
it in explicitly).
"""

from .control import (
    ControlFormatError,
    DataHello,
    MESSAGE_TYPES,
    PeerLocator,
    SessionInfo,
    decode_control,
    encode_control,
)
from .framing import (
    FrameBuffer,
    FramingError,
    KIND_CONTROL,
    KIND_DATA,
    encode_frame,
    read_message,
    send_control,
    send_packet,
)
from .loopback import LoopbackConfig, LoopbackResult, run_loopback, run_loopback_sync
from .peer import PeerNode, PeerStats, ReconnectBackoff
from .server import ServerNode, ServerStats
from .streams import PacketSender, SenderStats
from .transport import (
    AsyncioClock,
    AsyncioTransport,
    Clock,
    Listener,
    Transport,
)

__all__ = [
    "AsyncioClock",
    "AsyncioTransport",
    "Clock",
    "ControlFormatError",
    "DataHello",
    "FrameBuffer",
    "FramingError",
    "KIND_CONTROL",
    "KIND_DATA",
    "Listener",
    "LoopbackConfig",
    "LoopbackResult",
    "MESSAGE_TYPES",
    "PacketSender",
    "PeerLocator",
    "PeerNode",
    "PeerStats",
    "ReconnectBackoff",
    "SenderStats",
    "ServerNode",
    "ServerStats",
    "SessionInfo",
    "Transport",
    "decode_control",
    "encode_control",
    "encode_frame",
    "read_message",
    "run_loopback",
    "run_loopback_sync",
    "send_control",
    "send_packet",
]
