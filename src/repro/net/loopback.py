"""In-process loopback deployments: a server plus N peers on 127.0.0.1.

This is the live-transport analogue of the simulators' ``run_until_
complete``: spin up a :class:`~repro.net.server.ServerNode` and ``N``
:class:`~repro.net.peer.PeerNode` instances over real TCP sockets, wait
for every peer to decode every generation (or a deadline), and fold the
outcome into the same :class:`~repro.sim.report.RunReport` the slotted
simulators produce — so every existing report/metrics consumer works on
live runs unchanged.  "Slots" map to server emission rounds: a node's
``completed_at`` is the round counter at the moment it decoded.

The harness can also kill one peer mid-run (no good-bye, sockets torn
down) to exercise the live repair path: the server splices the victim
out, its children re-clip, and the broadcast still converges.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..coding.generation import GenerationParams
from ..obs import snapshot_obj
from ..obs.http import MetricsServer
from ..sim.links import LinkStats
from ..sim.report import NodeReport, RunReport, TransportReport
from .peer import PeerNode
from .server import ServerNode

__all__ = ["LoopbackConfig", "LoopbackResult", "run_loopback", "run_loopback_sync"]


@dataclass
class LoopbackConfig:
    """Geometry and pacing of a loopback deployment."""

    peers: int = 8
    k: int = 4
    d: int = 2
    generation_size: int = 8
    payload_size: int = 64
    generations: int = 2
    seed: int = 0
    insert_mode: str = "append"
    send_interval: float = 0.004
    queue_limit: int = 32
    keepalive_interval: float = 0.1
    silence_timeout: float = 0.4
    probe_timeout: float = 0.2
    deadline: float = 30.0
    #: Batched data plane (emit_batch + encode-once + coalesced flush);
    #: False runs the scalar per-packet path for A/B measurement.
    batched: bool = True
    #: Index of a peer to kill mid-run (None = no failure injection).
    kill_peer: Optional[int] = None
    #: Fraction of mean decode progress at which the kill fires.
    kill_at_progress: float = 0.25
    #: Serve live snapshots over HTTP during the run (None = off;
    #: 0 = ephemeral port, reported via ``LoopbackResult.metrics_port``).
    metrics_port: Optional[int] = None

    def __post_init__(self) -> None:
        if self.peers < 1:
            raise ValueError("need at least one peer")
        if not 1 <= self.d <= self.k:
            raise ValueError(f"need 1 <= d <= k, got d={self.d}, k={self.k}")
        if self.kill_peer is not None and not 0 <= self.kill_peer < self.peers:
            raise ValueError("kill_peer out of range")

    @property
    def content_size(self) -> int:
        """Exactly ``generations`` full generations of content."""
        return self.generations * self.generation_size * self.payload_size


@dataclass
class LoopbackResult:
    """A live run's report plus transport-level diagnostics."""

    report: RunReport
    wall_clock: float
    converged: bool
    repairs: int
    reconnects: int
    complaints: int
    drops: int
    killed: Optional[int] = None
    peer_stats: list = field(default_factory=list)
    #: Final merged obs snapshot of every node (``repro.obs`` schema).
    snapshot: Optional[dict] = None
    #: Port the metrics endpoint actually bound (None = not enabled).
    metrics_port: Optional[int] = None


async def run_loopback(config: LoopbackConfig) -> LoopbackResult:
    """Run one loopback deployment to convergence (or the deadline)."""
    rng = np.random.default_rng(config.seed)
    content = rng.integers(
        0, 256, size=config.content_size, dtype=np.uint8
    ).tobytes()
    params = GenerationParams(config.generation_size, config.payload_size)
    server = ServerNode(
        content, params,
        k=config.k, d=config.d, seed=config.seed,
        insert_mode=config.insert_mode,
        send_interval=config.send_interval,
        queue_limit=config.queue_limit,
        keepalive_interval=config.keepalive_interval,
        probe_timeout=config.probe_timeout,
        batched=config.batched,
    )
    await server.start()

    completion_rounds: dict[int, int] = {}
    peers: list[PeerNode] = []
    all_done = asyncio.Event()
    loop = asyncio.get_running_loop()
    started = loop.time()
    killed: Optional[int] = None

    def survivors() -> list[PeerNode]:
        return [p for i, p in enumerate(peers) if i != killed]

    def _check_done() -> None:
        if peers and all(p.completed for p in survivors()):
            all_done.set()

    def _record_completion(peer: PeerNode) -> None:
        completion_rounds[peer.node_id] = server.stats.rounds
        _check_done()

    def mean_progress() -> float:
        return float(np.mean([
            p.rank / p.needed if p.needed else 0.0 for p in survivors()
        ]))

    async def _kill_watcher() -> None:
        # The kill trigger is a progress threshold, which has no event to
        # wait on — this poll is the only sampling loop left; completion
        # itself is event-driven via on_complete.
        nonlocal killed
        while killed is None:
            if mean_progress() >= config.kill_at_progress:
                killed = config.kill_peer
                peers[killed].kill()
                _check_done()
                return
            await asyncio.sleep(config.send_interval)

    def merged_snapshot() -> dict:
        registries = {server.registry.name: server.registry}
        registries.update({p.registry.name: p.registry for p in peers})
        return snapshot_obj(registries)

    metrics: Optional[MetricsServer] = None
    if config.metrics_port is not None:
        metrics = await MetricsServer(
            merged_snapshot, port=config.metrics_port
        ).start()

    watcher: Optional[asyncio.Task] = None
    try:
        for i in range(config.peers):
            peer = PeerNode(
                "127.0.0.1", server.port,
                seed=config.seed + 1 + i,
                queue_limit=config.queue_limit,
                keepalive_interval=config.keepalive_interval,
                silence_timeout=config.silence_timeout,
                on_complete=_record_completion,
                batched=config.batched,
            )
            await peer.start()
            peers.append(peer)
        if config.kill_peer is not None:
            watcher = asyncio.ensure_future(_kill_watcher())
        _check_done()  # a peer may have completed during staggered startup
        try:
            await asyncio.wait_for(all_done.wait(), timeout=config.deadline)
        except asyncio.TimeoutError:
            pass
        wall_clock = loop.time() - started
    finally:
        if watcher is not None:
            watcher.cancel()
        # Snapshot before teardown so callback gauges read live state.
        final_snapshot = merged_snapshot()
        if metrics is not None:
            await metrics.stop()
        # Server first: the run is over, so peer disconnections below
        # must not register as crashes needing repair.
        await server.stop()
        for i, peer in enumerate(peers):
            if i != killed:
                await peer.close()

    # ------------------------------------------------------------------
    # Fold into the simulators' report shape.

    nodes = []
    link_stats = LinkStats()
    all_sender_stats = list(server.sender_stats)
    for index, peer in enumerate(peers):
        decoded_ok: Optional[bool] = None
        if peer.completed and index != killed:
            decoded_ok = peer.recovered_content() == content
        nodes.append(NodeReport(
            node_id=peer.node_id if peer.node_id is not None else -index - 1,
            rank=peer.rank,
            needed=peer.needed,
            completed_at=completion_rounds.get(peer.node_id),
            received=peer.stats.received,
            innovative=peer.stats.innovative,
            decoded_ok=decoded_ok,
        ))
        all_sender_stats.extend(peer.sender_stats)
    # A delivery attempt is a packet enqueued toward a downstream node;
    # it succeeds unless evicted by backpressure (written-but-unread
    # frames at teardown are counted as delivered — the queue is the
    # only intentional loss point).
    drops = sum(s.dropped for s in all_sender_stats)
    link_stats.record_batch(
        sum(s.enqueued for s in all_sender_stats),
        sum(s.enqueued - s.dropped for s in all_sender_stats),
    )
    transport = TransportReport(
        frames_sent=sum(s.sent for s in all_sender_stats),
        bytes_sent=sum(s.bytes_sent for s in all_sender_stats),
        flushes=sum(s.flushes for s in all_sender_stats),
        keepalives=sum(s.keepalives for s in all_sender_stats),
    )
    report = RunReport(
        slots=server.stats.rounds,
        nodes=nodes,
        link_stats=link_stats,
        server_packets=server.stats.packets_sent,
        transport=transport,
    )
    alive = [n for i, n in enumerate(nodes) if i != killed]
    return LoopbackResult(
        report=report,
        wall_clock=wall_clock,
        converged=all(n.completed_at is not None for n in alive),
        repairs=server.stats.repairs,
        reconnects=sum(p.stats.reconnects for p in peers),
        complaints=sum(p.stats.complaints for p in peers),
        drops=drops,
        killed=killed,
        peer_stats=[p.stats for p in peers],
        snapshot=final_snapshot,
        metrics_port=metrics.port if metrics is not None else None,
    )


def run_loopback_sync(config: LoopbackConfig) -> LoopbackResult:
    """Blocking wrapper around :func:`run_loopback`."""
    return asyncio.run(run_loopback(config))
