"""Binary serialisation for the control plane.

The live transport reuses the §3 protocol datagrams defined in
:mod:`repro.protocol.messages` — the same dataclasses the sans-IO
engines consume and the discrete-event simulation exchanges in
memory — and gives each a
compact big-endian wire form: one type byte followed by struct-packed
fields.  The nominal ``size`` attributes on the dataclasses are
simulation bookkeeping and are not serialised; decoding restores the
defaults.

Three messages exist only on the live transport:

* :class:`SessionInfo` — server -> joiner: the coding geometry and
  content length, so a peer can build a matching decoder before the
  first data frame arrives.
* :class:`PeerLocator` — server -> peer: the transport address of
  another peer (the matrix stores ids; sockets need host:port).  Sent
  ahead of any grant or redirect that names a peer.
* :class:`DataHello` — child -> parent, first frame on a data
  connection: "I am node ``node_id``; stream me column ``column``".
  Downstream nodes dial upstream, which makes reconnect-after-repair a
  pure child-side retry loop.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..protocol.messages import (
    AttachChild,
    ComplaintMsg,
    CongestionDrop,
    CongestionRestore,
    DetachChild,
    JoinGrant,
    JoinRequest,
    KeepAlive,
    LeaveRequest,
    Probe,
    ProbeAck,
    SetParent,
    ThreadRemoved,
)

__all__ = [
    "ControlFormatError",
    "DataHello",
    "MESSAGE_TYPES",
    "PeerLocator",
    "SessionInfo",
    "decode_control",
    "encode_control",
]


class ControlFormatError(ValueError):
    """Raised when a control frame cannot be parsed."""


# ----------------------------------------------------------------------
# Net-only messages


@dataclass(frozen=True)
class SessionInfo:
    """Server -> joiner: session coding geometry (precedes the grant)."""

    generation_size: int
    payload_size: int
    generation_count: int
    content_length: int
    k: int
    d: int


@dataclass(frozen=True)
class PeerLocator:
    """Server -> peer: where ``node_id`` listens for data connections."""

    node_id: int
    host: str
    port: int


@dataclass(frozen=True)
class DataHello:
    """Child -> parent: first frame of a data connection."""

    node_id: int
    column: int


# ----------------------------------------------------------------------
# Codec registry: message class -> (type byte, struct, field names)

_SIMPLE: dict[type, tuple[int, struct.Struct, tuple[str, ...]]] = {
    JoinRequest: (0x01, struct.Struct(">i"), ("reply_to",)),
    LeaveRequest: (0x02, struct.Struct(">i"), ("node_id",)),
    AttachChild: (0x03, struct.Struct(">Hi"), ("column", "child")),
    DetachChild: (0x04, struct.Struct(">H"), ("column",)),
    SetParent: (0x05, struct.Struct(">Hi"), ("column", "parent")),
    KeepAlive: (0x06, struct.Struct(">Hi"), ("column", "sender")),
    CongestionDrop: (0x07, struct.Struct(">i"), ("node_id",)),
    CongestionRestore: (0x08, struct.Struct(">i"), ("node_id",)),
    ThreadRemoved: (0x09, struct.Struct(">H"), ("column",)),
    ComplaintMsg: (0x0A, struct.Struct(">iHi"), ("reporter", "column", "suspect")),
    Probe: (0x0B, struct.Struct(">Q"), ("nonce",)),
    ProbeAck: (0x0C, struct.Struct(">iQ"), ("node_id", "nonce")),
    SessionInfo: (
        0x10,
        struct.Struct(">HHIQHH"),
        ("generation_size", "payload_size", "generation_count",
         "content_length", "k", "d"),
    ),
    DataHello: (0x12, struct.Struct(">iH"), ("node_id", "column")),
}

_TYPE_JOIN_GRANT = 0x0D
_TYPE_PEER_LOCATOR = 0x11

#: Every message class the codec round-trips (property-based tests
#: enumerate this to fuzz arbitrary control streams).
MESSAGE_TYPES: tuple[type, ...] = (*_SIMPLE, JoinGrant, PeerLocator)

_BY_TYPE = {type_byte: (cls, fmt, fields)
            for cls, (type_byte, fmt, fields) in _SIMPLE.items()}

_GRANT_HEADER = struct.Struct(">iH")
_GRANT_PAIR = struct.Struct(">Hi")
_LOCATOR_HEADER = struct.Struct(">iHB")


def encode_control(message: object) -> bytes:
    """Serialise a control message: one type byte + packed fields."""
    entry = _SIMPLE.get(type(message))
    if entry is not None:
        type_byte, fmt, fields = entry
        values = tuple(getattr(message, name) for name in fields)
        return bytes([type_byte]) + fmt.pack(*values)
    if isinstance(message, JoinGrant):
        body = _GRANT_HEADER.pack(message.node_id, len(message.assignments))
        for column, parent in message.assignments:
            body += _GRANT_PAIR.pack(column, parent)
        return bytes([_TYPE_JOIN_GRANT]) + body
    if isinstance(message, PeerLocator):
        host = message.host.encode("utf-8")
        if len(host) > 255:
            raise ControlFormatError(f"host too long: {len(host)} bytes")
        return (bytes([_TYPE_PEER_LOCATOR])
                + _LOCATOR_HEADER.pack(message.node_id, message.port, len(host))
                + host)
    raise ControlFormatError(f"unknown control message {type(message).__name__}")


def decode_control(data: bytes) -> object:
    """Parse a control frame back into its message dataclass."""
    if not data:
        raise ControlFormatError("empty control frame")
    type_byte, body = data[0], data[1:]
    entry = _BY_TYPE.get(type_byte)
    try:
        if entry is not None:
            cls, fmt, fields = entry
            if len(body) != fmt.size:
                raise ControlFormatError(
                    f"{cls.__name__}: expected {fmt.size} body bytes, got {len(body)}"
                )
            return cls(**dict(zip(fields, fmt.unpack(body))))
        if type_byte == _TYPE_JOIN_GRANT:
            node_id, count = _GRANT_HEADER.unpack_from(body)
            expected = _GRANT_HEADER.size + count * _GRANT_PAIR.size
            if len(body) != expected:
                raise ControlFormatError(
                    f"JoinGrant: expected {expected} body bytes, got {len(body)}"
                )
            assignments = tuple(
                _GRANT_PAIR.unpack_from(body, _GRANT_HEADER.size + i * _GRANT_PAIR.size)
                for i in range(count)
            )
            return JoinGrant(node_id=node_id, assignments=assignments)
        if type_byte == _TYPE_PEER_LOCATOR:
            node_id, port, host_len = _LOCATOR_HEADER.unpack_from(body)
            host = body[_LOCATOR_HEADER.size:]
            if len(host) != host_len:
                raise ControlFormatError(
                    f"PeerLocator: expected {host_len} host bytes, got {len(host)}"
                )
            return PeerLocator(node_id=node_id, host=host.decode("utf-8"), port=port)
    except struct.error as exc:
        raise ControlFormatError(str(exc)) from exc
    except UnicodeDecodeError as exc:
        raise ControlFormatError(str(exc)) from exc
    raise ControlFormatError(f"unknown control type 0x{type_byte:02x}")
