"""The transport seam: how nodes reach the network and the clock.

Everything in :mod:`repro.net` that touches a socket or the passage of
time does so through three small protocols defined here:

* :class:`Clock` — ``time``/``sleep``/``wait_for`` plus ``advance`` (a
  driver-side hook that real clocks implement as a plain sleep);
* :class:`Listener` — the accepting side of a bound endpoint;
* :class:`Transport` — dial + bind, returning stream reader/writer
  pairs shaped like asyncio's.

:class:`ServerNode`, :class:`PeerNode` and the outbound pumps in
:mod:`repro.net.streams` are written against these protocols only.  The
default implementations (:class:`AsyncioClock`, :class:`AsyncioTransport`)
delegate straight to asyncio TCP, so production behaviour is unchanged;
:mod:`repro.net.testing` swaps in a virtual clock and an in-memory
network to run the same protocol code deterministically, with scripted
per-link faults, in milliseconds.

The reader/writer duck types (:class:`ByteStreamReader`,
:class:`ByteStreamWriter`) capture the *only* stream surface the
protocol code relies on — ``readexactly`` on the way in; ``write``,
``drain``, ``close`` and ``get_extra_info`` on the way out — so an
in-memory pipe can stand in for a socket without monkeypatching.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Optional, Protocol, runtime_checkable

__all__ = [
    "AsyncioClock",
    "AsyncioListener",
    "AsyncioTransport",
    "ByteStreamReader",
    "ByteStreamWriter",
    "Clock",
    "ConnectionHandler",
    "Listener",
    "Transport",
]


@runtime_checkable
class ByteStreamReader(Protocol):
    """The read surface the framing layer needs from a connection."""

    async def readexactly(self, n: int) -> bytes:
        """Return exactly ``n`` bytes; raise
        :class:`asyncio.IncompleteReadError` (with ``partial`` set) on
        EOF before then."""
        ...


@runtime_checkable
class ByteStreamWriter(Protocol):
    """The write surface the protocol nodes need from a connection."""

    def write(self, data: bytes) -> None: ...

    async def drain(self) -> None: ...

    def close(self) -> None: ...

    def get_extra_info(self, name: str, default: Any = None) -> Any: ...


#: Signature of a connection handler passed to ``Transport.start_server``.
ConnectionHandler = Callable[
    [ByteStreamReader, ByteStreamWriter], Awaitable[None]
]


class Clock(Protocol):
    """Time as seen by the protocol code.

    ``time``/``sleep``/``wait_for`` are used *inside* the nodes (silence
    timeouts, keep-alive idles, reconnect backoff, emission pacing);
    ``advance`` is the *driver-side* hook harnesses use to let a span of
    time pass — a real clock simply sleeps, a virtual clock fires every
    timer due in the span and settles the event loop between firings.
    """

    def time(self) -> float: ...

    async def sleep(self, delay: float) -> None: ...

    async def wait_for(self, awaitable: Awaitable, timeout: Optional[float]) -> Any:
        """Like :func:`asyncio.wait_for`, against this clock's timeline."""
        ...

    async def advance(self, delay: float) -> None: ...


class Listener(Protocol):
    """A bound, accepting endpoint."""

    @property
    def address(self) -> tuple[str, int]: ...

    def close(self) -> None: ...

    async def wait_closed(self) -> None: ...

    async def serve_forever(self) -> None: ...


class Transport(Protocol):
    """How a node dials out and binds in.  Carries its own clock so one
    injection point decides both the network and the timeline."""

    clock: Clock

    async def connect(
        self, host: str, port: int
    ) -> tuple[ByteStreamReader, ByteStreamWriter]: ...

    async def start_server(
        self, handler: ConnectionHandler, host: str, port: int
    ) -> Listener: ...


# ----------------------------------------------------------------------
# Default implementations: real asyncio TCP, real time.


class AsyncioClock:
    """Wall-clock time on the running event loop."""

    def time(self) -> float:
        return asyncio.get_event_loop().time()

    async def sleep(self, delay: float) -> None:
        await asyncio.sleep(delay)

    async def wait_for(self, awaitable: Awaitable, timeout: Optional[float]) -> Any:
        return await asyncio.wait_for(awaitable, timeout)

    async def advance(self, delay: float) -> None:
        await asyncio.sleep(delay)


class AsyncioListener:
    """Thin adapter giving :class:`asyncio.AbstractServer` the
    :class:`Listener` surface."""

    def __init__(self, server: asyncio.AbstractServer) -> None:
        self._server = server

    @property
    def address(self) -> tuple[str, int]:
        return self._server.sockets[0].getsockname()[:2]

    def close(self) -> None:
        self._server.close()

    async def wait_closed(self) -> None:
        await self._server.wait_closed()

    async def serve_forever(self) -> None:
        await self._server.serve_forever()


class AsyncioTransport:
    """The production transport: asyncio TCP streams."""

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock: Clock = clock if clock is not None else AsyncioClock()

    async def connect(
        self, host: str, port: int
    ) -> tuple[ByteStreamReader, ByteStreamWriter]:
        return await asyncio.open_connection(host, port)

    async def start_server(
        self, handler: ConnectionHandler, host: str, port: int
    ) -> Listener:
        server = await asyncio.start_server(handler, host, port)
        return AsyncioListener(server)
