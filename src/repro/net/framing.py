"""Length-prefixed TCP framing for the live transport.

Every frame on a connection is::

    uint32  body length (big-endian)
    uint8   kind (0 = data, 1 = control)
    bytes   body

Data bodies are exactly the coded-packet wire frames of
:mod:`repro.coding.wire` (version 2, CRC32-trailed), so a captured
stream is a concatenation of the same frames the simulators serialise.
Control bodies are :mod:`repro.net.control` messages.

Two consumption styles are provided:

* :class:`FrameBuffer` — a sans-IO accumulator (``feed`` bytes, iterate
  complete messages) used by tests and by any custom reader;
* ``read_message`` / ``send_packet`` / ``send_control`` — asyncio
  stream helpers used by the server and peer nodes.
"""

from __future__ import annotations

import asyncio
import struct
from typing import Iterator, Optional, Union

import numpy as np

from ..coding.buffers import DEFAULT_POOL, BufferPool
from ..coding.packet import CodedPacket
from ..coding.wire import (
    CrcError,
    WireFormatError,
    _uniform_geometry,
    decode_packet,
    decode_packet_from,
    encode_mixture_rows,
    encode_packet_into,
    encode_packets_rows,
    frame_size,
)
from .control import ControlFormatError, decode_control, encode_control
from .transport import ByteStreamReader, ByteStreamWriter

__all__ = [
    "CrcMismatchError",
    "FrameBuffer",
    "FramingError",
    "KIND_CONTROL",
    "KIND_DATA",
    "MAX_FRAME_BYTES",
    "encode_data_frame",
    "encode_data_frames",
    "encode_frame",
    "encode_mixture_frames",
    "read_message",
    "send_control",
    "send_packet",
]

#: Frame kinds.
KIND_DATA = 0
KIND_CONTROL = 1

#: Upper bound on a frame body; anything larger is treated as stream
#: corruption (the largest legitimate data frame is a little over
#: 128 KiB: 64 KiB of coefficients + 64 KiB of payload + header).
MAX_FRAME_BYTES = 1 << 20

_PREFIX = struct.Struct(">IB")

#: A parsed message off the stream.
Message = Union[CodedPacket, object]


class FramingError(ConnectionError):
    """Raised when a stream violates the framing contract."""


class CrcMismatchError(FramingError):
    """A data frame failed its CRC32 check: the connection still dies
    (the stream can no longer be trusted), but receivers count these
    corruption events separately from structural framing errors."""


def _body_error(exc: Exception) -> FramingError:
    cls = CrcMismatchError if isinstance(exc, CrcError) else FramingError
    return cls(f"bad frame body: {exc}")


def encode_frame(kind: int, body: bytes) -> bytes:
    """Prefix a body with its length and kind."""
    if kind not in (KIND_DATA, KIND_CONTROL):
        raise FramingError(f"unknown frame kind {kind}")
    if len(body) > MAX_FRAME_BYTES:
        raise FramingError(f"frame body too large: {len(body)} bytes")
    return _PREFIX.pack(len(body), kind) + body


def encode_data_frame(packet: CodedPacket) -> bytes:
    """Serialise one packet as a length-prefixed data frame.

    Prefix and wire body are packed into a single buffer — no
    intermediate body ``bytes`` and no prefix-plus-body concatenation.
    """
    body = frame_size(packet.generation_size, packet.payload_size)
    if body > MAX_FRAME_BYTES:
        raise FramingError(f"frame body too large: {body} bytes")
    buf = bytearray(_PREFIX.size + body)
    _PREFIX.pack_into(buf, 0, body, KIND_DATA)
    encode_packet_into(packet, buf, _PREFIX.size)
    return bytes(buf)


def encode_data_frames(
    packets: list[CodedPacket],
    pool: Optional[BufferPool] = None,
) -> list[bytes]:
    """Serialise a batch of packets as length-prefixed data frames.

    This is the encode-once fan-out primitive: every frame is written
    back-to-back into one pooled scratch buffer, then sliced out as an
    immutable ``bytes`` object that any number of sender queues may
    share — a packet fanned out to many children is serialised exactly
    once.  The scratch buffer is released back to ``pool`` (the wire
    layer's default pool if none is given) before returning.
    """
    if not packets:
        return []
    scratch_pool = pool if pool is not None else DEFAULT_POOL
    geometry = _uniform_geometry(packets) if len(packets) > 1 else None
    if geometry is not None:
        # Uniform batch (every emit_batch product): broadcast the
        # constant prefix across all frames and hand the bodies to the
        # wire layer's vectorised row encoder in one call.
        body = frame_size(*geometry)
        if body > MAX_FRAME_BYTES:
            raise FramingError(f"frame body too large: {body} bytes")
        m = len(packets)
        length = _PREFIX.size + body
        buf = scratch_pool.lease(m * length)
        try:
            rows = np.frombuffer(buf, dtype=np.uint8,
                                 count=m * length).reshape(m, length)
            rows[:, : _PREFIX.size] = np.frombuffer(
                _PREFIX.pack(body, KIND_DATA), dtype=np.uint8
            )
            encode_packets_rows(packets, rows[:, _PREFIX.size:])
            blob = bytes(memoryview(buf)[: m * length])
        finally:
            scratch_pool.release(buf)
        return [blob[i * length:(i + 1) * length] for i in range(m)]
    sizes = [frame_size(p.generation_size, p.payload_size) for p in packets]
    for body in sizes:
        if body > MAX_FRAME_BYTES:
            raise FramingError(f"frame body too large: {body} bytes")
    total = sum(sizes) + _PREFIX.size * len(sizes)
    buf = scratch_pool.lease(total)
    try:
        view = memoryview(buf)
        frames: list[bytes] = []
        offset = 0
        for packet, body in zip(packets, sizes):
            _PREFIX.pack_into(buf, offset, body, KIND_DATA)
            end = encode_packet_into(packet, buf, offset + _PREFIX.size)
            frames.append(bytes(view[offset:end]))
            offset = end
        return frames
    finally:
        scratch_pool.release(buf)


def encode_mixture_frames(
    groups: list,
    generation_size: int,
    origin: int,
    pool: Optional[BufferPool] = None,
) -> list[bytes]:
    """Encode recoder mixture groups straight to length-prefixed frames.

    ``groups`` is :meth:`repro.coding.recoder.Recoder.emit_rows` output —
    ``[(generation, rows, positions), ...]`` with every ``rows`` matrix
    sharing one ``(g, n)`` geometry (they mix one content object).  The
    mixtures never become :class:`~repro.coding.packet.CodedPacket`
    objects: each group's matrix is framed with one vectorised
    :func:`~repro.coding.wire.encode_mixture_rows` call into a single
    pooled buffer, and the frames are returned as immutable ``bytes``
    in draw order (``positions`` restores the interleaving).  This is
    the fused emit-to-wire path the batched peers use.
    """
    total = sum(len(positions) for _, _, positions in groups)
    if total == 0:
        return []
    width = groups[0][1].shape[1]
    body = frame_size(generation_size, width - generation_size)
    if body > MAX_FRAME_BYTES:
        raise FramingError(f"frame body too large: {body} bytes")
    length = _PREFIX.size + body
    scratch_pool = pool if pool is not None else DEFAULT_POOL
    buf = scratch_pool.lease(total * length)
    try:
        arr = np.frombuffer(buf, dtype=np.uint8,
                            count=total * length).reshape(total, length)
        arr[:, : _PREFIX.size] = np.frombuffer(
            _PREFIX.pack(body, KIND_DATA), dtype=np.uint8
        )
        slot = 0
        slots: list[tuple[int, list[int]]] = []
        for generation, rows, positions in groups:
            count = len(positions)
            encode_mixture_rows(
                arr[slot:slot + count, _PREFIX.size:], rows,
                generation, origin, generation_size,
            )
            slots.append((slot, positions))
            slot += count
        blob = bytes(memoryview(buf)[: total * length])
    finally:
        scratch_pool.release(buf)
    frames: list[bytes] = [b""] * total
    for slot, positions in slots:
        for j, position in enumerate(positions):
            start = (slot + j) * length
            frames[position] = blob[start:start + length]
    return frames


def _parse_body(kind: int, body: bytes) -> Message:
    try:
        if kind == KIND_DATA:
            return decode_packet(body)
        if kind == KIND_CONTROL:
            return decode_control(body)
    except (WireFormatError, ControlFormatError) as exc:
        raise _body_error(exc) from exc
    raise FramingError(f"unknown frame kind {kind}")


class FrameBuffer:
    """Sans-IO reassembly of frames from an arbitrary byte stream.

    Feed it whatever chunks the socket hands you; iterate the complete
    messages.  Raises :class:`FramingError` on protocol violations, at
    which point the connection should be dropped.

    Consumption is cursor-based: parsing a message advances an offset
    into the accumulated buffer instead of rebuilding the tail, so
    draining F buffered frames costs O(bytes) rather than the
    O(bytes x F) of the old ``del buffer[:total]`` per message; the
    consumed prefix is compacted away on the next ``feed``.  Data
    bodies are decoded in place through the wire layer's offset cursor
    (:func:`repro.coding.wire.decode_packet_from`) — no per-frame body
    slice.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._cursor = 0

    def feed(self, data: bytes) -> None:
        """Append raw bytes received from the stream."""
        if self._cursor:
            del self._buffer[: self._cursor]
            self._cursor = 0
        self._buffer.extend(data)

    def pending(self) -> int:
        """Bytes buffered but not yet consumed."""
        return len(self._buffer) - self._cursor

    def messages(self) -> Iterator[Message]:
        """Yield every complete message currently buffered."""
        while True:
            message = self.next_message()
            if message is None:
                return
            yield message

    def next_message(self) -> Optional[Message]:
        """Pop one complete message, or None if more bytes are needed."""
        buf, cursor = self._buffer, self._cursor
        if len(buf) - cursor < _PREFIX.size:
            return None
        length, kind = _PREFIX.unpack_from(buf, cursor)
        if length > MAX_FRAME_BYTES:
            raise FramingError(f"frame body too large: {length} bytes")
        total = _PREFIX.size + length
        if len(buf) - cursor < total:
            return None
        body_start = cursor + _PREFIX.size
        self._cursor = cursor + total  # the frame is consumed even if bad
        if kind == KIND_DATA:
            try:
                packet, end = decode_packet_from(buf, body_start)
            except WireFormatError as exc:
                raise _body_error(exc) from exc
            if end != cursor + total:
                raise FramingError(
                    f"bad frame body: framed {length} bytes, wire frame "
                    f"spans {end - body_start}"
                )
            return packet
        if kind == KIND_CONTROL:
            try:
                return decode_control(bytes(buf[body_start:cursor + total]))
            except ControlFormatError as exc:
                raise FramingError(f"bad frame body: {exc}") from exc
        raise FramingError(f"unknown frame kind {kind}")


# ----------------------------------------------------------------------
# asyncio stream helpers


async def read_message(reader: ByteStreamReader) -> Optional[Message]:
    """Read one message off a stream; None on clean EOF at a boundary.

    Accepts anything with ``readexactly`` semantics — a real
    :class:`asyncio.StreamReader` or an in-memory virtual pipe.  Raises
    :class:`FramingError` on truncation mid-frame or a malformed body.
    """
    try:
        prefix = await reader.readexactly(_PREFIX.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise FramingError("stream truncated inside a frame prefix") from exc
    length, kind = _PREFIX.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise FramingError(f"frame body too large: {length} bytes")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FramingError("stream truncated inside a frame body") from exc
    return _parse_body(kind, body)


def write_packet_nowait(writer: ByteStreamWriter, packet: CodedPacket) -> None:
    """Queue a data frame on the writer without draining."""
    writer.write(encode_data_frame(packet))


def write_control_nowait(writer: ByteStreamWriter, message: object) -> None:
    """Queue a control frame on the writer without draining."""
    writer.write(encode_frame(KIND_CONTROL, encode_control(message)))


async def send_packet(writer: ByteStreamWriter, packet: CodedPacket) -> None:
    """Write one data frame and drain."""
    write_packet_nowait(writer, packet)
    await writer.drain()


async def send_control(writer: ByteStreamWriter, message: object) -> None:
    """Write one control frame and drain."""
    write_control_nowait(writer, message)
    await writer.drain()
