"""Length-prefixed TCP framing for the live transport.

Every frame on a connection is::

    uint32  body length (big-endian)
    uint8   kind (0 = data, 1 = control)
    bytes   body

Data bodies are exactly the coded-packet wire frames of
:mod:`repro.coding.wire` (version 2, CRC32-trailed), so a captured
stream is a concatenation of the same frames the simulators serialise.
Control bodies are :mod:`repro.net.control` messages.

Two consumption styles are provided:

* :class:`FrameBuffer` — a sans-IO accumulator (``feed`` bytes, iterate
  complete messages) used by tests and by any custom reader;
* ``read_message`` / ``send_packet`` / ``send_control`` — asyncio
  stream helpers used by the server and peer nodes.
"""

from __future__ import annotations

import asyncio
import struct
from typing import Iterator, Optional, Union

from ..coding.packet import CodedPacket
from ..coding.wire import WireFormatError, decode_packet, encode_packet
from .control import ControlFormatError, decode_control, encode_control
from .transport import ByteStreamReader, ByteStreamWriter

__all__ = [
    "FrameBuffer",
    "FramingError",
    "KIND_CONTROL",
    "KIND_DATA",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "read_message",
    "send_control",
    "send_packet",
]

#: Frame kinds.
KIND_DATA = 0
KIND_CONTROL = 1

#: Upper bound on a frame body; anything larger is treated as stream
#: corruption (the largest legitimate data frame is a little over
#: 128 KiB: 64 KiB of coefficients + 64 KiB of payload + header).
MAX_FRAME_BYTES = 1 << 20

_PREFIX = struct.Struct(">IB")

#: A parsed message off the stream.
Message = Union[CodedPacket, object]


class FramingError(ConnectionError):
    """Raised when a stream violates the framing contract."""


def encode_frame(kind: int, body: bytes) -> bytes:
    """Prefix a body with its length and kind."""
    if kind not in (KIND_DATA, KIND_CONTROL):
        raise FramingError(f"unknown frame kind {kind}")
    if len(body) > MAX_FRAME_BYTES:
        raise FramingError(f"frame body too large: {len(body)} bytes")
    return _PREFIX.pack(len(body), kind) + body


def _parse_body(kind: int, body: bytes) -> Message:
    try:
        if kind == KIND_DATA:
            return decode_packet(body)
        if kind == KIND_CONTROL:
            return decode_control(body)
    except (WireFormatError, ControlFormatError) as exc:
        raise FramingError(f"bad frame body: {exc}") from exc
    raise FramingError(f"unknown frame kind {kind}")


class FrameBuffer:
    """Sans-IO reassembly of frames from an arbitrary byte stream.

    Feed it whatever chunks the socket hands you; iterate the complete
    messages.  Raises :class:`FramingError` on protocol violations, at
    which point the connection should be dropped.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        """Append raw bytes received from the stream."""
        self._buffer.extend(data)

    def pending(self) -> int:
        """Bytes buffered but not yet consumed."""
        return len(self._buffer)

    def messages(self) -> Iterator[Message]:
        """Yield every complete message currently buffered."""
        while True:
            message = self.next_message()
            if message is None:
                return
            yield message

    def next_message(self) -> Optional[Message]:
        """Pop one complete message, or None if more bytes are needed."""
        if len(self._buffer) < _PREFIX.size:
            return None
        length, kind = _PREFIX.unpack_from(self._buffer)
        if length > MAX_FRAME_BYTES:
            raise FramingError(f"frame body too large: {length} bytes")
        total = _PREFIX.size + length
        if len(self._buffer) < total:
            return None
        body = bytes(self._buffer[_PREFIX.size:total])
        del self._buffer[:total]
        return _parse_body(kind, body)


# ----------------------------------------------------------------------
# asyncio stream helpers


async def read_message(reader: ByteStreamReader) -> Optional[Message]:
    """Read one message off a stream; None on clean EOF at a boundary.

    Accepts anything with ``readexactly`` semantics — a real
    :class:`asyncio.StreamReader` or an in-memory virtual pipe.  Raises
    :class:`FramingError` on truncation mid-frame or a malformed body.
    """
    try:
        prefix = await reader.readexactly(_PREFIX.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise FramingError("stream truncated inside a frame prefix") from exc
    length, kind = _PREFIX.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise FramingError(f"frame body too large: {length} bytes")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FramingError("stream truncated inside a frame body") from exc
    return _parse_body(kind, body)


def write_packet_nowait(writer: ByteStreamWriter, packet: CodedPacket) -> None:
    """Queue a data frame on the writer without draining."""
    writer.write(encode_frame(KIND_DATA, encode_packet(packet)))


def write_control_nowait(writer: ByteStreamWriter, message: object) -> None:
    """Queue a control frame on the writer without draining."""
    writer.write(encode_frame(KIND_CONTROL, encode_control(message)))


async def send_packet(writer: ByteStreamWriter, packet: CodedPacket) -> None:
    """Write one data frame and drain."""
    write_packet_nowait(writer, packet)
    await writer.drain()


async def send_control(writer: ByteStreamWriter, message: object) -> None:
    """Write one control frame and drain."""
    write_control_nowait(writer, message)
    await writer.drain()
