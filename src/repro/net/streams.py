"""Per-connection outbound pumps with bounded queues.

Backpressure policy (the per-neighbour-queues design of
arXiv:1301.5107): every downstream connection owns a bounded FIFO of
coded packets.  When the consumer is slower than the producer the queue
fills and the *oldest* packet is dropped.  With RLNC this is safe by
construction — every enqueued packet is a fresh random mixture of the
sender's buffer, so any later packet carries at least as much
information as the one evicted; nothing is retransmitted and nothing is
tracked.

The pump also emits a :class:`~repro.protocol_sim.messages.KeepAlive`
control frame when the data flow pauses, so an idle-but-healthy thread
is distinguishable from a dead parent (the paper's silence-based
failure detection, run over real sockets).
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from ..coding.packet import CodedPacket
from ..protocol_sim.messages import KeepAlive
from .framing import write_control_nowait, write_packet_nowait
from .transport import AsyncioClock, ByteStreamWriter, Clock

__all__ = ["PacketSender", "SenderStats"]


@dataclass
class SenderStats:
    """Delivery accounting for one outbound pump."""

    enqueued: int = 0
    dropped: int = 0
    sent: int = 0
    keepalives: int = 0


class PacketSender:
    """Bounded drop-oldest pump feeding one downstream connection.

    Args:
        writer: The connection to the downstream node.
        column: Thread column this pump serves (stamped on keep-alives).
        sender_id: Our node id (stamped on keep-alives; -1 = server).
        limit: Queue bound; the oldest packet is evicted on overflow.
        keepalive_interval: Idle period after which a keep-alive frame
            is sent (None disables keep-alives).
        clock: Timeline the idle timer runs on (real time by default;
            the chaos harness injects a virtual clock).
    """

    def __init__(
        self,
        writer: ByteStreamWriter,
        *,
        column: int,
        sender_id: int,
        limit: int = 32,
        keepalive_interval: Optional[float] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        if limit < 1:
            raise ValueError("queue limit must be >= 1")
        self.column = column
        self.sender_id = sender_id
        self.stats = SenderStats()
        self._writer = writer
        self._limit = limit
        self._keepalive_interval = keepalive_interval
        self._clock = clock if clock is not None else AsyncioClock()
        self._queue: Deque[CodedPacket] = deque()
        self._wakeup = asyncio.Event()
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def enqueue(self, packet: CodedPacket) -> bool:
        """Queue a packet; evict the oldest when full.

        Returns True if the packet was queued without an eviction.
        """
        if self._closed:
            return False
        self.stats.enqueued += 1
        clean = True
        if len(self._queue) >= self._limit:
            self._queue.popleft()
            self.stats.dropped += 1
            clean = False
        self._queue.append(packet)
        self._wakeup.set()
        return clean

    def close(self) -> None:
        """Stop the pump; the run loop exits at its next wakeup."""
        self._closed = True
        self._wakeup.set()

    async def run(self) -> None:
        """Drain the queue onto the wire until closed or disconnected."""
        try:
            while not self._closed:
                if not self._queue:
                    if not await self._wait_for_work():
                        continue  # idle timeout: keep-alive sent
                if self._closed:
                    break
                while self._queue:
                    write_packet_nowait(self._writer, self._queue.popleft())
                    self.stats.sent += 1
                await self._writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            self._closed = True
            self._writer.close()

    async def _wait_for_work(self) -> bool:
        """Block until work arrives; False after an idle keep-alive."""
        self._wakeup.clear()
        if self._queue or self._closed:
            return True
        try:
            await self._clock.wait_for(
                self._wakeup.wait(), timeout=self._keepalive_interval
            )
            return True
        except asyncio.TimeoutError:
            write_control_nowait(
                self._writer,
                KeepAlive(column=self.column, sender=self.sender_id),
            )
            self.stats.keepalives += 1
            await self._writer.drain()
            return False
