"""Per-connection outbound pumps with bounded queues.

Backpressure policy (the per-neighbour-queues design of
arXiv:1301.5107): every downstream connection owns a bounded FIFO of
coded packets.  When the consumer is slower than the producer the queue
fills and the *oldest* packet is dropped.  With RLNC this is safe by
construction — every enqueued packet is a fresh random mixture of the
sender's buffer, so any later packet carries at least as much
information as the one evicted; nothing is retransmitted and nothing is
tracked.

The queue holds *pre-encoded* immutable frame bytes rather than packet
objects: a packet fanned out to several children is serialised once
(see :func:`repro.net.framing.encode_data_frames`) and the same bytes
object sits in every child's queue.  At each wakeup the pump coalesces
everything queued into a single ``writelines`` flush when the writer
supports it (a real :class:`asyncio.StreamWriter` does); writers
without ``writelines`` — the chaos harness's virtual transport, whose
loss/corruption injection is aligned to individual write calls — get
one ``write`` per frame, preserving per-frame delivery traces
bit-for-bit.

The pump also emits a :class:`~repro.protocol.messages.KeepAlive`
control frame when the data flow pauses, so an idle-but-healthy thread
is distinguishable from a dead parent (the paper's silence-based
failure detection, run over real sockets).
"""

from __future__ import annotations

import asyncio
import logging
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

from ..coding.packet import CodedPacket
from ..protocol.messages import KeepAlive
from .control import encode_control
from .framing import KIND_CONTROL, encode_data_frame, encode_frame
from .transport import AsyncioClock, ByteStreamWriter, Clock

__all__ = ["PacketSender", "SenderStats"]


@dataclass
class SenderStats:
    """Delivery accounting for one outbound pump.

    ``bytes_sent`` counts every byte written (data frames and
    keep-alives); ``flushes`` counts drain cycles, so ``sent /
    flushes`` is the observed frames-per-flush coalescing ratio.
    """

    enqueued: int = 0
    dropped: int = 0
    sent: int = 0
    keepalives: int = 0
    bytes_sent: int = 0
    flushes: int = 0


class PacketSender:
    """Bounded drop-oldest pump feeding one downstream connection.

    Args:
        writer: The connection to the downstream node.
        column: Thread column this pump serves (stamped on keep-alives).
        sender_id: Our node id (stamped on keep-alives; -1 = server).
        limit: Queue bound; the oldest packet is evicted on overflow.
        keepalive_interval: Idle period after which a keep-alive frame
            is sent (None disables keep-alives).
        clock: Timeline the idle timer runs on (real time by default;
            the chaos harness injects a virtual clock).
        coalesce: Flush the whole queue with one ``writelines`` call
            when the writer supports it.  Off, every frame is written
            individually — the pre-batching behaviour, kept for A/B
            throughput measurement.
        idle_packet: Optional source of a fresh coded packet to send in
            place of a bare keep-alive when the idle timer fires (the
            swarm harness's innovation-gated mode uses this so a child
            stuck one degree short of full rank still heals).  Returning
            None falls back to the normal keep-alive frame.
        logger: Destination for backpressure decisions (evictions are
            logged at DEBUG); None keeps the pump silent.
    """

    def __init__(
        self,
        writer: ByteStreamWriter,
        *,
        column: int,
        sender_id: int,
        limit: int = 32,
        keepalive_interval: Optional[float] = None,
        clock: Optional[Clock] = None,
        coalesce: bool = True,
        idle_packet: Optional[Callable[[], Optional[CodedPacket]]] = None,
        logger: Optional[logging.Logger] = None,
    ) -> None:
        if limit < 1:
            raise ValueError("queue limit must be >= 1")
        self.column = column
        self.sender_id = sender_id
        self.stats = SenderStats()
        self._writer = writer
        self._writelines = getattr(writer, "writelines", None) if coalesce else None
        self._limit = limit
        self._keepalive_interval = keepalive_interval
        self._idle_packet = idle_packet
        self._clock = clock if clock is not None else AsyncioClock()
        self._logger = logger
        # Cached once: the eviction path runs per enqueued frame, and
        # even a disabled logger.debug() call costs more than the
        # enqueue itself.  --log-level debug is set before pumps exist.
        self._log_drops = (
            logger is not None and logger.isEnabledFor(logging.DEBUG)
        )
        self._queue: Deque[bytes] = deque()
        self._wakeup = asyncio.Event()
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def queue_depth(self) -> int:
        """Frames queued and not yet flushed (the per-neighbour-queue
        observable; exporters bind gauges to this)."""
        return len(self._queue)

    def enqueue(self, packet: CodedPacket) -> bool:
        """Serialise and queue a packet; evict the oldest when full.

        Returns True if the packet was queued without an eviction.
        """
        if self._closed:
            return False
        return self.enqueue_frame(encode_data_frame(packet))

    def enqueue_frame(self, frame: bytes) -> bool:
        """Queue an already-encoded data frame; evict the oldest when full.

        The encode-once fan-out entry point: callers serialise a packet
        a single time and hand the same immutable bytes to every child's
        pump.  Returns True if the frame was queued without an eviction.
        """
        if self._closed:
            return False
        self.stats.enqueued += 1
        clean = True
        if len(self._queue) >= self._limit:
            self._queue.popleft()
            self.stats.dropped += 1
            clean = False
            if self._log_drops:
                self._logger.debug(
                    "column %d: queue full (%d), dropped oldest frame "
                    "(%d dropped total)",
                    self.column, self._limit, self.stats.dropped,
                )
        self._queue.append(frame)
        self._wakeup.set()
        return clean

    def close(self) -> None:
        """Stop the pump; the run loop exits at its next wakeup."""
        self._closed = True
        self._wakeup.set()

    async def run(self) -> None:
        """Drain the queue onto the wire until closed or disconnected."""
        try:
            while not self._closed:
                if not self._queue:
                    if not await self._wait_for_work():
                        continue  # idle timeout: keep-alive sent
                if self._closed:
                    break
                frames = list(self._queue)
                self._queue.clear()
                if self._writelines is not None:
                    self._writelines(frames)
                else:
                    for frame in frames:
                        self._writer.write(frame)
                self.stats.sent += len(frames)
                self.stats.bytes_sent += sum(len(f) for f in frames)
                self.stats.flushes += 1
                await self._writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            self._closed = True
            self._writer.close()

    async def _wait_for_work(self) -> bool:
        """Block until work arrives; False after an idle keep-alive."""
        self._wakeup.clear()
        if self._queue or self._closed:
            return True
        try:
            await self._clock.wait_for(
                self._wakeup.wait(), timeout=self._keepalive_interval
            )
            return True
        except asyncio.TimeoutError:
            packet = self._idle_packet() if self._idle_packet is not None else None
            if packet is not None:
                frame = encode_data_frame(packet)
                self.stats.sent += 1
            else:
                frame = encode_frame(
                    KIND_CONTROL,
                    encode_control(
                        KeepAlive(column=self.column, sender=self.sender_id)
                    ),
                )
                self.stats.keepalives += 1
            self._writer.write(frame)
            self.stats.bytes_sent += len(frame)
            self.stats.flushes += 1
            await self._writer.drain()
            return False
