"""Arrival-schedule generators for realistic workloads.

A schedule is a list of per-interval join counts; drivers feed it to the
overlay one repair interval at a time.  Three shapes cover the paper's
motivating scenarios: steady trickle (long-lived live channel), flash
crowd (a release event — the BitTorrent/Redhat-9 story of §3), and a
diurnal wave (a daily audience cycle).
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np


def steady_schedule(intervals: int, rate: float,
                    rng: np.random.Generator) -> list[int]:
    """Poisson(rate) joins per interval."""
    if intervals < 0 or rate < 0:
        raise ValueError("intervals and rate must be non-negative")
    return [int(x) for x in rng.poisson(rate, size=intervals)]


def flash_crowd_schedule(
    intervals: int,
    peak_rate: float,
    peak_at: int,
    width: float,
    rng: np.random.Generator,
    base_rate: float = 0.0,
) -> list[int]:
    """A Gaussian-shaped arrival spike over a small base rate.

    Models a content release: arrivals ramp up sharply around
    ``peak_at``, with spread ``width`` intervals.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    schedule = []
    for t in range(intervals):
        rate = base_rate + peak_rate * math.exp(-((t - peak_at) ** 2) / (2 * width**2))
        schedule.append(int(rng.poisson(rate)))
    return schedule


def diurnal_schedule(
    intervals: int,
    mean_rate: float,
    period: int,
    rng: np.random.Generator,
    swing: float = 0.8,
) -> list[int]:
    """A sinusoidal daily cycle: rate = mean·(1 + swing·sin(2πt/period))."""
    if period <= 0:
        raise ValueError("period must be positive")
    if not 0.0 <= swing <= 1.0:
        raise ValueError("swing must be in [0, 1]")
    schedule = []
    for t in range(intervals):
        rate = mean_rate * (1.0 + swing * math.sin(2 * math.pi * t / period))
        schedule.append(int(rng.poisson(max(0.0, rate))))
    return schedule


def total_joins(schedule: Iterable[int]) -> int:
    """Sum of a schedule (convenience for sizing assertions)."""
    return int(sum(schedule))
