"""Churn traces: record a membership history, save it, replay it.

A trace is an ordered list of membership events (join / leave / fail /
repair) with timestamps.  Traces make scenarios portable: record one
from any driver (the slotted churn, the Poisson engine, a hand-written
schedule), serialise it to JSON, and replay it bit-for-bit onto a fresh
overlay — including onto a *differently configured* overlay, which is
how like-for-like protocol comparisons are run.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional, Union

from ..core.overlay import OverlayNetwork

#: Recognised event kinds.
EVENT_KINDS = ("join", "leave", "fail", "repair")


@dataclass(frozen=True)
class TraceEvent:
    """One membership event.

    Attributes:
        time: Timestamp (any monotone clock; replay preserves order only).
        kind: One of ``join``, ``leave``, ``fail``, ``repair``.
        node_id: The affected node.  For joins this is the id the node
            received in the recorded run; replay maps it to the id the
            replaying overlay assigns (the mapping is returned).
        degree: Thread count for joins (0 = the overlay default).
    """

    time: float
    kind: str
    node_id: int
    degree: int = 0

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}")


@dataclass
class ChurnTrace:
    """An ordered churn history."""

    events: list[TraceEvent]

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # Serialisation

    def to_json(self) -> str:
        """Serialise to a JSON document."""
        return json.dumps(
            {"version": 1, "events": [asdict(e) for e in self.events]},
            indent=None,
        )

    @classmethod
    def from_json(cls, text: str) -> "ChurnTrace":
        """Parse a JSON document produced by :meth:`to_json`."""
        document = json.loads(text)
        if document.get("version") != 1:
            raise ValueError(f"unsupported trace version {document.get('version')}")
        events = [TraceEvent(**item) for item in document["events"]]
        return cls(events=events)

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ChurnTrace":
        return cls.from_json(Path(path).read_text())

    # ------------------------------------------------------------------

    def counts(self) -> dict[str, int]:
        """Event counts by kind."""
        out = {kind: 0 for kind in EVENT_KINDS}
        for event in self.events:
            out[event.kind] += 1
        return out


class TraceRecorder:
    """Record membership events against a live overlay.

    Wrap the overlay's verbs with this recorder's; it forwards and logs.
    """

    def __init__(self, net: OverlayNetwork, clock=None) -> None:
        self.net = net
        self._clock = clock or (lambda: float(len(self._events)))
        self._events: list[TraceEvent] = []

    def join(self, d: Optional[int] = None) -> int:
        grant = self.net.join(d)
        self._events.append(TraceEvent(
            time=self._clock(), kind="join", node_id=grant.node_id,
            degree=d or 0,
        ))
        return grant.node_id

    def leave(self, node_id: int) -> None:
        self.net.leave(node_id)
        self._events.append(TraceEvent(
            time=self._clock(), kind="leave", node_id=node_id,
        ))

    def fail(self, node_id: int) -> None:
        self.net.fail(node_id)
        self._events.append(TraceEvent(
            time=self._clock(), kind="fail", node_id=node_id,
        ))

    def repair(self, node_id: int) -> None:
        self.net.repair(node_id)
        self._events.append(TraceEvent(
            time=self._clock(), kind="repair", node_id=node_id,
        ))

    def trace(self) -> ChurnTrace:
        """The history recorded so far."""
        return ChurnTrace(events=list(self._events))


def replay(trace: ChurnTrace, net: OverlayNetwork) -> dict[int, int]:
    """Apply a trace to a fresh overlay.

    Returns the id mapping ``recorded node id -> replayed node id``.
    Raises if the trace references a node before its join or after its
    departure (corrupted trace).
    """
    mapping: dict[int, int] = {}
    for event in trace.events:
        if event.kind == "join":
            grant = net.join(event.degree or None)
            mapping[event.node_id] = grant.node_id
        else:
            replayed = mapping.get(event.node_id)
            if replayed is None:
                raise ValueError(
                    f"trace references node {event.node_id} before its join"
                )
            if event.kind == "leave":
                net.leave(replayed)
            elif event.kind == "fail":
                net.fail(replayed)
            elif event.kind == "repair":
                net.repair(replayed)
    return mapping
