"""Named end-to-end scenarios: presets over :mod:`repro.sim.session`.

These encode the paper's motivating use cases with sensible laptop-scale
parameters; examples and benches start from them and tweak.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..sim.session import SessionConfig


def live_streaming(seed: Optional[int] = None, **overrides) -> SessionConfig:
    """Synchronous broadcast of a live event to a stable audience.

    Small generations (low latency), steady small churn, light ergodic
    loss — the "television event" scenario of §1.
    """
    config = SessionConfig(
        k=24,
        d=4,
        population=80,
        content_size=24_576,
        generation_size=12,
        payload_size=256,
        loss_rate=0.01,
        fail_probability=0.005,
        repair_interval=8,
        join_rate=0,
        leave_probability=0.0,
        max_slots=2_500,
        seed=seed,
    )
    return replace(config, **overrides)


def file_download(seed: Optional[int] = None, **overrides) -> SessionConfig:
    """Asynchronous file distribution (the BitTorrent-style scenario).

    Larger generations (throughput over latency), nodes join during the
    run, graceful leaves allowed.
    """
    config = SessionConfig(
        k=20,
        d=2,
        population=60,
        content_size=32_768,
        generation_size=16,
        payload_size=512,
        loss_rate=0.0,
        fail_probability=0.004,
        repair_interval=10,
        join_rate=2,
        leave_probability=0.002,
        max_slots=4_000,
        seed=seed,
    )
    return replace(config, **overrides)


def flash_crowd(seed: Optional[int] = None, **overrides) -> SessionConfig:
    """A release-day rush: small initial swarm, aggressive join rate."""
    config = SessionConfig(
        k=24,
        d=3,
        population=20,
        content_size=16_384,
        generation_size=16,
        payload_size=256,
        loss_rate=0.005,
        fail_probability=0.002,
        repair_interval=5,
        join_rate=6,
        leave_probability=0.0,
        max_slots=3_000,
        seed=seed,
    )
    return replace(config, **overrides)
