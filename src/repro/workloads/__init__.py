"""Workload generation: arrival schedules and named scenarios."""

from .generator import (
    diurnal_schedule,
    flash_crowd_schedule,
    steady_schedule,
    total_joins,
)
from .scenarios import file_download, flash_crowd, live_streaming
from .trace import ChurnTrace, TraceEvent, TraceRecorder, replay

__all__ = [
    "ChurnTrace",
    "TraceEvent",
    "TraceRecorder",
    "replay",
    "diurnal_schedule",
    "file_download",
    "flash_crowd",
    "flash_crowd_schedule",
    "live_streaming",
    "steady_schedule",
    "total_joins",
]
