"""In-network recoder: the peer side of the RLNC data plane.

Per Chou–Wu–Jain, every intermediate node buffers the packets it has
received for each generation and, whenever it must transmit, emits a fresh
uniformly random linear combination of its buffer.  Crucially the node
never needs to decode; the coefficient headers compose under mixing.

The buffer here is the decoder's RREF basis (rather than raw packets), so
buffer size is bounded by the generation size and non-innovative arrivals
cost nothing.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..gf.tables import FIELD_SIZE
from .decoder import Decoder, GenerationDecoder
from .generation import GenerationParams
from .packet import CodedPacket


class Recoder:
    """Buffer-and-mix node logic for all generations of one content object.

    Attributes:
        node_id: Identifier stamped on emitted packets' ``origin`` field.
        decoder: The underlying rank-tracking buffer; exposed so peers that
            also want the content (every peer, in broadcast) reuse it.
    """

    def __init__(
        self,
        params: GenerationParams,
        generation_count: int,
        rng: np.random.Generator,
        node_id: int = -1,
    ) -> None:
        self.params = params
        self.decoder = Decoder(params, generation_count)
        self._rng = rng
        self.node_id = node_id

    def receive(self, packet: CodedPacket) -> bool:
        """Ingest a packet into the buffer; True iff it was innovative."""
        return self.decoder.push(packet)

    def rank(self, generation: int) -> int:
        """Current rank held for ``generation``."""
        return self.decoder.generations[generation].rank

    def _pick_generation(self) -> Optional[int]:
        """Choose the generation to serve.

        Half the time: the lowest-index generation *we* have not finished
        (approximates the sequential delivery a streaming receiver
        wants).  The other half: uniform over every generation we hold
        any rank in — including completed ones.  The uniform component is
        essential, not cosmetic: a node that only ever serves its own
        earliest-incomplete generation stops serving a generation the
        moment it completes it, which can permanently starve neighbours
        who still need it (observed as a rank plateau in cyclic and
        server-detached topologies).
        """
        ranks = [g.rank for g in self.decoder.generations]
        nonzero = [g for g, r in enumerate(ranks) if r > 0]
        if not nonzero:
            return None
        incomplete = [
            g for g in nonzero if not self.decoder.generations[g].is_complete
        ]
        if incomplete and self._rng.random() < 0.5:
            return incomplete[0]
        return int(self._rng.choice(nonzero))

    def emit(self, generation: Optional[int] = None) -> Optional[CodedPacket]:
        """Emit a random mixture from the buffer, or None if it is empty."""
        if generation is None:
            generation = self._pick_generation()
            if generation is None:
                return None
        packet = self.decoder.generations[generation].random_combination(self._rng)
        if packet is None:
            return None
        packet.origin = self.node_id
        return packet

    def emit_rows(self, count: int,
                  generation: Optional[int] = None,
                  ) -> list[tuple[int, np.ndarray, list[int]]]:
        """Draw up to ``count`` mixtures as raw matrices, one per generation.

        Returns ``[(generation, rows, positions), ...]`` where ``rows``
        is the :meth:`~repro.coding.decoder.GenerationDecoder.mixture_rows`
        matrix for that generation's draws and ``positions[j]`` is the
        emit index (0..count) at which row ``j`` was drawn — callers
        that fan mixtures out in draw order use it to restore the
        interleaving.  RNG-stream identical to ``count`` sequential
        :meth:`emit` calls: every generation pick and every scalar
        vector is drawn per emit in the same order; only the GF mixing
        is batched (one gemm per distinct generation).  Stops early when
        the buffer is empty, like a caller breaking on ``emit() is
        None``.
        """
        if count <= 0:
            return []
        if generation is not None:
            # Explicit-generation fast path: the rank cannot change between
            # draws, so the scalar rows land straight in one (count, rank)
            # matrix — no per-draw tuples and no group-by.
            decoder = self.decoder.generations[generation]
            if decoder.rank == 0:
                return []
            rank = decoder.rank
            draw = self._rng.integers
            scalars = np.empty((count, rank), dtype=np.uint8)
            for i in range(count):
                scalars[i] = draw(1, FIELD_SIZE, size=rank, dtype=np.uint8)
            return [(generation, decoder.mixture_rows(scalars),
                     list(range(count)))]
        draws: list[tuple[int, np.ndarray]] = []
        for _ in range(count):
            g = self._pick_generation()
            if g is None:
                break
            decoder = self.decoder.generations[g]
            if decoder.rank == 0:
                break  # sequential emit would return None here too
            scalars = self._rng.integers(1, FIELD_SIZE, size=decoder.rank,
                                         dtype=np.uint8)
            draws.append((g, scalars))
        by_generation: dict[int, list[int]] = {}
        for index, (g, _) in enumerate(draws):
            by_generation.setdefault(g, []).append(index)
        return [
            (g, self.decoder.generations[g].mixture_rows(
                np.stack([draws[i][1] for i in indices])), indices)
            for g, indices in by_generation.items()
        ]

    def emit_batch(self, count: int,
                   generation: Optional[int] = None) -> list[CodedPacket]:
        """Emit up to ``count`` fresh mixtures with one gemm per generation.

        RNG-stream identical to ``count`` sequential :meth:`emit` calls:
        every generation pick and every scalar vector is drawn in the
        same interleaved order, so under a shared seed the packets are
        bit-for-bit the same — only the GF mixing is batched (via
        :meth:`emit_rows`).  The common case returns ``count`` packets,
        in draw order.
        """
        groups = self.emit_rows(count, generation)
        size = self.params.generation_size
        origin = self.node_id
        trusted = CodedPacket.trusted
        if len(groups) == 1:
            # One generation touched (always true for an explicit
            # generation): positions are 0..m-1 in order, so the packets
            # build straight off the matrix rows.  Splitting the matrix
            # once keeps the per-packet indexing to two integer lookups.
            g, rows, _ = groups[0]
            coeffs = rows[:, :size]
            payloads = rows[:, size:]
            return [
                trusted(g, coeffs[j], payloads[j], origin=origin)
                for j in range(rows.shape[0])
            ]
        total = sum(len(positions) for _, _, positions in groups)
        packets: list[Optional[CodedPacket]] = [None] * total
        for g, rows, positions in groups:
            for j, position in enumerate(positions):
                packets[position] = trusted(
                    g, rows[j, :size], rows[j, size:], origin=origin,
                )
        return [p for p in packets if p is not None]

    def emit_trivial(self, generation: Optional[int] = None) -> Optional[CodedPacket]:
        """Emit a *non-mixed* packet: replay one buffered basis row.

        This models the §7 *entropy destruction attack* — a malicious or
        lazy node that forwards trivial combinations instead of fresh
        mixtures, silently destroying the innovation its subtree receives.
        """
        if generation is None:
            generation = self._pick_generation()
            if generation is None:
                return None
        decoder = self.decoder.generations[generation]
        if decoder.rank == 0:
            return None
        # Deterministic replay of row 0: maximally unhelpful.  Copies just
        # the one row instead of materialising the whole basis as packets.
        packet = decoder.basis_packet(0)
        packet.origin = self.node_id
        return packet

    def generation_decoder(self, generation: int) -> GenerationDecoder:
        """Access the per-generation decoder (diagnostics)."""
        return self.decoder.generations[generation]
