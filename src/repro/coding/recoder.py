"""In-network recoder: the peer side of the RLNC data plane.

Per Chou–Wu–Jain, every intermediate node buffers the packets it has
received for each generation and, whenever it must transmit, emits a fresh
uniformly random linear combination of its buffer.  Crucially the node
never needs to decode; the coefficient headers compose under mixing.

The buffer here is the decoder's RREF basis (rather than raw packets), so
buffer size is bounded by the generation size and non-innovative arrivals
cost nothing.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .decoder import Decoder, GenerationDecoder
from .generation import GenerationParams
from .packet import CodedPacket


class Recoder:
    """Buffer-and-mix node logic for all generations of one content object.

    Attributes:
        node_id: Identifier stamped on emitted packets' ``origin`` field.
        decoder: The underlying rank-tracking buffer; exposed so peers that
            also want the content (every peer, in broadcast) reuse it.
    """

    def __init__(
        self,
        params: GenerationParams,
        generation_count: int,
        rng: np.random.Generator,
        node_id: int = -1,
    ) -> None:
        self.params = params
        self.decoder = Decoder(params, generation_count)
        self._rng = rng
        self.node_id = node_id

    def receive(self, packet: CodedPacket) -> bool:
        """Ingest a packet into the buffer; True iff it was innovative."""
        return self.decoder.push(packet)

    def rank(self, generation: int) -> int:
        """Current rank held for ``generation``."""
        return self.decoder.generations[generation].rank

    def _pick_generation(self) -> Optional[int]:
        """Choose the generation to serve.

        Half the time: the lowest-index generation *we* have not finished
        (approximates the sequential delivery a streaming receiver
        wants).  The other half: uniform over every generation we hold
        any rank in — including completed ones.  The uniform component is
        essential, not cosmetic: a node that only ever serves its own
        earliest-incomplete generation stops serving a generation the
        moment it completes it, which can permanently starve neighbours
        who still need it (observed as a rank plateau in cyclic and
        server-detached topologies).
        """
        ranks = [g.rank for g in self.decoder.generations]
        nonzero = [g for g, r in enumerate(ranks) if r > 0]
        if not nonzero:
            return None
        incomplete = [
            g for g in nonzero if not self.decoder.generations[g].is_complete
        ]
        if incomplete and self._rng.random() < 0.5:
            return incomplete[0]
        return int(self._rng.choice(nonzero))

    def emit(self, generation: Optional[int] = None) -> Optional[CodedPacket]:
        """Emit a random mixture from the buffer, or None if it is empty."""
        if generation is None:
            generation = self._pick_generation()
            if generation is None:
                return None
        packet = self.decoder.generations[generation].random_combination(self._rng)
        if packet is None:
            return None
        packet.origin = self.node_id
        return packet

    def emit_trivial(self, generation: Optional[int] = None) -> Optional[CodedPacket]:
        """Emit a *non-mixed* packet: replay one buffered basis row.

        This models the §7 *entropy destruction attack* — a malicious or
        lazy node that forwards trivial combinations instead of fresh
        mixtures, silently destroying the innovation its subtree receives.
        """
        if generation is None:
            generation = self._pick_generation()
            if generation is None:
                return None
        decoder = self.decoder.generations[generation]
        if decoder.rank == 0:
            return None
        # Deterministic replay of row 0: maximally unhelpful.  Copies just
        # the one row instead of materialising the whole basis as packets.
        packet = decoder.basis_packet(0)
        packet.origin = self.node_id
        return packet

    def generation_decoder(self, generation: int) -> GenerationDecoder:
        """Access the per-generation decoder (diagnostics)."""
        return self.decoder.generations[generation]
