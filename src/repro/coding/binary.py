"""Binary (GF(2)) network coding — the field-size ablation.

Some practical systems mix packets with plain XOR (coefficients in
GF(2)) to avoid finite-field multiplies.  The cost is innovation: a
random GF(q) combination is non-innovative with probability
``q^(rank − g)``, so q = 2 wastes measurably more transmissions near
completion than q = 256.  This module provides a minimal GF(2) codec —
coefficients are bit vectors, payloads are XOR combinations — so the
X-series ablation can measure that gap on the real decoder machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class BinaryPacket:
    """A packet whose coefficient vector lives in GF(2)^g.

    ``payload`` is the XOR of the selected source packets.
    """

    coefficients: np.ndarray  # uint8 in {0, 1}
    payload: np.ndarray

    def __post_init__(self) -> None:
        self.coefficients = (np.asarray(self.coefficients) & 1).astype(np.uint8)
        self.payload = np.asarray(self.payload, dtype=np.uint8)

    @property
    def generation_size(self) -> int:
        return int(self.coefficients.shape[0])


class BinaryEncoder:
    """Source encoder: uniform random nonzero subsets, XOR payloads."""

    def __init__(self, source: np.ndarray, rng: np.random.Generator) -> None:
        self.source = np.asarray(source, dtype=np.uint8)
        if self.source.ndim != 2:
            raise ValueError("source must be a (g, L) byte matrix")
        self._rng = rng

    @property
    def generation_size(self) -> int:
        return int(self.source.shape[0])

    def emit(self) -> BinaryPacket:
        coefficients = self._rng.integers(
            0, 2, size=self.generation_size, dtype=np.uint8
        )
        if not coefficients.any():
            coefficients[int(self._rng.integers(0, self.generation_size))] = 1
        selected = np.nonzero(coefficients)[0]
        payload = np.zeros(self.source.shape[1], dtype=np.uint8)
        for index in selected:
            payload ^= self.source[index]
        return BinaryPacket(coefficients=coefficients, payload=payload)


class BinaryDecoder:
    """Progressive GF(2) Gaussian elimination (pure XOR)."""

    def __init__(self, generation_size: int, payload_size: int) -> None:
        self.generation_size = generation_size
        self.payload_size = payload_size
        self._rows: list[np.ndarray] = []  # rows kept in echelon form
        self._pivot_of_row: list[int] = []
        self.rank = 0
        self.received = 0
        self.innovative = 0

    @property
    def is_complete(self) -> bool:
        return self.rank == self.generation_size

    def push(self, packet: BinaryPacket) -> bool:
        self.received += 1
        if self.is_complete:
            return False
        row = np.concatenate([packet.coefficients, packet.payload]).astype(np.uint8)
        for pivot, basis in zip(self._pivot_of_row, self._rows):
            if row[pivot]:
                row ^= basis
        pivot = -1
        for col in range(self.generation_size):
            if row[col]:
                pivot = col
                break
        if pivot < 0:
            return False
        # back-substitute the new pivot out of existing rows
        for i, basis in enumerate(self._rows):
            if basis[pivot]:
                self._rows[i] = basis ^ row
        self._rows.append(row)
        self._pivot_of_row.append(pivot)
        self.rank += 1
        self.innovative += 1
        return True

    def recover(self) -> np.ndarray:
        """The decoded (g, L) source matrix; requires completeness."""
        if not self.is_complete:
            raise RuntimeError(f"rank {self.rank}/{self.generation_size}")
        out = np.zeros((self.generation_size, self.payload_size), dtype=np.uint8)
        for pivot, row in zip(self._pivot_of_row, self._rows):
            out[pivot] = row[self.generation_size:]
        return out

    @property
    def efficiency(self) -> float:
        """Fraction of received packets that were innovative."""
        return self.innovative / self.received if self.received else 1.0


def innovation_probability_q(q: int, generation_size: int, have_rank: int) -> float:
    """P(a uniform GF(q) combination is innovative | receiver rank).

    Generalises :func:`repro.coding.entropy.innovation_probability`:
    ``1 − q^(have_rank − generation_size)``.
    """
    if q < 2:
        raise ValueError("q must be a prime power >= 2")
    if have_rank >= generation_size:
        return 0.0
    return 1.0 - float(q) ** (have_rank - generation_size)
