"""Generation management: chunking a byte stream into coded generations.

A *generation* is the unit of coding: ``generation_size`` packets of
``payload_size`` bytes each.  Content (a file, a stream prefix) is split
into consecutive generations; mixing only ever happens within a
generation, which bounds decoding cost and delay (Chou–Wu–Jain).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .packet import SourceBlock


@dataclass(frozen=True)
class GenerationParams:
    """Coding parameters shared by every node in a session.

    Attributes:
        generation_size: Source packets per generation (the paper's and
            [5]'s practical sweet spot is tens to low hundreds).
        payload_size: Bytes per packet payload.
    """

    generation_size: int
    payload_size: int

    def __post_init__(self) -> None:
        if self.generation_size < 1:
            raise ValueError("generation_size must be >= 1")
        if self.payload_size < 1:
            raise ValueError("payload_size must be >= 1")

    @property
    def generation_bytes(self) -> int:
        """Raw content bytes carried by one full generation."""
        return self.generation_size * self.payload_size

    def generations_for(self, content_length: int) -> int:
        """Number of generations needed to carry ``content_length`` bytes."""
        if content_length < 0:
            raise ValueError("content_length must be >= 0")
        return max(1, math.ceil(content_length / self.generation_bytes))


def split_content(content: bytes, params: GenerationParams) -> list[SourceBlock]:
    """Split ``content`` into zero-padded source blocks, one per generation.

    The final generation is padded with zero bytes; real systems carry the
    content length out of band (we return it from :func:`join_content`'s
    caller side).
    """
    count = params.generations_for(len(content))
    padded = np.zeros(count * params.generation_bytes, dtype=np.uint8)
    if content:
        padded[: len(content)] = np.frombuffer(content, dtype=np.uint8)
    blocks = []
    for g in range(count):
        chunk = padded[g * params.generation_bytes : (g + 1) * params.generation_bytes]
        blocks.append(
            SourceBlock(
                generation=g,
                data=chunk.reshape(params.generation_size, params.payload_size),
            )
        )
    return blocks


def join_content(blocks: list[SourceBlock], content_length: int) -> bytes:
    """Reassemble content bytes from decoded source blocks.

    Blocks must be supplied for every generation index in ``range(len(blocks))``;
    they are sorted by generation before joining.
    """
    ordered = sorted(blocks, key=lambda block: block.generation)
    for expected, block in enumerate(ordered):
        if block.generation != expected:
            raise ValueError(f"missing generation {expected}")
    flat = np.concatenate([block.data.reshape(-1) for block in ordered])
    if content_length > flat.shape[0]:
        raise ValueError("content_length exceeds decoded data")
    return flat[:content_length].tobytes()
