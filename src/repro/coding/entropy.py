"""Innovation accounting: rank evolution and coding-efficiency metrics.

These helpers quantify how much of the traffic a node receives is
*innovative* (rank-increasing) — the currency of network coding.  They are
used by the throughput experiments (E7) and the attack experiments (E11).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gf.linalg import rank as gf_rank
from .packet import CodedPacket


@dataclass
class InnovationTracker:
    """Counts received vs innovative packets for one receiver.

    Attributes:
        received: Total packets ingested.
        innovative: Packets that increased rank.
        history: Per-step (received, rank) samples when ``sample`` is called.
    """

    received: int = 0
    innovative: int = 0
    history: list[tuple[int, int]] = field(default_factory=list)

    def record(self, was_innovative: bool) -> None:
        """Record the outcome of one packet ingestion."""
        self.received += 1
        if was_innovative:
            self.innovative += 1

    def sample(self, current_rank: int) -> None:
        """Append a (received, rank) sample to the history."""
        self.history.append((self.received, current_rank))

    @property
    def efficiency(self) -> float:
        """Fraction of received packets that were innovative (1.0 if none)."""
        return self.innovative / self.received if self.received else 1.0


def packets_rank(packets: list[CodedPacket]) -> int:
    """Rank of the coefficient vectors of a packet collection."""
    if not packets:
        return 0
    matrix = np.stack([p.coefficients for p in packets])
    return gf_rank(matrix)


def innovation_probability(generation_size: int, have_rank: int) -> float:
    """Probability that a uniformly random combination of a full-rank peer's
    buffer is innovative for a receiver holding ``have_rank`` dimensions.

    For GF(q) with q = 256 the chance a random vector lands inside a fixed
    ``have_rank``-dimensional subspace of the ``generation_size``-space is
    ``q**(have_rank - generation_size)``; innovation probability is its
    complement.  Used as the analytic reference line in E13.
    """
    if have_rank >= generation_size:
        return 0.0
    return 1.0 - 256.0 ** (have_rank - generation_size)
