"""Wire format: serialise coded packets to bytes and back.

Layout (big-endian), matching the practical-network-coding framing of
[5] — a fixed header, the coefficient vector, then the payload:

    offset  size  field
    0       2     magic (0x5243, "RC")
    2       1     version (1 or 2)
    3       1     flags (bit 0: systematic hint)
    4       4     generation index
    8       4     origin node id (two's complement; -1 = server)
    12      2     generation size g (coefficient count)
    14      2     payload size in bytes
    16      g     coefficients (GF(256), one byte each)
    16+g    n     payload bytes
    16+g+n  4     CRC32 trailer (version 2 only)

Version 2 appends a CRC32 of everything before the trailer, so a frame
corrupted in transit (or mis-reassembled from TCP segments) fails loudly
in :func:`decode_packet` instead of feeding garbage coefficients to the
decoder.  Version 1 frames (no trailer) still decode, for compatibility
with recorded traces.

``wire_size()`` on :class:`~repro.coding.packet.CodedPacket` counts an
8-byte abstract header; the concrete format here spends 16 for
alignment and a version field — the difference is irrelevant to every
experiment (overheads are dominated by the coefficient vector).
"""

from __future__ import annotations

import struct
import zlib
from typing import Optional

import numpy as np

from .packet import CodedPacket

#: Magic bytes identifying a coded-packet frame.
MAGIC = 0x5243
#: Current wire version (CRC32 trailer).
VERSION = 2
#: Legacy wire version (no trailer).
VERSION_1 = 1

_HEADER = struct.Struct(">HBBIiHH")
_TRAILER = struct.Struct(">I")

#: Flag bit: the sender believes this is an unmixed source packet.
FLAG_SYSTEMATIC = 0x01


class WireFormatError(ValueError):
    """Raised when a frame cannot be parsed."""


def encode_packet(packet: CodedPacket, version: int = VERSION) -> bytes:
    """Serialise a packet to its wire frame.

    ``version=1`` emits the legacy trailer-less frame (trace replay and
    cross-version tests); the default appends the CRC32 trailer.
    """
    if version not in (VERSION_1, VERSION):
        raise WireFormatError(f"cannot encode version {version}")
    flags = FLAG_SYSTEMATIC if packet.is_systematic() else 0
    header = _HEADER.pack(
        MAGIC,
        version,
        flags,
        packet.generation,
        packet.origin,
        packet.generation_size,
        packet.payload_size,
    )
    body = header + packet.coefficients.tobytes() + packet.payload.tobytes()
    if version == VERSION_1:
        return body
    return body + _TRAILER.pack(zlib.crc32(body))


def _frame_length(version: int, g: int, n: int) -> int:
    length = _HEADER.size + g + n
    if version >= VERSION:
        length += _TRAILER.size
    return length


def _parse_header(frame: bytes) -> tuple[int, int, int, int, int]:
    """Validate magic/version; return (version, generation, origin, g, n)."""
    magic, version, _flags, generation, origin, g, n = _HEADER.unpack_from(frame)
    if magic != MAGIC:
        raise WireFormatError(f"bad magic 0x{magic:04x}")
    if version not in (VERSION_1, VERSION):
        raise WireFormatError(f"unsupported version {version}")
    return version, generation, origin, g, n


def _decode_body(frame: bytes, version: int, generation: int, origin: int,
                 g: int, n: int) -> CodedPacket:
    """Build a packet from an exact-length, header-validated frame."""
    if version == VERSION:
        body, (crc,) = frame[: -_TRAILER.size], _TRAILER.unpack_from(
            frame, len(frame) - _TRAILER.size
        )
        if zlib.crc32(body) != crc:
            raise WireFormatError(
                f"CRC mismatch: trailer 0x{crc:08x}, body 0x{zlib.crc32(body):08x}"
            )
    coefficients = np.frombuffer(frame, dtype=np.uint8,
                                 count=g, offset=_HEADER.size).copy()
    payload = np.frombuffer(frame, dtype=np.uint8,
                            count=n, offset=_HEADER.size + g).copy()
    return CodedPacket(
        generation=generation,
        coefficients=coefficients,
        payload=payload,
        origin=origin,
    )


def decode_packet(frame: bytes) -> CodedPacket:
    """Parse a wire frame back into a packet.

    Accepts both version 2 (CRC32 trailer, verified) and legacy
    version 1 frames.  Raises :class:`WireFormatError` on truncation,
    bad magic, unknown version, or checksum mismatch.
    """
    if len(frame) < _HEADER.size:
        raise WireFormatError(f"frame too short: {len(frame)} bytes")
    version, generation, origin, g, n = _parse_header(frame)
    expected = _frame_length(version, g, n)
    if len(frame) != expected:
        raise WireFormatError(
            f"length mismatch: header promises {expected}, frame has {len(frame)}"
        )
    return _decode_body(frame, version, generation, origin, g, n)


def read_frame(buffer: bytes) -> tuple[Optional[CodedPacket], bytes]:
    """Streaming decode: consume one frame from the front of ``buffer``.

    Returns ``(packet, rest)`` when a complete frame is present, or
    ``(None, buffer)`` when more bytes are needed — the contract a
    socket reader wants, since TCP guarantees nothing about message
    boundaries.  Malformed data (bad magic/version, CRC mismatch)
    raises :class:`WireFormatError`; a well-formed prefix never does.
    """
    if len(buffer) < _HEADER.size:
        return None, buffer
    version, generation, origin, g, n = _parse_header(buffer)
    total = _frame_length(version, g, n)
    if len(buffer) < total:
        return None, buffer
    packet = _decode_body(buffer[:total], version, generation, origin, g, n)
    return packet, buffer[total:]


def frame_size(generation_size: int, payload_size: int,
               version: int = VERSION) -> int:
    """Bytes on the wire for the given geometry."""
    if version not in (VERSION_1, VERSION):
        raise WireFormatError(f"unknown version {version}")
    return _frame_length(version, generation_size, payload_size)
