"""Wire format: serialise coded packets to bytes and back.

Layout (big-endian), matching the practical-network-coding framing of
[5] — a fixed header, the coefficient vector, then the payload:

    offset  size  field
    0       2     magic (0x5243, "RC")
    2       1     version (1)
    3       1     flags (bit 0: systematic hint)
    4       4     generation index
    8       4     origin node id (two's complement; -1 = server)
    12      2     generation size g (coefficient count)
    14      2     payload size in bytes
    16      g     coefficients (GF(256), one byte each)
    16+g    n     payload bytes

``wire_size()`` on :class:`~repro.coding.packet.CodedPacket` counts an
8-byte abstract header; the concrete format here spends 16 for
alignment and a version field — the difference is irrelevant to every
experiment (overheads are dominated by the coefficient vector).
"""

from __future__ import annotations

import struct

import numpy as np

from .packet import CodedPacket

#: Magic bytes identifying a coded-packet frame.
MAGIC = 0x5243
#: Current wire version.
VERSION = 1

_HEADER = struct.Struct(">HBBIiHH")

#: Flag bit: the sender believes this is an unmixed source packet.
FLAG_SYSTEMATIC = 0x01


class WireFormatError(ValueError):
    """Raised when a frame cannot be parsed."""


def encode_packet(packet: CodedPacket) -> bytes:
    """Serialise a packet to its wire frame."""
    flags = FLAG_SYSTEMATIC if packet.is_systematic() else 0
    header = _HEADER.pack(
        MAGIC,
        VERSION,
        flags,
        packet.generation,
        packet.origin,
        packet.generation_size,
        packet.payload_size,
    )
    return header + packet.coefficients.tobytes() + packet.payload.tobytes()


def decode_packet(frame: bytes) -> CodedPacket:
    """Parse a wire frame back into a packet.

    Raises :class:`WireFormatError` on truncation, bad magic or version.
    """
    if len(frame) < _HEADER.size:
        raise WireFormatError(f"frame too short: {len(frame)} bytes")
    magic, version, _flags, generation, origin, g, n = _HEADER.unpack_from(frame)
    if magic != MAGIC:
        raise WireFormatError(f"bad magic 0x{magic:04x}")
    if version != VERSION:
        raise WireFormatError(f"unsupported version {version}")
    expected = _HEADER.size + g + n
    if len(frame) != expected:
        raise WireFormatError(
            f"length mismatch: header promises {expected}, frame has {len(frame)}"
        )
    coefficients = np.frombuffer(frame, dtype=np.uint8,
                                 count=g, offset=_HEADER.size).copy()
    payload = np.frombuffer(frame, dtype=np.uint8,
                            count=n, offset=_HEADER.size + g).copy()
    return CodedPacket(
        generation=generation,
        coefficients=coefficients,
        payload=payload,
        origin=origin,
    )


def frame_size(generation_size: int, payload_size: int) -> int:
    """Bytes on the wire for the given geometry."""
    return _HEADER.size + generation_size + payload_size
