"""Wire format: serialise coded packets to bytes and back.

Layout (big-endian), matching the practical-network-coding framing of
[5] — a fixed header, the coefficient vector, then the payload:

    offset  size  field
    0       2     magic (0x5243, "RC")
    2       1     version (1 or 2)
    3       1     flags (bit 0: systematic hint)
    4       4     generation index
    8       4     origin node id (two's complement; -1 = server)
    12      2     generation size g (coefficient count)
    14      2     payload size in bytes
    16      g     coefficients (GF(256), one byte each)
    16+g    n     payload bytes
    16+g+n  4     CRC32 trailer (version 2 only)

Version 2 appends a CRC32 of everything before the trailer, so a frame
corrupted in transit (or mis-reassembled from TCP segments) fails loudly
in :func:`decode_packet` instead of feeding garbage coefficients to the
decoder.  Version 1 frames (no trailer) still decode, for compatibility
with recorded traces.

Two call styles are provided:

* the scalar codec (:func:`encode_packet` / :func:`decode_packet` /
  :func:`read_frame`) — one frame in, one frame out, allocating its own
  buffers; unchanged wire bytes since the v2 bump;
* the batched zero-copy codec (:func:`encode_packet_into` /
  :func:`encode_packets_into` / :func:`decode_packet_from` /
  :func:`read_frame_at`) — frames are written straight into a caller
  (or :class:`~repro.coding.buffers.BufferPool`) supplied ``bytearray``
  and parsed at an offset cursor, so a busy connection neither builds
  per-frame temporaries on the way out nor re-slices its receive
  buffer on the way in.  Both styles produce and accept bit-identical
  frames.

``wire_size()`` on :class:`~repro.coding.packet.CodedPacket` counts an
8-byte abstract header; the concrete format here spends 16 for
alignment and a version field — the difference is irrelevant to every
experiment (overheads are dominated by the coefficient vector).
"""

from __future__ import annotations

import struct
import zlib
from typing import Optional, Sequence

import numpy as np

from .buffers import DEFAULT_POOL, BufferPool
from .packet import CodedPacket

#: Magic bytes identifying a coded-packet frame.
MAGIC = 0x5243
#: Current wire version (CRC32 trailer).
VERSION = 2
#: Legacy wire version (no trailer).
VERSION_1 = 1

_HEADER = struct.Struct(">HBBIiHH")
_TRAILER = struct.Struct(">I")

#: Flag bit: the sender believes this is an unmixed source packet.
FLAG_SYSTEMATIC = 0x01


class WireFormatError(ValueError):
    """Raised when a frame cannot be parsed."""


class CrcError(WireFormatError):
    """A well-formed frame whose CRC32 trailer did not match — the
    payload was corrupted in transit (receivers count these
    separately from structural framing violations)."""


def _frame_length(version: int, g: int, n: int) -> int:
    length = _HEADER.size + g + n
    if version >= VERSION:
        length += _TRAILER.size
    return length


# ----------------------------------------------------------------------
# Encoding


def encode_packet_into(packet: CodedPacket, buf: bytearray, offset: int = 0,
                       version: int = VERSION) -> int:
    """Serialise ``packet`` into ``buf`` at ``offset``; return the end offset.

    This is the zero-copy encode path: the header is packed in place,
    the coefficient and payload bytes are copied exactly once (from the
    packet's arrays into the frame slot — the one copy that must
    happen), and the CRC is computed over a :class:`memoryview` without
    materialising an intermediate body.  ``buf`` must already be large
    enough; size it with :func:`frame_size`.
    """
    if version not in (VERSION_1, VERSION):
        raise WireFormatError(f"cannot encode version {version}")
    g = packet.generation_size
    n = packet.payload_size
    end = offset + _frame_length(version, g, n)
    if end > len(buf):
        raise WireFormatError(
            f"buffer too small: need {end} bytes, have {len(buf)}"
        )
    flags = FLAG_SYSTEMATIC if packet.is_systematic() else 0
    _HEADER.pack_into(
        buf, offset,
        MAGIC, version, flags,
        packet.generation, packet.origin, g, n,
    )
    view = memoryview(buf)
    coeff_start = offset + _HEADER.size
    view[coeff_start:coeff_start + g] = memoryview(packet.coefficients)
    view[coeff_start + g:coeff_start + g + n] = memoryview(packet.payload)
    if version == VERSION_1:
        return end
    crc = zlib.crc32(view[offset:end - _TRAILER.size])
    _TRAILER.pack_into(buf, end - _TRAILER.size, crc)
    return end


def encode_packet(packet: CodedPacket, version: int = VERSION) -> bytes:
    """Serialise a packet to its wire frame (scalar path).

    ``version=1`` emits the legacy trailer-less frame (trace replay and
    cross-version tests); the default appends the CRC32 trailer.
    """
    if version not in (VERSION_1, VERSION):
        raise WireFormatError(f"cannot encode version {version}")
    buf = bytearray(
        _frame_length(version, packet.generation_size, packet.payload_size)
    )
    encode_packet_into(packet, buf, 0, version)
    return bytes(buf)


def encode_packets_rows(packets: Sequence[CodedPacket], rows: np.ndarray,
                        version: int = VERSION) -> None:
    """Vectorised batch encode of uniform-geometry packets.

    ``rows`` is a writable ``(len(packets), frame)`` uint8 view —
    possibly non-contiguous columns of a larger per-frame buffer, as
    long as each row's bytes are contiguous.  Every packet must share
    one ``(g, n)`` geometry (callers check; mismatched shapes fail the
    ``np.stack`` below).  The constant header fields are broadcast once
    across the batch, each variable field lands with one vectorised
    store, and only the CRC runs per frame — the result is
    bit-identical to :func:`encode_packet_into` row by row, it just
    replaces per-frame struct packing with whole-batch array stores.
    """
    if version not in (VERSION_1, VERSION):
        raise WireFormatError(f"cannot encode version {version}")
    m = len(packets)
    if m == 0:
        return
    first = packets[0]
    g = first.generation_size
    n = first.payload_size
    frame = _frame_length(version, g, n)
    if rows.shape != (m, frame):
        raise WireFormatError(
            f"row buffer shape {rows.shape} != ({m}, {frame})"
        )
    rows[:, : _HEADER.size] = np.frombuffer(
        _HEADER.pack(MAGIC, version, 0, 0, 0, g, n), dtype=np.uint8
    )
    generations = np.array([p.generation for p in packets], dtype=">u4")
    rows[:, 4:8] = generations.view(np.uint8).reshape(m, 4)
    origins = np.array([p.origin for p in packets], dtype=">i4")
    rows[:, 8:12] = origins.view(np.uint8).reshape(m, 4)
    coeff_start = _HEADER.size
    coeffs = np.stack([p.coefficients for p in packets])
    rows[:, coeff_start:coeff_start + g] = coeffs
    if g:
        systematic = (
            (np.count_nonzero(coeffs, axis=1) == 1)
            & (coeffs.max(axis=1) == 1)
        )
        rows[:, 3] = np.where(systematic, FLAG_SYSTEMATIC, 0)
    rows[:, coeff_start + g:coeff_start + g + n] = np.stack(
        [p.payload for p in packets]
    )
    if version == VERSION_1:
        return
    data_end = frame - _TRAILER.size
    crcs = np.array(
        [zlib.crc32(rows[i, :data_end]) for i in range(m)], dtype=">u4"
    )
    rows[:, data_end:] = crcs.view(np.uint8).reshape(m, 4)


def encode_mixture_rows(dest: np.ndarray, mix: np.ndarray, generation: int,
                        origin: int, generation_size: int,
                        version: int = VERSION) -> None:
    """Encode a raw mixture matrix into wire frames, no packets involved.

    ``mix`` is a ``(m, g + n)`` matrix whose rows are
    ``[coefficients | payload]`` (the
    :meth:`~repro.coding.decoder.GenerationDecoder.mixture_rows` output);
    ``dest`` is a writable ``(m, frame)`` uint8 view.  All frames share
    one generation and origin, so the entire header except the
    systematic flag is baked into a single broadcast template, the flag
    is computed with one vectorised reduction over the coefficient
    columns, and the bodies land with one 2-D copy — the zero-copy
    endpoint of the batched emit pipeline.  Bit-identical per row to
    :func:`encode_packet_into` on the equivalent packet.
    """
    if version not in (VERSION_1, VERSION):
        raise WireFormatError(f"cannot encode version {version}")
    m, width = mix.shape
    g = generation_size
    n = width - g
    frame = _frame_length(version, g, n)
    if dest.shape != (m, frame):
        raise WireFormatError(
            f"row buffer shape {dest.shape} != ({m}, {frame})"
        )
    dest[:, : _HEADER.size] = np.frombuffer(
        _HEADER.pack(MAGIC, version, 0, generation, origin, g, n),
        dtype=np.uint8,
    )
    coeffs = mix[:, :g]
    if g:
        systematic = (
            (np.count_nonzero(coeffs, axis=1) == 1)
            & (coeffs.max(axis=1) == 1)
        )
        dest[:, 3] = np.where(systematic, FLAG_SYSTEMATIC, 0)
    dest[:, _HEADER.size:_HEADER.size + width] = mix
    if version == VERSION_1:
        return
    data_end = frame - _TRAILER.size
    crcs = np.array(
        [zlib.crc32(dest[i, :data_end]) for i in range(m)], dtype=">u4"
    )
    dest[:, data_end:] = crcs.view(np.uint8).reshape(m, 4)


def _uniform_geometry(
    packets: Sequence[CodedPacket],
) -> Optional[tuple[int, int]]:
    """``(g, n)`` when every packet shares one geometry, else None."""
    first = packets[0]
    g = first.generation_size
    n = first.payload_size
    for packet in packets:
        if packet.generation_size != g or packet.payload_size != n:
            return None
    return g, n


def encode_packets_into(
    packets: Sequence[CodedPacket],
    buf: Optional[bytearray] = None,
    version: int = VERSION,
    pool: Optional[BufferPool] = None,
) -> tuple[bytearray, list[tuple[int, int]]]:
    """Serialise a batch of packets back-to-back into one buffer.

    Returns ``(buffer, spans)`` where ``spans[i] = (offset, length)``
    locates packet ``i``'s frame inside ``buffer``.  When ``buf`` is
    None the buffer is leased from ``pool`` (the module default pool if
    none is given) and the *caller* is responsible for releasing it —
    typically after the flush that hands the bytes to the transport::

        buf, spans = encode_packets_into(batch)
        try:
            frames = [bytes(memoryview(buf)[o:o + ln]) for o, ln in spans]
        finally:
            DEFAULT_POOL.release(buf)

    One batch costs one (pooled, usually pre-existing) allocation and
    one copy per payload byte, versus three temporaries per frame on
    the old ``header + coeffs.tobytes() + payload.tobytes()`` path.
    """
    total = sum(
        frame_size(p.generation_size, p.payload_size, version) for p in packets
    )
    if buf is None:
        buf = (pool if pool is not None else DEFAULT_POOL).lease(total)
    m = len(packets)
    if m > 1:
        geometry = _uniform_geometry(packets)
        if geometry is not None:
            # Uniform batch (the emit_batch common case): one vectorised
            # fill across all frames instead of m struct-packed encodes.
            frame = frame_size(*geometry, version)
            if m * frame > len(buf):
                raise WireFormatError(
                    f"buffer too small: need {m * frame} bytes, "
                    f"have {len(buf)}"
                )
            rows = np.frombuffer(buf, dtype=np.uint8,
                                 count=m * frame).reshape(m, frame)
            encode_packets_rows(packets, rows, version)
            return buf, [(i * frame, frame) for i in range(m)]
    offset = 0
    spans: list[tuple[int, int]] = []
    for packet in packets:
        end = encode_packet_into(packet, buf, offset, version)
        spans.append((offset, end - offset))
        offset = end
    return buf, spans


# ----------------------------------------------------------------------
# Decoding


def _parse_header_at(buffer, offset: int) -> tuple[int, int, int, int, int]:
    """Validate magic/version; return (version, generation, origin, g, n)."""
    magic, version, _flags, generation, origin, g, n = _HEADER.unpack_from(
        buffer, offset
    )
    if magic != MAGIC:
        raise WireFormatError(f"bad magic 0x{magic:04x}")
    if version not in (VERSION_1, VERSION):
        raise WireFormatError(f"unsupported version {version}")
    return version, generation, origin, g, n


def _decode_at(buffer, offset: int, version: int, generation: int,
               origin: int, g: int, n: int) -> CodedPacket:
    """Build a packet from a header-validated frame at ``offset``.

    The CRC is checked over a :class:`memoryview` (no body slice) and
    the coefficient/payload arrays are materialised with one
    ``np.frombuffer(...).copy()`` each — the single copy that gives the
    packet ownership of its bytes, and the only per-frame allocation.
    """
    end = offset + _frame_length(version, g, n)
    if version == VERSION:
        body_end = end - _TRAILER.size
        (crc,) = _TRAILER.unpack_from(buffer, body_end)
        actual = zlib.crc32(memoryview(buffer)[offset:body_end])
        if actual != crc:
            raise CrcError(
                f"CRC mismatch: trailer 0x{crc:08x}, body 0x{actual:08x}"
            )
    coefficients = np.frombuffer(buffer, dtype=np.uint8,
                                 count=g, offset=offset + _HEADER.size).copy()
    payload = np.frombuffer(buffer, dtype=np.uint8, count=n,
                            offset=offset + _HEADER.size + g).copy()
    return CodedPacket(
        generation=generation,
        coefficients=coefficients,
        payload=payload,
        origin=origin,
    )


def decode_packet_from(buffer, offset: int = 0) -> tuple[CodedPacket, int]:
    """Parse one frame at ``offset``; return ``(packet, end_offset)``.

    The streaming-decode primitive: nothing before ``offset`` is looked
    at, nothing is sliced, and the caller advances its cursor to the
    returned end offset.  Raises :class:`WireFormatError` on truncation,
    bad magic, unknown version, or checksum mismatch.
    """
    available = len(buffer) - offset
    if available < _HEADER.size:
        raise WireFormatError(f"frame too short: {max(available, 0)} bytes")
    version, generation, origin, g, n = _parse_header_at(buffer, offset)
    total = _frame_length(version, g, n)
    if available < total:
        raise WireFormatError(
            f"length mismatch: header promises {total}, frame has {available}"
        )
    packet = _decode_at(buffer, offset, version, generation, origin, g, n)
    return packet, offset + total


def decode_packet(frame) -> CodedPacket:
    """Parse a wire frame back into a packet (scalar path).

    Accepts both version 2 (CRC32 trailer, verified) and legacy
    version 1 frames, and requires the frame to be exact-length.
    Raises :class:`WireFormatError` on truncation, bad magic, unknown
    version, trailing garbage, or checksum mismatch.
    """
    packet, end = decode_packet_from(frame, 0)
    if end != len(frame):
        raise WireFormatError(
            f"length mismatch: header promises {end}, frame has {len(frame)}"
        )
    return packet


def read_frame_at(buffer, offset: int = 0) -> tuple[Optional[CodedPacket], int]:
    """Streaming decode with an offset cursor: no tail re-slicing.

    Returns ``(packet, new_offset)`` when a complete frame starts at
    ``offset``, or ``(None, offset)`` when more bytes are needed — the
    receive loop keeps the buffer intact and only advances its cursor,
    so consuming F frames costs O(bytes) instead of the O(bytes x F)
    of rebuilding the tail after every frame.  Malformed data (bad
    magic/version, CRC mismatch) raises :class:`WireFormatError`; a
    well-formed prefix never does.
    """
    if len(buffer) - offset < _HEADER.size:
        return None, offset
    version, generation, origin, g, n = _parse_header_at(buffer, offset)
    total = _frame_length(version, g, n)
    if len(buffer) - offset < total:
        return None, offset
    packet = _decode_at(buffer, offset, version, generation, origin, g, n)
    return packet, offset + total


def read_frame(buffer: bytes) -> tuple[Optional[CodedPacket], bytes]:
    """Streaming decode: consume one frame from the front of ``buffer``.

    Returns ``(packet, rest)`` when a complete frame is present, or
    ``(None, buffer)`` when more bytes are needed.  This is the legacy
    convenience form — it rebuilds the unconsumed tail on every call,
    which is quadratic on a busy connection; hot paths should use
    :func:`read_frame_at` (or :class:`repro.net.framing.FrameBuffer`,
    which sits on top of the cursor API) instead.
    """
    packet, end = read_frame_at(buffer, 0)
    if packet is None:
        return None, buffer
    return packet, buffer[end:]


def frame_size(generation_size: int, payload_size: int,
               version: int = VERSION) -> int:
    """Bytes on the wire for the given geometry."""
    if version not in (VERSION_1, VERSION):
        raise WireFormatError(f"unknown version {version}")
    return _frame_length(version, generation_size, payload_size)
