"""Coded packets carrying their own coefficient vectors.

Following *Practical Network Coding* (Chou, Wu, Jain 2003), every packet in
the system is a linear combination of the ``generation_size`` original
source packets of one *generation*, and carries the coefficient vector of
that combination in its header.  Because the coefficients travel with the
payload, any node can recode or decode without knowing the topology, and
the system survives arbitrary topology churn — the property the overlay
paper leans on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gf.field import addmul_row


@dataclass
class CodedPacket:
    """One packet on the wire.

    Attributes:
        generation: Index of the generation this packet belongs to.
        coefficients: ``uint8`` vector of length ``generation_size``
            expressing the payload as a combination of source packets.
        payload: ``uint8`` vector of the (coded) data bytes.
        origin: Identifier of the node that emitted this packet (for
            diagnostics and attack experiments; not used for decoding).
        hop_count: Number of recoding hops this packet's lineage passed
            through (diagnostics only).
    """

    generation: int
    coefficients: np.ndarray
    payload: np.ndarray
    origin: int = -1
    hop_count: int = 0

    def __post_init__(self) -> None:
        self.coefficients = np.asarray(self.coefficients, dtype=np.uint8)
        self.payload = np.asarray(self.payload, dtype=np.uint8)

    @classmethod
    def trusted(cls, generation: int, coefficients: np.ndarray,
                payload: np.ndarray, origin: int = -1,
                hop_count: int = 0) -> "CodedPacket":
        """Construct without the ``__post_init__`` coercion.

        For hot paths whose operands are already ``uint8`` arrays straight
        out of the GF kernels — the dataclass ``__init__`` plus two
        ``np.asarray`` calls are a measurable fraction of a batched emit,
        and coercion of an array that is already ``uint8`` is a no-op.
        """
        self = object.__new__(cls)
        self.generation = generation
        self.coefficients = coefficients
        self.payload = payload
        self.origin = origin
        self.hop_count = hop_count
        return self

    @property
    def generation_size(self) -> int:
        """Number of source packets in this packet's generation."""
        return int(self.coefficients.shape[0])

    @property
    def payload_size(self) -> int:
        """Number of payload bytes."""
        return int(self.payload.shape[0])

    @property
    def header_overhead(self) -> float:
        """Fraction of the wire size consumed by the coefficient header."""
        total = self.generation_size + self.payload_size
        return self.generation_size / total if total else 0.0

    def is_zero(self) -> bool:
        """True for the all-zero (information-free) packet."""
        return not self.coefficients.any()

    def is_systematic(self) -> bool:
        """True if this packet is an unmixed original source packet.

        Exactly one nonzero coefficient, equal to 1 — tested with bytes
        ops (one tiny copy, two C-level counts) because this runs once
        per serialised frame and numpy reductions cost microseconds at
        these vector sizes.
        """
        raw = self.coefficients.tobytes()
        return raw.count(1) == 1 and raw.count(0) == len(raw) - 1

    def copy(self) -> "CodedPacket":
        """Deep copy (the simulator hands packets across node boundaries)."""
        return CodedPacket(
            generation=self.generation,
            coefficients=self.coefficients.copy(),
            payload=self.payload.copy(),
            origin=self.origin,
            hop_count=self.hop_count,
        )

    def wire_size(self) -> int:
        """Bytes on the wire: coefficients + payload + small fixed header."""
        return self.generation_size + self.payload_size + 8


@dataclass
class SourceBlock:
    """The original data of one generation, pre-coding.

    ``data`` is a ``(generation_size, payload_size)`` uint8 matrix whose
    rows are the original packets.
    """

    generation: int
    data: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=np.uint8)
        if self.data.ndim != 2:
            raise ValueError("SourceBlock data must be a 2-D matrix")

    @property
    def generation_size(self) -> int:
        return int(self.data.shape[0])

    @property
    def payload_size(self) -> int:
        return int(self.data.shape[1])

    def source_packet(self, index: int) -> CodedPacket:
        """Return the ``index``-th original packet in systematic form."""
        coefficients = np.zeros(self.generation_size, dtype=np.uint8)
        coefficients[index] = 1
        return CodedPacket(
            generation=self.generation,
            coefficients=coefficients,
            payload=self.data[index].copy(),
        )


def combine(packets: list[CodedPacket], scalars: np.ndarray) -> CodedPacket:
    """Form the linear combination ``sum_i scalars[i] * packets[i]``.

    All packets must share a generation and have equal sizes.  This is the
    single primitive behind the encoder and recoder.
    """
    if not packets:
        raise ValueError("cannot combine an empty packet list")
    scalars = np.asarray(scalars, dtype=np.uint8)
    if scalars.shape[0] != len(packets):
        raise ValueError("one scalar per packet required")
    generation = packets[0].generation
    coefficients = np.zeros_like(packets[0].coefficients)
    payload = np.zeros_like(packets[0].payload)
    max_hops = 0
    for packet, scalar in zip(packets, scalars):
        if packet.generation != generation:
            raise ValueError("cannot mix packets from different generations")
        if packet.coefficients.shape != coefficients.shape:
            raise ValueError("mismatched generation sizes")
        if packet.payload.shape != payload.shape:
            raise ValueError("mismatched payload sizes")
        addmul_row(coefficients, packet.coefficients, int(scalar))
        addmul_row(payload, packet.payload, int(scalar))
        max_hops = max(max_hops, packet.hop_count)
    return CodedPacket(
        generation=generation,
        coefficients=coefficients,
        payload=payload,
        hop_count=max_hops + 1,
    )
