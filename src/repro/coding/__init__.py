"""Random linear network coding (RLNC) data plane.

Implements practical network coding per Chou–Wu–Jain [5]: content is split
into generations; the source emits random combinations with coefficient
headers (:class:`SourceEncoder`); peers buffer-and-mix without decoding
(:class:`Recoder`); receivers decode by progressive Gaussian elimination
(:class:`Decoder`).
"""

from .binary import (
    BinaryDecoder,
    BinaryEncoder,
    BinaryPacket,
    innovation_probability_q,
)
from .decoder import Decoder, GenerationDecoder
from .encoder import SourceEncoder
from .entropy import InnovationTracker, innovation_probability, packets_rank
from .generation import GenerationParams, join_content, split_content
from .packet import CodedPacket, SourceBlock, combine
from .pet import PETEncoder, PETLayer
from .wire import decode_packet, encode_packet, frame_size
from .recoder import Recoder

__all__ = [
    "BinaryDecoder",
    "BinaryEncoder",
    "BinaryPacket",
    "CodedPacket",
    "innovation_probability_q",
    "Decoder",
    "GenerationDecoder",
    "GenerationParams",
    "InnovationTracker",
    "PETEncoder",
    "PETLayer",
    "decode_packet",
    "encode_packet",
    "frame_size",
    "Recoder",
    "SourceBlock",
    "SourceEncoder",
    "combine",
    "innovation_probability",
    "join_content",
    "packets_rank",
    "split_content",
]
