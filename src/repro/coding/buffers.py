"""A small lease/release pool of ``bytearray`` scratch buffers.

The batched wire path (:func:`repro.coding.wire.encode_packets_into`)
serialises whole packet batches into one contiguous buffer per flush.
Allocating a fresh megabyte-class ``bytearray`` per flush would put the
allocator back on the hot path, so encoders lease buffers here and
return them once the frame bytes have been handed to the transport.

The pool is deliberately simple — it is an asyncio-process helper, not
a thread-safe arena:

* buffers are bucketed by rounded-up capacity (powers of two), so a
  steady workload converges on a handful of reusable allocations;
* ``lease`` returns a buffer of *at least* the requested size (callers
  track their own fill offset; the extra tail is scratch);
* ``release`` returns a buffer to its bucket unless the bucket is full,
  in which case the buffer is simply dropped for the GC — the pool
  bounds idle memory instead of growing without limit.

:data:`DEFAULT_POOL` is the module-wide instance the wire layer uses
when the caller does not bring its own.
"""

from __future__ import annotations

__all__ = ["BufferPool", "DEFAULT_POOL", "PoolStats"]

from dataclasses import dataclass


@dataclass
class PoolStats:
    """Allocation accounting — lets benchmarks verify steady-state
    encoding stops allocating."""

    leases: int = 0
    allocations: int = 0
    reuses: int = 0
    releases: int = 0
    discarded: int = 0


class BufferPool:
    """Reusable ``bytearray`` buffers bucketed by power-of-two capacity.

    Args:
        max_per_bucket: Idle buffers kept per size class; extras handed
            to ``release`` are dropped.
        min_capacity: Smallest buffer ever allocated (small leases are
            rounded up so tiny frames reuse the same bucket).
    """

    def __init__(self, max_per_bucket: int = 8, min_capacity: int = 4096) -> None:
        if max_per_bucket < 1:
            raise ValueError("max_per_bucket must be >= 1")
        if min_capacity < 1:
            raise ValueError("min_capacity must be >= 1")
        self._max_per_bucket = max_per_bucket
        self._min_capacity = min_capacity
        self._buckets: dict[int, list[bytearray]] = {}
        self.stats = PoolStats()

    def _capacity_for(self, size: int) -> int:
        capacity = self._min_capacity
        while capacity < size:
            capacity <<= 1
        return capacity

    def lease(self, size: int) -> bytearray:
        """A buffer with ``len(buf) >= size`` (contents undefined)."""
        if size < 0:
            raise ValueError("cannot lease a negative-size buffer")
        self.stats.leases += 1
        capacity = self._capacity_for(size)
        bucket = self._buckets.get(capacity)
        if bucket:
            self.stats.reuses += 1
            return bucket.pop()
        self.stats.allocations += 1
        return bytearray(capacity)

    def release(self, buffer: bytearray) -> None:
        """Hand a leased buffer back for reuse."""
        self.stats.releases += 1
        capacity = len(buffer)
        bucket = self._buckets.setdefault(capacity, [])
        if len(bucket) < self._max_per_bucket:
            bucket.append(buffer)
        else:
            self.stats.discarded += 1

    def idle_buffers(self) -> int:
        """Buffers currently parked in the pool (diagnostics)."""
        return sum(len(bucket) for bucket in self._buckets.values())


#: Shared pool used by the wire layer when no pool is passed in.
DEFAULT_POOL = BufferPool()
