"""Progressive Gaussian-elimination decoder.

The decoder maintains, per generation, an augmented matrix
``[coefficients | payload]`` kept permanently in reduced row echelon form.
Each arriving packet is reduced against the current basis; *innovative*
packets (those that increase rank) are inserted, everything else is
discarded.  When the rank reaches the generation size the original block
is recovered directly from the RREF.

Every inner loop routes through the batched kernels in
:mod:`repro.gf.kernels`: a packet is reduced with one gather + one table
lookup + one XOR reduction (:func:`~repro.gf.kernels.eliminate`), pivots
are found with ``np.nonzero``, back-substitution after an insertion is a
single :func:`~repro.gf.kernels.addmul_rows` call, and
:meth:`GenerationDecoder.random_combination` mixes the basis into a
preallocated output buffer.  A per-decoder scratch
:class:`~repro.gf.kernels.Workspace` makes the steady state allocation
free; see ``docs/performance.md``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..gf.kernels import Workspace, addmul_rows, combine_rows, eliminate, mix_rows
from ..gf.tables import FIELD_SIZE, INV, MUL
from .generation import GenerationParams, join_content
from .packet import CodedPacket, SourceBlock


class GenerationDecoder:
    """Decoder state for a single generation."""

    def __init__(self, generation: int, params: GenerationParams) -> None:
        self.generation = generation
        self.params = params
        size = params.generation_size
        width = size + params.payload_size
        # Row i, when present, has its pivot at column _pivot_cols[i].
        self._rows = np.zeros((size, width), dtype=np.uint8)
        self._pivot_cols = np.zeros(size, dtype=np.intp)
        self._row_of_pivot: dict[int, int] = {}
        self._scratch_row = np.empty(width, dtype=np.uint8)
        self._mix_out = np.empty(width, dtype=np.uint8)
        self._workspace = Workspace()
        self.rank = 0
        self.received = 0
        self.innovative = 0

    @property
    def is_complete(self) -> bool:
        """True once the generation can be fully decoded."""
        return self.rank == self.params.generation_size

    @property
    def _pivot_of_row(self) -> list[Optional[int]]:
        """Pivot column of each row slot (None when empty) — diagnostics."""
        size = self.params.generation_size
        pivots: list[Optional[int]] = [None] * size
        for i in range(self.rank):
            pivots[i] = int(self._pivot_cols[i])
        return pivots

    def _reduce(self, coefficients: np.ndarray, payload: np.ndarray) -> np.ndarray:
        """Reduce a packet against the current basis; returns the full row.

        The returned array is the decoder's scratch row — valid until the
        next ``_reduce`` call; ``push`` copies it on insertion.
        """
        size = self.params.generation_size
        row = self._scratch_row
        row[:size] = coefficients
        row[size:] = payload
        # Basis rows are zero at every pivot column but their own, so one
        # batched pass fully clears the row at all existing pivots; the
        # first remaining nonzero (if any) is a brand-new pivot.
        eliminate(row, self._rows[: self.rank], self._pivot_cols[: self.rank],
                  workspace=self._workspace)
        return row

    def push(self, packet: CodedPacket) -> bool:
        """Consume a packet; returns True iff it was innovative."""
        if packet.generation != self.generation:
            raise ValueError("packet belongs to a different generation")
        self.received += 1
        if self.is_complete:
            return False
        row = self._reduce(packet.coefficients, packet.payload)
        size = self.params.generation_size
        nonzero = np.nonzero(row[:size])[0]
        if nonzero.size == 0:
            return False  # non-innovative
        pivot = int(nonzero[0])
        slot = self.rank
        # Normalise the pivot to 1, writing straight into the basis slot.
        pivot_value = int(row[pivot])
        if pivot_value != 1:
            np.take(MUL[int(INV[pivot_value])], row, out=self._rows[slot])
        else:
            self._rows[slot] = row
        self._pivot_cols[slot] = pivot
        self._row_of_pivot[pivot] = slot
        self.rank += 1
        self.innovative += 1
        # Back-substitute: clear column `pivot` from existing rows in one
        # batched kernel call.
        if slot:
            addmul_rows(self._rows[:slot], self._rows[slot],
                        self._rows[:slot, pivot].copy(),
                        workspace=self._workspace)
        return True

    def decoded_block(self) -> SourceBlock:
        """Recover the original source block; requires completeness."""
        if not self.is_complete:
            raise RuntimeError(
                f"generation {self.generation} rank {self.rank}"
                f"/{self.params.generation_size}: not decodable yet"
            )
        size = self.params.generation_size
        data = np.zeros((size, self.params.payload_size), dtype=np.uint8)
        # The RREF rows are a permutation of the identity: one vectorised
        # scatter puts row i's payload at its pivot position.
        data[self._pivot_cols[:size]] = self._rows[:, size:]
        return SourceBlock(generation=self.generation, data=data)

    def random_combination(self, rng: np.random.Generator) -> Optional[CodedPacket]:
        """Fresh uniform random mixture of the current basis (fast path).

        Computes the combination with one batched kernel call into a
        preallocated buffer — no per-row packet materialisation and no
        intermediate temporaries.  Returns None when the basis is empty.
        """
        if self.rank == 0:
            return None
        scalars = rng.integers(1, FIELD_SIZE, size=self.rank, dtype=np.uint8)
        combined = mix_rows(scalars, self._rows[: self.rank],
                            out=self._mix_out, workspace=self._workspace)
        size = self.params.generation_size
        return CodedPacket(
            generation=self.generation,
            coefficients=combined[:size].copy(),
            payload=combined[size:].copy(),
        )

    def random_combinations(self, rng: np.random.Generator,
                            count: int) -> list[CodedPacket]:
        """``count`` fresh uniform mixtures in one batched kernel call.

        RNG-stream compatible with ``count`` sequential calls to
        :meth:`random_combination`: the scalar vectors are drawn one
        draw per mixture in the same order, so under a shared seed the
        emitted packets are bit-identical — only the GF work is batched
        (one :func:`~repro.gf.kernels.combine_rows` gemm instead of
        ``count`` separate mixes).  Returns ``[]`` on an empty basis.
        """
        if self.rank == 0 or count <= 0:
            return []
        scalars = np.empty((count, self.rank), dtype=np.uint8)
        for i in range(count):
            scalars[i] = rng.integers(1, FIELD_SIZE, size=self.rank,
                                      dtype=np.uint8)
        return self.mixtures(scalars)

    def mixture_rows(self, scalars: np.ndarray) -> np.ndarray:
        """Raw mixture matrix ``(m, size + payload)`` for pre-drawn scalars.

        One :func:`~repro.gf.kernels.combine_rows` gemm; row ``i`` is
        ``[coefficients | payload]`` of mixture ``i``.  The returned
        array is freshly allocated (only the gemm intermediates live in
        the workspace), so callers may keep views into it — this is the
        zero-copy source both for batched packets (:meth:`mixtures`)
        and for direct wire-frame encoding
        (:func:`repro.net.framing.encode_mixture_frames`).
        """
        return combine_rows(scalars, self._rows[: self.rank],
                            workspace=self._workspace)

    def mixtures(self, scalars: np.ndarray,
                 origin: int = -1) -> list[CodedPacket]:
        """Mix pre-drawn scalar rows over the basis, one gemm for all.

        ``scalars`` is ``(m, rank)`` uint8 — callers that must
        interleave their own RNG draws (the recoder's generation picks)
        draw the rows themselves and batch only the mixing here.
        ``origin`` is stamped on every packet at construction so callers
        need no second pass over the batch.
        """
        if scalars.shape[0] == 0:
            return []
        combined = self.mixture_rows(scalars)
        size = self.params.generation_size
        generation = self.generation
        coeffs = combined[:, :size]
        payloads = combined[:, size:]
        trusted = CodedPacket.trusted
        return [
            trusted(generation, coeffs[i], payloads[i], origin=origin)
            for i in range(scalars.shape[0])
        ]

    def basis_packet(self, index: int) -> CodedPacket:
        """One buffered basis row as a packet (no full-list materialisation)."""
        if not 0 <= index < self.rank:
            raise IndexError(f"basis row {index} out of range (rank {self.rank})")
        size = self.params.generation_size
        row = self._rows[index]
        return CodedPacket(
            generation=self.generation,
            coefficients=row[:size].copy(),
            payload=row[size:].copy(),
        )

    def basis_packets(self) -> list[CodedPacket]:
        """Current basis as packets (used by recoders sharing the buffer)."""
        return [self.basis_packet(index) for index in range(self.rank)]

    def coefficient_rows(self) -> np.ndarray:
        """Read-only view of the basis coefficient rows (rank x size)."""
        return self._rows[: self.rank, : self.params.generation_size]


class Decoder:
    """Multi-generation decoder for a whole content object."""

    def __init__(self, params: GenerationParams, generation_count: int) -> None:
        if generation_count < 1:
            raise ValueError("generation_count must be >= 1")
        self.params = params
        self.generations = [GenerationDecoder(g, params) for g in range(generation_count)]

    def push(self, packet: CodedPacket) -> bool:
        """Route a packet to its generation decoder; True iff innovative."""
        if not 0 <= packet.generation < len(self.generations):
            raise ValueError(f"unknown generation {packet.generation}")
        return self.generations[packet.generation].push(packet)

    @property
    def is_complete(self) -> bool:
        """True once every generation decodes."""
        return all(g.is_complete for g in self.generations)

    @property
    def total_rank(self) -> int:
        """Sum of per-generation ranks (degrees of freedom collected)."""
        return sum(g.rank for g in self.generations)

    @property
    def total_dof(self) -> int:
        """Total degrees of freedom needed for full decoding."""
        return len(self.generations) * self.params.generation_size

    def progress(self) -> float:
        """Fraction of degrees of freedom collected, in [0, 1]."""
        return self.total_rank / self.total_dof

    def recover(self, content_length: int) -> bytes:
        """Reassemble the original content bytes; requires completeness."""
        blocks = [g.decoded_block() for g in self.generations]
        return join_content(blocks, content_length)
