"""Progressive Gaussian-elimination decoder.

The decoder maintains, per generation, an augmented matrix
``[coefficients | payload]`` kept permanently in reduced row echelon form.
Each arriving packet is reduced against the current basis; *innovative*
packets (those that increase rank) are inserted, everything else is
discarded.  When the rank reaches the generation size the original block
is recovered directly from the RREF.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..gf.field import addmul_row
from ..gf.tables import INV, MUL
from .generation import GenerationParams
from .packet import CodedPacket, SourceBlock


class GenerationDecoder:
    """Decoder state for a single generation."""

    def __init__(self, generation: int, params: GenerationParams) -> None:
        self.generation = generation
        self.params = params
        size = params.generation_size
        width = size + params.payload_size
        # Row i, when present, has its pivot at column pivot_cols[i].
        self._rows = np.zeros((size, width), dtype=np.uint8)
        self._pivot_of_row: list[Optional[int]] = [None] * size
        self._row_of_pivot: dict[int, int] = {}
        self.rank = 0
        self.received = 0
        self.innovative = 0

    @property
    def is_complete(self) -> bool:
        """True once the generation can be fully decoded."""
        return self.rank == self.params.generation_size

    def _reduce(self, coefficients: np.ndarray, payload: np.ndarray) -> np.ndarray:
        """Reduce a packet against the current basis; returns the full row."""
        row = np.concatenate([coefficients, payload]).astype(np.uint8)
        size = self.params.generation_size
        # Basis rows are zero at every pivot column but their own, so one
        # increasing pass fully clears the row at all existing pivots; the
        # first remaining nonzero (if any) is a brand-new pivot.
        for col in range(size):
            value = int(row[col])
            if value == 0:
                continue
            basis_row = self._row_of_pivot.get(col)
            if basis_row is None:
                continue  # candidate new pivot; keep clearing later pivots
            addmul_row(row, self._rows[basis_row], value)
        return row

    def push(self, packet: CodedPacket) -> bool:
        """Consume a packet; returns True iff it was innovative."""
        if packet.generation != self.generation:
            raise ValueError("packet belongs to a different generation")
        self.received += 1
        if self.is_complete:
            return False
        row = self._reduce(packet.coefficients, packet.payload)
        size = self.params.generation_size
        pivot = -1
        for col in range(size):
            if row[col]:
                pivot = col
                break
        if pivot < 0:
            return False  # non-innovative
        # Normalise the pivot to 1.
        pivot_value = int(row[pivot])
        if pivot_value != 1:
            inv = int(INV[pivot_value])
            row = MUL[inv, row]
        slot = self.rank
        self._rows[slot] = row
        self._pivot_of_row[slot] = pivot
        self._row_of_pivot[pivot] = slot
        self.rank += 1
        self.innovative += 1
        # Back-substitute: clear column `pivot` from existing rows.
        for other in range(slot):
            value = int(self._rows[other][pivot])
            if value:
                addmul_row(self._rows[other], row, value)
        return True

    def decoded_block(self) -> SourceBlock:
        """Recover the original source block; requires completeness."""
        if not self.is_complete:
            raise RuntimeError(
                f"generation {self.generation} rank {self.rank}"
                f"/{self.params.generation_size}: not decodable yet"
            )
        size = self.params.generation_size
        data = np.zeros((size, self.params.payload_size), dtype=np.uint8)
        for row_index in range(size):
            pivot = self._pivot_of_row[row_index]
            assert pivot is not None
            data[pivot] = self._rows[row_index][size:]
        return SourceBlock(generation=self.generation, data=data)

    def random_combination(self, rng: np.random.Generator) -> Optional[CodedPacket]:
        """Fresh uniform random mixture of the current basis (fast path).

        Computes the combination in one vectorised pass over the stored
        RREF rows, avoiding per-row packet materialisation.  Returns None
        when the basis is empty.
        """
        if self.rank == 0:
            return None
        from ..gf.tables import FIELD_SIZE

        scalars = rng.integers(1, FIELD_SIZE, size=self.rank, dtype=np.uint8)
        rows = self._rows[: self.rank]
        mixed = MUL[scalars[:, None], rows]
        combined = np.bitwise_xor.reduce(mixed, axis=0)
        size = self.params.generation_size
        return CodedPacket(
            generation=self.generation,
            coefficients=combined[:size].copy(),
            payload=combined[size:].copy(),
        )

    def basis_packets(self) -> list[CodedPacket]:
        """Current basis as packets (used by recoders sharing the buffer)."""
        size = self.params.generation_size
        packets = []
        for row_index in range(self.rank):
            row = self._rows[row_index]
            packets.append(
                CodedPacket(
                    generation=self.generation,
                    coefficients=row[:size].copy(),
                    payload=row[size:].copy(),
                )
            )
        return packets


class Decoder:
    """Multi-generation decoder for a whole content object."""

    def __init__(self, params: GenerationParams, generation_count: int) -> None:
        if generation_count < 1:
            raise ValueError("generation_count must be >= 1")
        self.params = params
        self.generations = [GenerationDecoder(g, params) for g in range(generation_count)]

    def push(self, packet: CodedPacket) -> bool:
        """Route a packet to its generation decoder; True iff innovative."""
        if not 0 <= packet.generation < len(self.generations):
            raise ValueError(f"unknown generation {packet.generation}")
        return self.generations[packet.generation].push(packet)

    @property
    def is_complete(self) -> bool:
        """True once every generation decodes."""
        return all(g.is_complete for g in self.generations)

    @property
    def total_rank(self) -> int:
        """Sum of per-generation ranks (degrees of freedom collected)."""
        return sum(g.rank for g in self.generations)

    @property
    def total_dof(self) -> int:
        """Total degrees of freedom needed for full decoding."""
        return len(self.generations) * self.params.generation_size

    def progress(self) -> float:
        """Fraction of degrees of freedom collected, in [0, 1]."""
        return self.total_rank / self.total_dof

    def recover(self, content_length: int) -> bytes:
        """Reassemble the original content bytes; requires completeness."""
        from .generation import join_content

        blocks = [g.decoded_block() for g in self.generations]
        return join_content(blocks, content_length)
