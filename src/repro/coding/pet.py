"""Priority Encoding Transmission (Albanese–Blömer–Edmonds–Luby–Sudan [2]).

§5: heterogeneous users plus PET let "users with higher bandwidth
connections get higher resolution broadcasts", and PET "allows graceful
degradation of quality with network failures, as described in [5]".

The construction: the content is split into priority *layers*; each
layer ``ℓ`` is protected by an ``(n, m_ℓ)`` MDS code across the same
``n`` stripes, with more important layers given smaller thresholds
``m_ℓ``.  A stripe is the concatenation of its per-layer shares, so
*any* ``r`` stripes decode exactly the layers with ``m_ℓ ≤ r`` — quality
degrades in clean steps with the number of stripes received, and a
receiver's bandwidth class (how many overlay threads it affords)
determines its resolution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..baselines.erasure import MDSCode


@dataclass(frozen=True)
class PETLayer:
    """One priority layer.

    Attributes:
        name: Label ("base", "enhance-1", ...).
        threshold: Stripes required to decode this layer (``m_ℓ``);
            smaller = higher priority = more redundancy = more stripe
            budget per content byte.
        data: The layer's content bytes.
    """

    name: str
    threshold: int
    data: bytes

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError("threshold must be >= 1")


@dataclass(frozen=True)
class _LayerGeometry:
    layer: PETLayer
    share_bytes: int  # bytes of this layer carried per stripe
    code: MDSCode


class PETEncoder:
    """Encode priority layers into ``n`` equal stripes.

    Args:
        layers: The layers, any order; thresholds must not exceed ``n``.
        n: Stripe count (≤ 255; one stripe per overlay thread/unit).
    """

    def __init__(self, layers: list[PETLayer], n: int) -> None:
        if not layers:
            raise ValueError("need at least one layer")
        if len({layer.name for layer in layers}) != len(layers):
            raise ValueError("layer names must be unique")
        self.n = n
        self._geometry: list[_LayerGeometry] = []
        for layer in layers:
            if layer.threshold > n:
                raise ValueError(
                    f"layer {layer.name!r} threshold {layer.threshold} > n={n}"
                )
            share = max(1, math.ceil(len(layer.data) / layer.threshold))
            self._geometry.append(
                _LayerGeometry(
                    layer=layer,
                    share_bytes=share,
                    code=MDSCode(n=n, m=layer.threshold),
                )
            )

    @property
    def stripe_bytes(self) -> int:
        """Length of each stripe (sum of per-layer shares)."""
        return sum(g.share_bytes for g in self._geometry)

    @property
    def overhead(self) -> float:
        """Total stripe bytes emitted divided by raw content bytes."""
        raw = sum(len(g.layer.data) for g in self._geometry)
        return self.n * self.stripe_bytes / raw if raw else 0.0

    def encode(self) -> np.ndarray:
        """Produce the ``(n, stripe_bytes)`` stripe matrix."""
        parts = []
        for geometry in self._geometry:
            source = np.zeros(
                (geometry.layer.threshold, geometry.share_bytes), dtype=np.uint8
            )
            flat = np.frombuffer(geometry.layer.data, dtype=np.uint8)
            source.reshape(-1)[: flat.size] = flat
            parts.append(geometry.code.encode(source))
        return np.concatenate(parts, axis=1)

    def decode(
        self,
        stripe_indices: list[int],
        stripes: np.ndarray,
    ) -> dict[str, bytes | None]:
        """Recover every layer the received stripes allow.

        Args:
            stripe_indices: Which stripes these are (rows of the encode
                output).
            stripes: The received stripe contents, one row per index.

        Returns ``layer name -> bytes`` for decodable layers
        (``threshold <= len(stripe_indices)``) and ``None`` for the rest
        — the graceful-degradation staircase.
        """
        stripes = np.asarray(stripes, dtype=np.uint8)
        if stripes.shape[0] != len(stripe_indices):
            raise ValueError("one stripe row per index required")
        if stripes.ndim != 2 or stripes.shape[1] != self.stripe_bytes:
            raise ValueError(f"stripes must be (r, {self.stripe_bytes})")
        result: dict[str, bytes | None] = {}
        offset = 0
        received = len(stripe_indices)
        for geometry in self._geometry:
            share = geometry.share_bytes
            if received >= geometry.layer.threshold:
                region = stripes[:, offset : offset + share]
                source = geometry.code.decode(list(stripe_indices), region)
                result[geometry.layer.name] = (
                    source.reshape(-1)[: len(geometry.layer.data)].tobytes()
                )
            else:
                result[geometry.layer.name] = None
            offset += share
        return result

    def decodable_layers(self, received: int) -> list[str]:
        """Layer names decodable from ``received`` stripes."""
        return [
            g.layer.name for g in self._geometry if g.layer.threshold <= received
        ]
