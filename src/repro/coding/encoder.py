"""Source encoder: the server side of the RLNC data plane.

The encoder owns the original :class:`~repro.coding.packet.SourceBlock` of
each generation and emits either systematic packets (the originals, sent
once each at the start — standard practice from [5]) or uniformly random
linear combinations.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from ..gf.kernels import Workspace, combine_rows, mix_rows
from ..gf.tables import FIELD_SIZE
from .generation import GenerationParams, split_content
from .packet import CodedPacket, SourceBlock


class SourceEncoder:
    """Emits coded packets for a piece of content.

    Args:
        content: The raw bytes to broadcast.
        params: Generation geometry.
        rng: Seeded generator; all coding randomness flows through it.
        systematic_first: If true, the first ``generation_size`` packets
            emitted for each generation are the unmixed originals.
    """

    def __init__(
        self,
        content: bytes,
        params: GenerationParams,
        rng: np.random.Generator,
        systematic_first: bool = False,
    ) -> None:
        self.params = params
        self.content_length = len(content)
        self.blocks: list[SourceBlock] = split_content(content, params)
        self._rng = rng
        self._systematic_first = systematic_first
        self._systematic_cursor = {block.generation: 0 for block in self.blocks}
        self._workspace = Workspace()

    @property
    def generation_count(self) -> int:
        """Number of generations the content was split into."""
        return len(self.blocks)

    def emit(self, generation: Optional[int] = None) -> CodedPacket:
        """Emit one coded packet.

        If ``generation`` is None the encoder round-robins over
        generations in proportion to a uniform draw (every generation is
        equally hot; schedulers that want sequential delivery pass an
        explicit generation).
        """
        if generation is None:
            generation = int(self._rng.integers(0, self.generation_count))
        block = self.blocks[generation]
        cursor = self._systematic_cursor[generation]
        if self._systematic_first and cursor < block.generation_size:
            self._systematic_cursor[generation] = cursor + 1
            packet = block.source_packet(cursor)
            packet.origin = -1
            return packet
        coefficients = self._rng.integers(
            0, FIELD_SIZE, size=block.generation_size, dtype=np.uint8
        )
        if not coefficients.any():
            # A zero vector carries nothing; force one nonzero entry.
            coefficients[int(self._rng.integers(0, block.generation_size))] = 1
        # One batched mixture over the whole block — no per-source-row loop.
        payload = mix_rows(coefficients, block.data, workspace=self._workspace)
        return CodedPacket(
            generation=generation, coefficients=coefficients, payload=payload, origin=-1
        )

    def emit_batch(self, count: int,
                   generation: Optional[int] = None) -> list[CodedPacket]:
        """Emit ``count`` packets with one mixing gemm per generation.

        RNG-stream identical to ``count`` sequential :meth:`emit` calls —
        the generation draw, the systematic-cursor fast path, the
        coefficient draw, and the zero-vector fixup all happen per packet
        in the same order; only the payload mixing is deferred and
        batched (one :func:`~repro.gf.kernels.combine_rows` per distinct
        generation touched).
        """
        if count <= 0:
            return []
        packets: list[Optional[CodedPacket]] = [None] * count
        pending: dict[int, list[tuple[int, np.ndarray]]] = {}
        for i in range(count):
            gen = generation
            if gen is None:
                gen = int(self._rng.integers(0, self.generation_count))
            block = self.blocks[gen]
            cursor = self._systematic_cursor[gen]
            if self._systematic_first and cursor < block.generation_size:
                self._systematic_cursor[gen] = cursor + 1
                packet = block.source_packet(cursor)
                packet.origin = -1
                packets[i] = packet
                continue
            coefficients = self._rng.integers(
                0, FIELD_SIZE, size=block.generation_size, dtype=np.uint8
            )
            if not coefficients.any():
                coefficients[int(self._rng.integers(0, block.generation_size))] = 1
            pending.setdefault(gen, []).append((i, coefficients))
        for gen, items in pending.items():
            block = self.blocks[gen]
            coeffs = np.stack([c for _, c in items])
            # combine_rows allocates a fresh output (the workspace only
            # holds intermediates), so packets keep row views of it.
            payloads = combine_rows(coeffs, block.data,
                                    workspace=self._workspace)
            for (i, coefficients), payload in zip(items, payloads):
                packets[i] = CodedPacket.trusted(
                    gen, coefficients, payload, origin=-1,
                )
        return [p for p in packets if p is not None]

    def stream(self, generation: Optional[int] = None) -> Iterator[CodedPacket]:
        """Infinite iterator of coded packets (``emit`` in a loop)."""
        while True:
            yield self.emit(generation)
