"""Events: everything a driver can tell a data-plane engine.

As in :mod:`repro.protocol.events`, an event is a plain immutable
record narrating something that happened in the outside world — a
coded packet arrived, a downstream subscriber attached, a clocked slot
wants an emission.  The engines never look at a socket or a clock;
connection drivers feed arrival-shaped events (:class:`PacketArrived`,
:class:`ChildAttached`, :class:`IdlePoll`) and clocked drivers feed
schedule-shaped ones (:class:`EmitRound`, :class:`PullEmit`).

``child``/``destination`` identities are opaque hashables owned by the
driver — a ``(node_id, column)`` pair on the live transport, a bare
node id in the slotted simulator.  The engines only use them to keep
fan-out order and per-edge policy state.

Unlike the control-plane vocabulary these records ride the per-packet
hot path (one event per arrival, per pull, per slot edge), so they are
:class:`~typing.NamedTuple` subclasses rather than frozen dataclasses:
construction is a C-level tuple fill, with the same field names, repr
format, equality, and hashability.
"""

from __future__ import annotations

from typing import Hashable, NamedTuple, Optional

__all__ = [
    "ChildAttached",
    "ChildDetached",
    "EmitRound",
    "Event",
    "IdlePoll",
    "PacketArrived",
    "PullEmit",
]


class PacketArrived(NamedTuple):
    """An upstream coded packet landed at this node.

    ``now`` is the driver's clock (slot number, virtual seconds, wall
    seconds) and is only echoed into bookkeeping — the engines are
    clockless.
    """

    packet: object
    now: float = 0.0


class ChildAttached(NamedTuple):
    """A downstream subscriber attached (a child dialed its data
    connection; a repaired node re-clipped below us).  Triggers the
    engine's seed-burst and, under an idle-filling policy, a
    :class:`~repro.dataplane.effects.RequestIdle`."""

    child: Hashable
    column: Optional[int] = None


class ChildDetached(NamedTuple):
    """The subscriber is gone; forget its fan-out slot and policy
    state."""

    child: Hashable


class IdlePoll(NamedTuple):
    """The driver's outbound pump for ``child`` has been idle for a
    keep-alive period and offers to carry a data-bearing packet instead
    of an empty heartbeat.  Only drivers that honoured a
    :class:`~repro.dataplane.effects.RequestIdle` ask this."""

    child: Hashable


class EmitRound(NamedTuple):
    """Clocked source cadence: one emission round toward the currently
    attached ``targets`` (one packet each, one generation per round,
    scheduled round-robin).  The round counter advances even when no
    target is attached — generation scheduling is time-based, not
    demand-based."""

    targets: tuple = ()


class PullEmit(NamedTuple):
    """Clocked per-edge emission: a slotted driver asks for the packet
    to put on the edge toward ``destination`` this slot.  Subject to
    the engine's :class:`~repro.dataplane.policy.ForwardPolicy` — an
    innovation-gated relay may decline (no effect)."""

    destination: Hashable


#: Anything ``handle`` accepts.
Event = object
