"""Forwarding policies: when does a relay put a mixture on an edge?

PR 6 grew an ``"innovative"`` forwarding mode inside ``net/peer.py``
only — the live transport could bound its fan-out at rank × children
while the simulator stayed eager-only.  The policy objects here lift
that decision to the engine layer so every incarnation shares it.

A policy answers three questions, one per driver shape:

* :meth:`ForwardPolicy.forward_on` — push mode (arrival-triggered
  fan-out): should this arrival be recoded toward the children?
* :attr:`ForwardPolicy.wants_idle` — should the driver fill idle
  child links with data-bearing keep-alives
  (:class:`~repro.dataplane.effects.RequestIdle` /
  :class:`~repro.dataplane.events.IdlePoll`)?  Gated policies need
  this: a child left short by a dependent mixture would otherwise
  starve until the parent's next rank raise.
* :attr:`ForwardPolicy.pull_without_credit` — pull mode (clocked
  per-edge slots): may the engine emit on an edge with no new
  innovation since its last emission there?  The eager answer is yes
  (the paper's constant per-thread flow); the innovative answer is no,
  which translates arrival-gating into the slotted world as
  per-destination *innovation credit* (plus a ``seed_burst`` of
  unconditional packets per fresh edge).

Withholding is always safe for the *swarm*: a recoded packet lies in
the span of its sender's buffer, so peer-to-peer transfers never grow
the union span — swarm full-rank time depends only on server
emissions, which no relay policy touches (the hypothesis suite pins
this).
"""

from __future__ import annotations

from typing import Union

__all__ = [
    "FORWARD_POLICIES",
    "EagerPolicy",
    "ForwardPolicy",
    "InnovativePolicy",
    "resolve_policy",
]


class ForwardPolicy:
    """Base interface; subclasses are stateless and shareable."""

    #: CLI / config spelling.
    name: str = "abstract"
    #: Ask the driver to fill idle child links with fresh mixtures.
    wants_idle: bool = False
    #: Pull-mode edges may emit without fresh innovation credit.
    pull_without_credit: bool = True

    def forward_on(self, innovative: bool) -> bool:
        """Push mode: fan this arrival out to the children?"""
        raise NotImplementedError

    def __repr__(self) -> str:  # noqa: D105
        return f"{type(self).__name__}()"


class EagerPolicy(ForwardPolicy):
    """Recode toward every child on every arrival — the paper's
    constant per-thread flow.  Fine on rate-limited real links;
    multiplies per hop on an infinitely fast virtual network."""

    name = "eager"
    wants_idle = False
    pull_without_credit = True

    def forward_on(self, innovative: bool) -> bool:
        return True


class InnovativePolicy(ForwardPolicy):
    """Fan out only on rank-raising arrivals, bounding total forwards
    per node at rank × children — the swarm harness's scale mode.
    Idle keep-alive packets cover the rare child left short by a
    dependent-mixture tail."""

    name = "innovative"
    wants_idle = True
    pull_without_credit = False

    def forward_on(self, innovative: bool) -> bool:
        return innovative


#: Accepted ``forward_policy`` spellings, in CLI display order.
FORWARD_POLICIES = ("eager", "innovative")

_BY_NAME = {
    EagerPolicy.name: EagerPolicy(),
    InnovativePolicy.name: InnovativePolicy(),
}


def resolve_policy(policy: Union[str, ForwardPolicy]) -> ForwardPolicy:
    """Map a config spelling (or a policy instance) to a policy object."""
    if isinstance(policy, ForwardPolicy):
        return policy
    resolved = _BY_NAME.get(policy)
    if resolved is None:
        raise ValueError(
            f"unknown forward_policy {policy!r} (expected one of "
            f"{', '.join(FORWARD_POLICIES)})"
        )
    return resolved
