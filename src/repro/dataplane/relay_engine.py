"""The peer side of the RLNC data plane as a sans-IO engine.

:class:`RelayEngine` owns every relay-side data-plane decision exactly
once — the receive gate, the forward/withhold choice, the recode
fan-out shape, completion — around a
:class:`~repro.coding.recoder.Recoder` it is handed (the recoder owns
the RNG and the RREF buffer; the engine owns the policy and the
bookkeeping).  Two driver shapes pump it:

* **push** (live transport, virtual net): :class:`ChildAttached` /
  :class:`ChildDetached` maintain the fan-out list, every
  :class:`PacketArrived` triggers a recode toward the attached
  children (subject to the :class:`~repro.dataplane.policy.ForwardPolicy`),
  and :class:`IdlePoll` backfills gated links;
* **pull** (slotted simulator): no children are attached, so arrivals
  only ingest, and the clocked driver requests each edge's emission
  with :class:`PullEmit` — which the policy may decline via the
  per-destination innovation-credit translation of arrival gating.

RNG discipline: the engine reproduces the pre-refactor inline paths'
draw orders exactly — seed-bursts are sequential :meth:`Recoder.emit`
calls, batched fan-out is one :meth:`Recoder.emit_rows` call sized to
the child count, pull emissions are one :meth:`Recoder.emit` each —
so every seeded golden survives the refactor byte-identical.
"""

from __future__ import annotations

from typing import Hashable, Optional, Union

from ..coding.recoder import Recoder
from .effects import Effect, EmitToChildren, Ingested, MarkComplete, RequestIdle
from .events import (
    ChildAttached,
    ChildDetached,
    Event,
    IdlePoll,
    PacketArrived,
    PullEmit,
)
from .policy import ForwardPolicy, resolve_policy

__all__ = ["RelayEngine"]


class RelayEngine:
    """Pure event-in/effect-out relay data-plane state machine.

    Args:
        recoder: The buffer/codec state.  Owned by the engine; drivers
            read it (rank, recovered content) but route every data-plane
            mutation through :meth:`handle`.
        policy: Forwarding policy name or instance (``"eager"`` /
            ``"innovative"``).
        batched: Fan out through :meth:`Recoder.emit_rows` (one gemm
            per generation, mixtures framed straight off the matrix)
            instead of per-child :meth:`Recoder.emit` packets.  Both
            are RNG-stream identical.
        seed_burst: Packets emitted toward a child the moment it
            attaches — push drivers always seed at least one (a child
            of an already-complete parent must not wait for upstream
            innovation); pull mode uses it as the per-edge
            unconditional-packet allowance before innovation credit is
            required.
    """

    # Fixed attribute layout: the engine is instantiated per node (10k
    # of them in the churn soak) and its attributes are read on every
    # packet, so slots buy both memory and hot-path attribute speed.
    __slots__ = (
        "recoder", "policy", "batched", "seed_burst",
        "received", "innovative", "forwarded", "idle_emits", "completed",
        "_children", "_children_tuple", "_epoch", "_pull_sent",
        "_pull_gated", "_forward_innovative", "_forward_duplicates",
        "_rank", "_log", "_flight", "_obs", "_taps",
    )

    def __init__(
        self,
        recoder: Recoder,
        *,
        policy: Union[str, ForwardPolicy] = "eager",
        batched: bool = True,
        seed_burst: int = 1,
    ) -> None:
        if seed_burst < 0:
            raise ValueError("seed_burst must be >= 0")
        self.recoder = recoder
        self.policy = resolve_policy(policy)
        self.batched = batched
        self.seed_burst = seed_burst
        #: data-plane counters — the one authoritative copy (PeerStats,
        #: RlncBehavior and NodeReport all read these now)
        self.received = 0
        self.innovative = 0
        self.forwarded = 0
        self.idle_emits = 0
        self.completed = False
        #: child -> column, in attach order == fan-out order (mirrors
        #: the live driver's pump dict; re-attach moves to the end)
        self._children: dict[Hashable, Optional[int]] = {}
        # Fan-out tuple rebuilt on (rare) attach/detach so the
        # per-arrival path never re-materialises the dict's keys.
        self._children_tuple: tuple = ()
        #: bumped once per innovative ingest; the pull-mode credit pool
        #: (push mode forwards once per innovative arrival per child, so
        #: pull mode lets each edge take ``seed_burst`` + one emission
        #: per innovative arrival)
        self._epoch = 0
        self._pull_sent: dict[Hashable, int] = {}
        # Policy verdicts hoisted out of the per-packet paths (the
        # policy is fixed at construction).
        self._pull_gated = not self.policy.pull_without_credit
        self._forward_innovative = self.policy.forward_on(True)
        self._forward_duplicates = self.policy.forward_on(False)
        # Rank mirrored incrementally (an innovative arrival raises it
        # by exactly one) so the per-packet Ingested effect never walks
        # the per-generation decoders.
        self._rank = recoder.decoder.total_rank
        # Observer taps (``log``/``flight``/``obs`` properties below).
        # The recording hooks are collapsed into one tuple so the
        # untapped hot path pays a single truthiness check per event.
        self._log = None
        self._flight = None
        self._obs = None
        self._taps: tuple = ()

    # ------------------------------------------------------------------
    # Introspection

    @property
    def rank(self) -> int:
        """Degrees of freedom collected so far."""
        return self._rank

    @property
    def needed(self) -> int:
        """Degrees of freedom required for a full decode."""
        return self.recoder.decoder.total_dof

    @property
    def children(self) -> tuple:
        """Attached child identities, in fan-out order."""
        return self._children_tuple

    # ------------------------------------------------------------------
    # Observer taps.  Plain-attribute assignment (``engine.log = ...``)
    # still works — the setters just refresh the collapsed hook tuple
    # the hot path checks.

    def _retap(self) -> None:
        hooks = []
        if self._log is not None:
            hooks.append(self._log.record)
        if self._flight is not None:
            hooks.append(self._flight.record)
        if self._obs is not None:
            hooks.append(self._obs.record_step)
        self._taps = tuple(hooks)

    @property
    def log(self):
        """Optional event/effect recorder (conformance and replay)."""
        return self._log

    @log.setter
    def log(self, value) -> None:
        self._log = value
        self._retap()

    @property
    def flight(self):
        """Optional bounded ring of recent steps (duck-typed ``record``)."""
        return self._flight

    @flight.setter
    def flight(self, value) -> None:
        self._flight = value
        self._retap()

    @property
    def obs(self):
        """Optional instrument bundle (duck-typed ``record_step``, e.g.
        ``obs.DataplaneInstruments``) — the engine never imports
        ``repro.obs``."""
        return self._obs

    @obs.setter
    def obs(self, value) -> None:
        self._obs = value
        self._retap()

    # ------------------------------------------------------------------

    def handle(self, event: Event) -> list[Effect]:
        """Advance the state machine by one event."""
        # Exact-type table dispatch: the event vocabulary is closed (no
        # driver subclasses an event) and this runs once per packet, so
        # it beats an isinstance chain on the hot path.
        handler = _HANDLERS.get(event.__class__)
        effects = handler(self, event) if handler is not None else []
        taps = self._taps
        if taps:
            for record in taps:
                record(event, effects)
        return effects

    # ------------------------------------------------------------------
    # Receive gate + push-mode fan-out

    def _on_packet(self, event: PacketArrived) -> list[Effect]:
        packet = event.packet
        self.received += 1
        innovative = self.recoder.receive(packet)
        if innovative:
            self.innovative += 1
            self._epoch += 1
            self._rank += 1
        # ``_make`` is ``tuple.__new__`` — the per-packet constructions
        # skip the keyword-handling ``__new__`` wrapper.
        effects: list[Effect] = [
            Ingested._make((packet.generation, innovative, self._rank))
        ]
        children = self._children_tuple
        if children and (
            self._forward_innovative if innovative
            else self._forward_duplicates
        ):
            if self.batched:
                groups = self.recoder.emit_rows(len(children))
                emitted = 0
                for _generation, _rows, positions in groups:
                    emitted += len(positions)
                if emitted:
                    self.forwarded += emitted
                    effects.append(EmitToChildren._make(
                        (children, None, tuple(groups))
                    ))
            else:
                packets = []
                for _ in children:
                    mixture = self.recoder.emit()
                    if mixture is None:
                        break
                    packets.append(mixture)
                if packets:
                    self.forwarded += len(packets)
                    effects.append(EmitToChildren(
                        children[:len(packets)], tuple(packets)
                    ))
        if (
            innovative
            and not self.completed
            and self.recoder.decoder.is_complete
        ):
            self.completed = True
            effects.append(MarkComplete(self.needed))
        return effects

    # ------------------------------------------------------------------
    # Pull-mode (clocked per-edge) emission

    def _on_pull(self, event: PullEmit) -> list[Effect]:
        destination = event.destination
        if self._pull_gated:
            sent = self._pull_sent.get(destination, 0)
            if sent >= self.seed_burst + self._epoch:
                return []
            packet = self.recoder.emit()
            if packet is None:
                return []
            self._pull_sent[destination] = sent + 1
        else:
            packet = self.recoder.emit()
            if packet is None:
                return []
        self.forwarded += 1
        return [EmitToChildren._make(((destination,), (packet,), None))]

    # ------------------------------------------------------------------
    # Push-mode child lifecycle

    def _on_attach(self, event: ChildAttached) -> list[Effect]:
        child = event.child
        # Pop-then-reinsert so a re-attaching child moves to the end of
        # the fan-out order, exactly as the live driver's pump dict did.
        self._children.pop(child, None)
        self._children[child] = event.column
        self._children_tuple = tuple(self._children)
        self._pull_sent.pop(child, None)
        effects: list[Effect] = []
        if self.policy.wants_idle:
            effects.append(RequestIdle(child))
        # Seed the child immediately rather than waiting for the next
        # upstream arrival (matters when upstream is already complete).
        packets = []
        for _ in range(max(1, self.seed_burst)):
            packet = self.recoder.emit()
            if packet is None:
                break
            packets.append(packet)
        if packets:
            self.forwarded += len(packets)
            effects.append(EmitToChildren(
                (child,) * len(packets), packets=tuple(packets)
            ))
        return effects

    def _on_detach(self, event: ChildDetached) -> list[Effect]:
        self._children.pop(event.child, None)
        self._children_tuple = tuple(self._children)
        self._pull_sent.pop(event.child, None)
        return []

    def _on_idle(self, event: IdlePoll) -> list[Effect]:
        # Idle fills are keep-alive substitutes, not fan-out: they are
        # counted separately and never in ``forwarded``.
        packet = self.recoder.emit()
        if packet is None:
            return []
        self.idle_emits += 1
        return [EmitToChildren((event.child,), packets=(packet,))]


_HANDLERS = {
    PacketArrived: RelayEngine._on_packet,
    PullEmit: RelayEngine._on_pull,
    ChildAttached: RelayEngine._on_attach,
    ChildDetached: RelayEngine._on_detach,
    IdlePoll: RelayEngine._on_idle,
}
