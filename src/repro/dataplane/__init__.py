"""The sans-IO data-plane core shared by every transport incarnation.

:mod:`repro.protocol` unified the *control plane* — who joins, who
repairs, who complains.  This package is its data-plane sibling: the
receive → innovation gate → recode → fan-out → completion pipeline that
used to be written three separate times (the slotted simulator's
``RlncBehavior``, the live ``PeerNode``/``ServerNode`` pumps, and the
virtual-network chaos tier running the latter) now lives in two pure
state machines:

* :class:`SourceEngine` — the server side: generation scheduling
  (round-robin for clocked stream loops, uniform draws for pull-mode
  drivers) and per-child emission over a
  :class:`~repro.coding.encoder.SourceEncoder`, with an optional
  seed-burst toward freshly attached children;
* :class:`RelayEngine` — the peer side: per-packet receive with
  innovation gating, rank/needed/completion bookkeeping, recode
  fan-out through the batched
  :meth:`~repro.coding.recoder.Recoder.emit_rows` path, idle/keepalive
  emit decisions, and a pluggable :class:`ForwardPolicy`
  (``eager``/``innovative``).

Engines consume :mod:`~repro.dataplane.events` and return
:mod:`~repro.dataplane.effects`; they never touch a socket, a clock, or
an event loop (``tools/check_layering.py`` holds this package to the
same contract as ``repro.protocol``).  Attach a
:class:`~repro.protocol.trace.EngineLog` (``engine.log = EngineLog()``)
to record the event/effect history — the cross-incarnation conformance
tests pin that the simulator and the virtual network produce identical
effect traces from the same delivery script.
"""

from ..protocol.trace import EngineLog, replay
from .effects import (
    Effect,
    EmitToChildren,
    Ingested,
    MarkComplete,
    RequestIdle,
)
from .events import (
    ChildAttached,
    ChildDetached,
    EmitRound,
    Event,
    IdlePoll,
    PacketArrived,
    PullEmit,
)
from .policy import (
    FORWARD_POLICIES,
    EagerPolicy,
    ForwardPolicy,
    InnovativePolicy,
    resolve_policy,
)
from .relay_engine import RelayEngine
from .source_engine import SourceEngine

__all__ = [
    "FORWARD_POLICIES",
    "ChildAttached",
    "ChildDetached",
    "EagerPolicy",
    "Effect",
    "EmitRound",
    "EmitToChildren",
    "EngineLog",
    "Event",
    "ForwardPolicy",
    "IdlePoll",
    "Ingested",
    "InnovativePolicy",
    "MarkComplete",
    "PacketArrived",
    "PullEmit",
    "RelayEngine",
    "RequestIdle",
    "SourceEngine",
    "replay",
]
