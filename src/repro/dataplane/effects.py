"""Effects: everything a data-plane engine can ask its driver to do.

Effects are data, not actions, returned by ``engine.handle(event)`` in
the exact order the driver must perform them (a seed-burst overtaking
the fan-out that followed it would reorder mixtures on the wire).
Drivers translate each effect into their transport's vocabulary — a
frame enqueued on a :class:`~repro.net.streams.PacketSender`, a payload
placed on a slotted edge — or ignore effects that have no meaning
there.

:class:`Ingested` is a notification effect in the
:class:`~repro.protocol.effects.ComplaintNoted` tradition: it carries
no obligation, but it is what makes effect traces comparable across
incarnations (every transport ingests the same packets through the
same gate) and what :class:`~repro.obs.DataplaneInstruments`
classifies.

Payload-bearing effects repr their packets and mixture-row groups as
``g<generation>#<crc32>`` digests rather than raw numpy arrays, so an
:class:`~repro.protocol.trace.EngineLog` trace stays golden-file
friendly while still pinning every byte.

Like :mod:`repro.dataplane.events`, these records are built on the
per-packet hot path (at least one :class:`Ingested` per arrival, one
:class:`EmitToChildren` per fan-out), so they are
:class:`~typing.NamedTuple` subclasses — same field names, reprs, and
equality as frozen dataclasses, at C-level construction cost.
"""

from __future__ import annotations

import zlib
from typing import Hashable, NamedTuple, Optional

__all__ = [
    "Effect",
    "EmitToChildren",
    "Ingested",
    "MarkComplete",
    "RequestIdle",
]


def _packet_digest(packet) -> str:
    """``g<generation>#<crc32 of coefficients+payload>`` for one packet."""
    crc = zlib.crc32(bytes(packet.coefficients))
    crc = zlib.crc32(bytes(packet.payload), crc)
    return f"g{packet.generation}#{crc & 0xFFFFFFFF:08x}"


def _group_digest(group) -> str:
    """Digest of one :meth:`~repro.coding.recoder.Recoder.emit_rows`
    group: generation, row count, and a CRC over the raw mixture rows."""
    generation, rows, positions = group
    crc = zlib.crc32(rows.tobytes())
    return f"g{generation}x{len(positions)}#{crc & 0xFFFFFFFF:08x}"


class EmitToChildren(NamedTuple):
    """Put fresh coded data on the wire toward ``children``, in order.

    Exactly one of the payload forms is set:

    * ``packets`` — one :class:`~repro.coding.packet.CodedPacket` per
      child (scalar path: seed-bursts, idle fills, pull-mode slots,
      unbatched fan-out).  ``children`` may repeat one child (a burst).
    * ``rows`` — :meth:`~repro.coding.recoder.Recoder.emit_rows`
      groups covering ``len(children)`` mixtures in draw order (the
      fused batched path: drivers frame them with
      ``encode_mixture_frames`` without building packet objects).
    """

    children: tuple
    packets: Optional[tuple] = None
    rows: Optional[tuple] = None

    @property
    def count(self) -> int:
        """Mixtures carried (== packets fanned out by the driver)."""
        if self.rows is not None:
            return sum(len(positions) for _, _, positions in self.rows)
        return len(self.packets) if self.packets is not None else 0

    def __repr__(self) -> str:  # noqa: D105 - digest form, see module doc
        if self.rows is not None:
            payload = "rows=[" + ", ".join(
                _group_digest(group) for group in self.rows) + "]"
        else:
            payload = "packets=[" + ", ".join(
                _packet_digest(packet) for packet in self.packets or ()) + "]"
        return f"EmitToChildren(children={self.children!r}, {payload})"


class MarkComplete(NamedTuple):
    """This node holds every degree of freedom: ``rank == needed``.
    Emitted exactly once; drivers fire their completion callbacks /
    record the completion slot."""

    needed: int


class RequestIdle(NamedTuple):
    """Ask the driver to fill idle periods toward ``child`` with
    data-bearing keep-alives: whenever its pump has been silent for a
    keep-alive interval, feed :class:`~repro.dataplane.events.IdlePoll`
    back and send the returned mixture.  Emitted on attach under
    policies that gate fan-out (the gated child must not starve on a
    dependent-mixture tail)."""

    child: Hashable


class Ingested(NamedTuple):
    """Notification: one packet passed the receive gate.  ``innovative``
    is the gate's verdict, ``rank`` the post-ingest degrees of freedom.
    No driver obligation — this is the conformance/observability
    backbone of the receive path."""

    generation: int
    innovative: bool
    rank: int


#: Anything ``handle`` returns.
Effect = object
