"""The server side of the RLNC data plane as a sans-IO engine.

:class:`SourceEngine` owns the source's scheduling decisions around a
:class:`~repro.coding.encoder.SourceEncoder` it is handed:

* **clocked stream drivers** (the live ``ServerNode`` loop) feed one
  :class:`EmitRound` per send interval; the engine serves generations
  round-robin off its round counter — which advances even when no
  column is attached, because generation scheduling is time-based, not
  demand-based — and emits one packet per attached target (batched
  through :meth:`SourceEncoder.emit_batch` or scalar, both RNG-stream
  identical);
* **slotted pull drivers** (the simulator's ``server_emit``) ask per
  edge with :class:`PullEmit`; the engine answers with a uniform
  generation draw, exactly the pre-refactor ``encoder.emit()`` call;
* :class:`ChildAttached` optionally seed-bursts a fresh subscriber
  (``seed_burst`` packets; default 0 — the live server has no burst,
  its round cadence reaches a new column within one interval).
"""

from __future__ import annotations

from .effects import Effect, EmitToChildren
from .events import ChildAttached, EmitRound, Event, PullEmit

__all__ = ["SourceEngine"]


class SourceEngine:
    """Pure event-in/effect-out source data-plane state machine.

    Args:
        encoder: The content owner.  Owned by the engine; drivers route
            every emission through :meth:`handle`.
        batched: Emit rounds through
            :meth:`~repro.coding.encoder.SourceEncoder.emit_batch`
            (one mixing gemm per round) instead of per-target
            :meth:`~repro.coding.encoder.SourceEncoder.emit` calls.
        seed_burst: Packets emitted toward a freshly attached child
            (default 0: rely on the round cadence).
    """

    def __init__(self, encoder, *, batched: bool = True,
                 seed_burst: int = 0) -> None:
        if seed_burst < 0:
            raise ValueError("seed_burst must be >= 0")
        self.encoder = encoder
        self.batched = batched
        self.seed_burst = seed_burst
        #: data-plane counters — ServerStats reads these now
        self.rounds = 0
        self.packets_sent = 0
        #: optional event/effect recorder (conformance and replay tests)
        self.log = None
        #: optional bounded ring of recent steps (duck-typed ``record``)
        self.flight = None
        #: optional instrument bundle (duck-typed ``record_step``)
        self.obs = None

    @property
    def generation_count(self) -> int:
        return self.encoder.generation_count

    # ------------------------------------------------------------------

    def handle(self, event: Event) -> list[Effect]:
        """Advance the state machine by one event."""
        effects = self._dispatch(event)
        if self.log is not None:
            self.log.record(event, effects)
        if self.flight is not None:
            self.flight.record(event, effects)
        if self.obs is not None:
            self.obs.record_step(event, effects)
        return effects

    def _dispatch(self, event: Event) -> list[Effect]:
        if isinstance(event, EmitRound):
            return self._on_round(event)
        if isinstance(event, PullEmit):
            return self._on_pull(event)
        if isinstance(event, ChildAttached):
            return self._on_attach(event)
        return []

    # ------------------------------------------------------------------

    def _on_round(self, event: EmitRound) -> list[Effect]:
        generation = self.rounds % self.encoder.generation_count
        self.rounds += 1
        targets = tuple(event.targets)
        if not targets:
            return []
        if self.batched:
            packets = tuple(self.encoder.emit_batch(len(targets), generation))
        else:
            packets = tuple(self.encoder.emit(generation) for _ in targets)
        self.packets_sent += len(packets)
        return [EmitToChildren(targets, packets=packets)]

    def _on_pull(self, event: PullEmit) -> list[Effect]:
        packet = self.encoder.emit()
        self.packets_sent += 1
        return [EmitToChildren((event.destination,), packets=(packet,))]

    def _on_attach(self, event: ChildAttached) -> list[Effect]:
        if self.seed_burst <= 0:
            return []
        packets = tuple(
            self.encoder.emit() for _ in range(self.seed_burst)
        )
        self.packets_sent += len(packets)
        return [EmitToChildren(
            (event.child,) * len(packets), packets=packets
        )]
