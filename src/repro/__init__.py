"""repro — peer-to-peer broadcast overlays with network coding.

A from-scratch Python implementation of *Building Scalable and Robust
Peer-to-Peer Overlay Networks for Broadcasting using Network Coding*
(Jain, Lovász, Chou — PODC 2005): the curtain-rod overlay construction
(hello / good-bye / repair protocols over the thread matrix ``M``), a
practical RLNC data plane (Chou–Wu–Jain), a packet-level simulator,
adversarial failure models, every baseline the paper argues against, and
the analytic machinery of its theorems.

Quick start::

    from repro import OverlayNetwork
    net = OverlayNetwork(k=32, d=4, seed=7)
    net.grow(1000)
    net.fail(net.random_working_node())
    print(net.connectivity_histogram())

Subpackages:

* :mod:`repro.core` — overlay construction/maintenance (the contribution).
* :mod:`repro.coding` — RLNC codec (encoder, recoder, decoder).
* :mod:`repro.gf` — GF(2⁸) arithmetic and linear algebra.
* :mod:`repro.sim` — event engine and packet-level broadcast simulation.
* :mod:`repro.analysis` — connectivity, defects, delay, expansion.
* :mod:`repro.theory` — drift function, Theorem 4/5 bounds, collapse.
* :mod:`repro.failures` — iid/adversarial failures, churn, §7 attacks.
* :mod:`repro.baselines` — chains, striped trees, Edmonds packings,
  erasure striping, uncoded flooding.
* :mod:`repro.workloads` — arrival schedules and named scenarios.
* :mod:`repro.metrics` — recording and table rendering.
"""

from .core import (
    SERVER,
    CoordinationServer,
    OverlayNetwork,
    RandomGraphOverlay,
    ThreadMatrix,
)
from .coding import Decoder, GenerationParams, Recoder, SourceEncoder
from .sim import BroadcastSimulation, SessionConfig, Simulator, run_session

__version__ = "1.0.0"

__all__ = [
    "SERVER",
    "BroadcastSimulation",
    "CoordinationServer",
    "Decoder",
    "GenerationParams",
    "OverlayNetwork",
    "RandomGraphOverlay",
    "Recoder",
    "SessionConfig",
    "Simulator",
    "SourceEncoder",
    "ThreadMatrix",
    "__version__",
    "run_session",
]
