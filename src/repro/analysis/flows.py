"""Exact max-flow on the overlay graph (BFS augmenting paths).

Flow values in this system are tiny (at most ``d``, a node's thread
count), so Edmonds–Karp — one BFS per unit of flow — is both exact and
fast: O(d · E) per query.  The solver is array-based and supports cheap
capacity snapshots so the defect estimator can run thousands of
virtual-sink queries against one base graph.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np


class FlowNetwork:
    """Integer-capacity flow network with snapshot/restore.

    Vertices are arbitrary hashables, mapped internally to dense indices.
    Edges are directed with integer capacity; a reverse residual edge of
    capacity 0 is added automatically.
    """

    def __init__(self) -> None:
        self._index: dict[object, int] = {}
        self._adj: list[list[int]] = []  # vertex -> list of edge ids
        self._to: list[int] = []
        self._cap: list[int] = []

    def vertex(self, name: object) -> int:
        """Index of ``name``, creating the vertex on first use."""
        idx = self._index.get(name)
        if idx is None:
            idx = len(self._adj)
            self._index[name] = idx
            self._adj.append([])
        return idx

    def has_vertex(self, name: object) -> bool:
        return name in self._index

    @property
    def vertex_count(self) -> int:
        return len(self._adj)

    @property
    def edge_count(self) -> int:
        """Number of directed edges (not counting residual reverses)."""
        return len(self._to) // 2

    def add_edge(self, u: object, v: object, capacity: int) -> None:
        """Add a directed edge ``u -> v`` with the given capacity."""
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        ui, vi = self.vertex(u), self.vertex(v)
        self._adj[ui].append(len(self._to))
        self._to.append(vi)
        self._cap.append(capacity)
        self._adj[vi].append(len(self._to))
        self._to.append(ui)
        self._cap.append(0)

    # ------------------------------------------------------------------

    def snapshot(self) -> np.ndarray:
        """Capture current capacities; pass to :meth:`restore` to rewind."""
        return np.array(self._cap, dtype=np.int64)

    def restore(self, snapshot: np.ndarray) -> None:
        """Rewind capacities to a snapshot; later-added edges are kept."""
        kept = list(self._cap[len(snapshot):])
        self._cap[: len(snapshot)] = [int(c) for c in snapshot]
        self._cap[len(snapshot):] = kept

    def truncate(self, edge_floor: int) -> None:
        """Remove every edge with id >= ``edge_floor`` (undo temp edges).

        ``edge_floor`` must come from a previous ``len(self._to)`` capture
        via :meth:`edge_mark`.
        """
        if edge_floor % 2:
            raise ValueError("edge_floor must come from edge_mark()")
        while len(self._to) > edge_floor:
            reverse_id = len(self._to) - 1  # odd: the residual reverse edge
            forward_id = reverse_id - 1
            reverse_source = self._to[forward_id]  # v of the forward edge u->v
            forward_source = self._to[reverse_id]  # u
            # Edges are only ever appended, so each id must still be the
            # last entry of its source vertex's adjacency list.
            assert self._adj[reverse_source][-1] == reverse_id
            self._adj[reverse_source].pop()
            assert self._adj[forward_source][-1] == forward_id
            self._adj[forward_source].pop()
            del self._to[forward_id:]
            del self._cap[forward_id:]

    def edge_mark(self) -> int:
        """Marker for :meth:`truncate` (call before adding temp edges)."""
        return len(self._to)

    # ------------------------------------------------------------------

    def max_flow(self, source: object, sink: object,
                 limit: Optional[int] = None) -> int:
        """Maximum flow from source to sink (Edmonds–Karp).

        ``limit`` optionally stops once that much flow is found — useful
        when the caller only needs to know whether connectivity reaches a
        threshold.  Mutates capacities; snapshot first if you need to
        rerun.
        """
        if source not in self._index or sink not in self._index:
            return 0
        s, t = self._index[source], self._index[sink]
        if s == t:
            raise ValueError("source equals sink")
        flow = 0
        adj, to, cap = self._adj, self._to, self._cap
        n = len(adj)
        while limit is None or flow < limit:
            # BFS for a shortest augmenting path.
            parent_edge = [-1] * n
            parent_edge[s] = -2
            queue = deque([s])
            found = False
            while queue and not found:
                u = queue.popleft()
                for edge_id in adj[u]:
                    if cap[edge_id] > 0:
                        v = to[edge_id]
                        if parent_edge[v] == -1:
                            parent_edge[v] = edge_id
                            if v == t:
                                found = True
                                break
                            queue.append(v)
            if not found:
                break
            # Find bottleneck.
            bottleneck = None
            v = t
            while v != s:
                edge_id = parent_edge[v]
                residual = cap[edge_id]
                bottleneck = residual if bottleneck is None else min(bottleneck, residual)
                v = to[edge_id ^ 1]
            assert bottleneck is not None and bottleneck > 0
            if limit is not None:
                bottleneck = min(bottleneck, limit - flow)
            # Apply.
            v = t
            while v != s:
                edge_id = parent_edge[v]
                cap[edge_id] -= bottleneck
                cap[edge_id ^ 1] += bottleneck
                v = to[edge_id ^ 1]
            flow += bottleneck
        return flow
