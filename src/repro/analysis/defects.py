"""Defect accounting — the quantities in Lemmas 2–7 and Theorem 4.

For a network state, ``B_j`` counts the d-tuples of hanging threads whose
edge-connectivity from the server is ``d − j``; the *total defect* is
``B = Σ j · B_j`` and ``A = C(k, d)`` is the number of tuples.  Theorem 4
says the steady-state ``E[B]/A`` stays below ``(1+ε)·p·d``.

Exact enumeration is exponential in ``d`` and is provided for small ``k``
(tests, the drift experiment E4).  Everything else uses the Monte-Carlo
estimator: sample tuples uniformly, average their defects — an unbiased
estimate of ``B/A``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations
from typing import AbstractSet, Optional

import numpy as np

from ..core.matrix import ThreadMatrix
from .connectivity import TupleConnectivitySolver


@dataclass(frozen=True)
class DefectSummary:
    """Result of a defect measurement.

    Attributes:
        mean_defect: Estimate of ``B/A`` (average tuple defect).
        bad_fraction: Estimate of ``(B_1 + .. + B_d)/A`` (fraction of
            tuples with any defect).
        histogram: ``histogram[j]`` estimates ``B_j/A`` for j = 0..d.
        samples: Number of tuples inspected.
        exact: True when every tuple was enumerated.
    """

    mean_defect: float
    bad_fraction: float
    histogram: tuple[float, ...]
    samples: int
    exact: bool

    @property
    def normalized_defect(self) -> float:
        """Mean defect per thread, ``(B/A)/d`` — the bandwidth-loss rate."""
        d = len(self.histogram) - 1
        return self.mean_defect / d if d else 0.0


def tuple_space_size(k: int, d: int) -> int:
    """``A = C(k, d)``, the number of d-tuples of hanging threads."""
    return math.comb(k, d)


def exact_defect(
    matrix: ThreadMatrix,
    d: int,
    failed: Optional[AbstractSet[int]] = None,
    max_tuples: int = 200_000,
) -> DefectSummary:
    """Enumerate every d-tuple and compute the exact defect profile.

    Guarded by ``max_tuples`` because the space is ``C(k, d)``.
    """
    space = tuple_space_size(matrix.k, d)
    if space > max_tuples:
        raise ValueError(
            f"C({matrix.k},{d}) = {space} tuples exceeds max_tuples={max_tuples};"
            " use sampled_defect instead"
        )
    solver = TupleConnectivitySolver(matrix, failed)
    counts = [0] * (d + 1)
    for columns in combinations(range(matrix.k), d):
        counts[solver.defect(columns)] += 1
    total = sum(counts)
    mean = sum(j * c for j, c in enumerate(counts)) / total
    bad = sum(c for j, c in enumerate(counts) if j > 0) / total
    histogram = tuple(c / total for c in counts)
    return DefectSummary(
        mean_defect=mean, bad_fraction=bad, histogram=histogram,
        samples=total, exact=True,
    )


def sampled_defect(
    matrix: ThreadMatrix,
    d: int,
    rng: np.random.Generator,
    samples: int = 200,
    failed: Optional[AbstractSet[int]] = None,
) -> DefectSummary:
    """Monte-Carlo estimate of the defect profile from uniform tuples."""
    if samples < 1:
        raise ValueError("samples must be >= 1")
    solver = TupleConnectivitySolver(matrix, failed)
    counts = [0] * (d + 1)
    for _ in range(samples):
        columns = rng.choice(matrix.k, size=d, replace=False)
        counts[solver.defect([int(c) for c in columns])] += 1
    mean = sum(j * c for j, c in enumerate(counts)) / samples
    bad = sum(c for j, c in enumerate(counts) if j > 0) / samples
    histogram = tuple(c / samples for c in counts)
    return DefectSummary(
        mean_defect=mean, bad_fraction=bad, histogram=histogram,
        samples=samples, exact=False,
    )


def defect_of_columns(
    matrix: ThreadMatrix,
    columns: tuple[int, ...],
    failed: Optional[AbstractSet[int]] = None,
) -> int:
    """Defect of one explicit column tuple (fresh-arrival loss, Lemma 3)."""
    solver = TupleConnectivitySolver(matrix, failed)
    return solver.defect(columns)
