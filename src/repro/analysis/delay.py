"""Delay measurements (§6): pipeline depth of overlay topologies.

In the slotted model each hop adds one unit of delay, so a node's
streaming latency is its hop depth from the server.  The curtain model's
column chains make depth grow linearly with population; the §6
random-graph variant is an expander, giving logarithmic depth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.topology import OverlayGraph


@dataclass(frozen=True)
class DelayProfile:
    """Depth statistics of one overlay snapshot.

    Attributes:
        population: Number of working nodes measured.
        mean_depth: Mean shortest-path hop depth from the server.
        max_depth: Maximum shortest-path hop depth (the delay straggler).
        p95_depth: 95th percentile depth.
        unreachable: Nodes with no path from the server at all.
    """

    population: int
    mean_depth: float
    max_depth: int
    p95_depth: float
    unreachable: int


def delay_profile(graph: OverlayGraph) -> DelayProfile:
    """Compute the :class:`DelayProfile` of an overlay snapshot."""
    depths = graph.depths_from_server()
    reachable = [depth for node, depth in depths.items() if node in graph.nodes]
    unreachable = len(graph.nodes) - len(reachable)
    if not reachable:
        return DelayProfile(
            population=len(graph.nodes), mean_depth=0.0, max_depth=0,
            p95_depth=0.0, unreachable=unreachable,
        )
    array = np.asarray(reachable, dtype=float)
    return DelayProfile(
        population=len(graph.nodes),
        mean_depth=float(array.mean()),
        max_depth=int(array.max()),
        p95_depth=float(np.percentile(array, 95)),
        unreachable=unreachable,
    )


def pipeline_depth_profile(graph: OverlayGraph) -> DelayProfile:
    """Like :func:`delay_profile` but using *longest*-path depth.

    For acyclic overlays this is the worst-case buffering delay before a
    node can receive at full rate through all its threads; it raises on
    cyclic graphs (use the shortest-path profile there).
    """
    depths = graph.longest_depths_from_server()
    reachable = [depth for node, depth in depths.items() if node in graph.nodes]
    unreachable = len(graph.nodes) - len(reachable)
    if not reachable:
        return DelayProfile(
            population=len(graph.nodes), mean_depth=0.0, max_depth=0,
            p95_depth=0.0, unreachable=unreachable,
        )
    array = np.asarray(reachable, dtype=float)
    return DelayProfile(
        population=len(graph.nodes),
        mean_depth=float(array.mean()),
        max_depth=int(array.max()),
        p95_depth=float(np.percentile(array, 95)),
        unreachable=unreachable,
    )
