"""Min-cut witnesses: *which* threads bottleneck a node.

Max-flow gives a number; the dual cut explains it.  For a node with
connectivity c < d, the witness cut is the set of c thread segments
whose loss separates it from the server — in practice, the failed
parents' surviving siblings and the narrow waist above them.  Useful for
diagnostics ("why is peer 17 degraded?") and for tests that assert not
just the capacity but its structure.
"""

from __future__ import annotations

from collections import deque
from typing import AbstractSet, Optional

from ..core.matrix import SERVER, ThreadMatrix
from ..core.topology import build_overlay_graph
from .connectivity import graph_to_flow_network


def min_cut(
    matrix: ThreadMatrix,
    node_id: int,
    failed: Optional[AbstractSet[int]] = None,
) -> tuple[int, list[tuple[int, int]]]:
    """Connectivity of ``node_id`` and a witness edge cut.

    Returns ``(value, cut)`` where ``cut`` lists ``(u, v)`` pairs (with
    multiplicity — a pair carrying two saturated threads appears twice)
    whose removal separates the server from the node in the working
    graph.  ``len(cut) == value`` (max-flow = min-cut).  A failed or
    absent node reports ``(0, [])``.
    """
    failed = failed or frozenset()
    if node_id in failed or node_id not in matrix:
        return 0, []
    graph = build_overlay_graph(matrix, failed)
    network = graph_to_flow_network(graph)
    value = network.max_flow(SERVER, node_id)
    # Residual reachability from the server: saturated edges leaving the
    # reachable set form a minimum cut.
    adj, to, cap = network._adj, network._to, network._cap
    source = network._index[SERVER]
    reachable = {source}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for edge_id in adj[u]:
            if cap[edge_id] > 0 and to[edge_id] not in reachable:
                reachable.add(to[edge_id])
                queue.append(to[edge_id])
    index_to_name = {index: name for name, index in network._index.items()}
    cut: list[tuple[int, int]] = []
    for u in reachable:
        for edge_id in adj[u]:
            if edge_id % 2:
                continue  # residual reverse edge
            v = to[edge_id]
            if v in reachable:
                continue
            # original capacity = forward remaining + reverse gained
            flow_through = cap[edge_id ^ 1]
            for _ in range(flow_through):
                cut.append((index_to_name[u], index_to_name[v]))
    return value, cut


def cut_mentions_failed_parents(
    matrix: ThreadMatrix,
    node_id: int,
    failed: AbstractSet[int],
) -> bool:
    """Heuristic check: does the degradation trace to failed parents?

    True when the node's connectivity shortfall equals the number of its
    threads whose parent failed — the Theorem 4 local-containment
    signature.  False means deeper (non-local) damage contributed.
    """
    value, _ = min_cut(matrix, node_id, failed)
    degree = matrix.row(node_id).degree
    dead_threads = sum(
        1 for parent in matrix.parents_of(node_id).values()
        if parent != SERVER and parent in failed
    )
    return degree - value == dead_threads
