"""Defect trajectories: watch B^t/A evolve as the network grows.

Theorem 4 is a statement about a stochastic process; a single number
hides the dynamics.  This module runs the §4 arrival process and samples
the normalised defect on a fixed cadence, giving the time series the
drift analysis predicts: rise from 0, fluctuate around the attractor
a₁ ≈ pd, never wander toward the tipping point a₂ (at sane parameters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .defects import sampled_defect


@dataclass(frozen=True)
class TrajectoryPoint:
    """One sample of the defect process."""

    arrivals: int
    normalized_defect: float  # B/A
    failed_rows: int


@dataclass
class DefectTrajectory:
    """A sampled run of the §4 process.

    Attributes:
        k, d, p: Process parameters.
        points: Samples in arrival order.
    """

    k: int
    d: int
    p: float
    points: list[TrajectoryPoint] = field(default_factory=list)

    @property
    def values(self) -> list[float]:
        return [point.normalized_defect for point in self.points]

    def steady_state_mean(self, burn_in: float = 0.5) -> float:
        """Mean defect after discarding the first ``burn_in`` fraction."""
        values = self.values
        start = int(len(values) * burn_in)
        tail = values[start:] or values
        return float(np.mean(tail))

    def peak(self) -> float:
        return max(self.values) if self.points else 0.0


def measure_defect_trajectory(
    k: int,
    d: int,
    p: float,
    arrivals: int,
    sample_every: int = 25,
    defect_samples: int = 200,
    seed: Optional[int] = None,
) -> DefectTrajectory:
    """Run ``arrivals`` §4 steps, sampling the defect periodically."""
    # Imported here, not at module scope: repro.core.overlay imports this
    # package's connectivity module, so a top-level import would cycle.
    from ..core.membership import sequential_arrivals
    from ..core.overlay import OverlayNetwork

    if sample_every < 1:
        raise ValueError("sample_every must be >= 1")
    net = OverlayNetwork(k=k, d=d, seed=seed)
    rng = np.random.default_rng(None if seed is None else seed + 1)
    trajectory = DefectTrajectory(k=k, d=d, p=p)
    done = 0
    while done < arrivals:
        batch = min(sample_every, arrivals - done)
        sequential_arrivals(net, batch, p=p, rng=rng, repair_interval=None)
        done += batch
        summary = sampled_defect(net.matrix, d, rng, samples=defect_samples,
                                 failed=net.failed)
        trajectory.points.append(
            TrajectoryPoint(
                arrivals=done,
                normalized_defect=summary.mean_defect,
                failed_rows=len(net.failed),
            )
        )
    return trajectory
