"""Statistical helpers: confidence intervals and distribution tests.

Used by the experiments to report Monte-Carlo estimates honestly and by
the Lemma-1 invariance experiment (E10) to compare matrix distributions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as sp_stats


@dataclass(frozen=True)
class Estimate:
    """A Monte-Carlo estimate with a normal-approximation CI.

    Attributes:
        mean: Sample mean.
        half_width: Half-width of the confidence interval.
        n: Sample count.
        confidence: Confidence level used.
    """

    mean: float
    half_width: float
    n: int
    confidence: float

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.5f} ± {self.half_width:.5f} (n={self.n})"


def mean_ci(values: Sequence[float], confidence: float = 0.95) -> Estimate:
    """Sample mean with a normal-approximation confidence interval."""
    array = np.asarray(list(values), dtype=float)
    n = array.size
    if n == 0:
        raise ValueError("no samples")
    mean = float(array.mean())
    if n == 1:
        return Estimate(mean=mean, half_width=float("inf"), n=1, confidence=confidence)
    sem = float(array.std(ddof=1)) / math.sqrt(n)
    z = float(sp_stats.norm.ppf(0.5 + confidence / 2.0))
    return Estimate(mean=mean, half_width=z * sem, n=n, confidence=confidence)


def proportion_ci(successes: int, trials: int, confidence: float = 0.95) -> Estimate:
    """Wilson-score interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    z = float(sp_stats.norm.ppf(0.5 + confidence / 2.0))
    phat = successes / trials
    denominator = 1 + z * z / trials
    centre = (phat + z * z / (2 * trials)) / denominator
    half = (
        z
        * math.sqrt(phat * (1 - phat) / trials + z * z / (4 * trials * trials))
        / denominator
    )
    return Estimate(mean=centre, half_width=half, n=trials, confidence=confidence)


def chi_square_same_distribution(
    counts_a: Sequence[int],
    counts_b: Sequence[int],
) -> tuple[float, float]:
    """Two-sample chi-square homogeneity test.

    Returns ``(statistic, p_value)``.  Cells where both samples are empty
    are dropped; raises if fewer than two informative cells remain.
    """
    a = np.asarray(list(counts_a), dtype=float)
    b = np.asarray(list(counts_b), dtype=float)
    if a.shape != b.shape:
        raise ValueError("count vectors must have equal length")
    keep = (a + b) > 0
    a, b = a[keep], b[keep]
    if a.size < 2:
        raise ValueError("need at least two informative cells")
    table = np.stack([a, b])
    statistic, p_value, _, _ = sp_stats.chi2_contingency(table)
    return float(statistic), float(p_value)


def ks_same_distribution(
    samples_a: Sequence[float],
    samples_b: Sequence[float],
) -> tuple[float, float]:
    """Two-sample Kolmogorov–Smirnov test; returns (statistic, p_value)."""
    result = sp_stats.ks_2samp(list(samples_a), list(samples_b))
    return float(result.statistic), float(result.pvalue)
