"""Measurement tooling: flows, connectivity, defects, expansion, delay.

This package answers the quantitative questions the paper's theorems pose
about a concrete overlay snapshot: what is each node's edge-connectivity
from the server?  what fraction of hanging-thread d-tuples are defective?
how deep is the pipeline?  how fast do ancestor sets grow?
"""

from .capacity import (
    CapacityReport,
    broadcast_capacity,
    capacity_matches_branchings,
)
from .cuts import cut_mentions_failed_parents, min_cut
from .connectivity import (
    TupleConnectivitySolver,
    all_node_connectivities,
    graph_to_flow_network,
    node_connectivity,
)
from .defects import (
    DefectSummary,
    defect_of_columns,
    exact_defect,
    sampled_defect,
    tuple_space_size,
)
from .delay import DelayProfile, delay_profile, pipeline_depth_profile
from .expansion import ancestor_counts, mean_grandparent_count, vertex_expansion_sample
from .flows import FlowNetwork
from .spectral import expansion_report, spectral_gap, symmetric_adjacency
from .trajectory import (
    DefectTrajectory,
    TrajectoryPoint,
    measure_defect_trajectory,
)
from .stats import (
    Estimate,
    chi_square_same_distribution,
    ks_same_distribution,
    mean_ci,
    proportion_ci,
)

__all__ = [
    "CapacityReport",
    "DefectSummary",
    "DefectTrajectory",
    "broadcast_capacity",
    "capacity_matches_branchings",
    "DelayProfile",
    "Estimate",
    "FlowNetwork",
    "TupleConnectivitySolver",
    "all_node_connectivities",
    "ancestor_counts",
    "chi_square_same_distribution",
    "cut_mentions_failed_parents",
    "defect_of_columns",
    "min_cut",
    "delay_profile",
    "exact_defect",
    "expansion_report",
    "graph_to_flow_network",
    "ks_same_distribution",
    "mean_ci",
    "mean_grandparent_count",
    "measure_defect_trajectory",
    "TrajectoryPoint",
    "node_connectivity",
    "pipeline_depth_profile",
    "proportion_ci",
    "sampled_defect",
    "spectral_gap",
    "symmetric_adjacency",
    "tuple_space_size",
    "vertex_expansion_sample",
]
