"""Edge-connectivity measurements on the overlay.

The network-coding theorem (Ahlswede et al. [1]) says every node can
receive the broadcast at a rate equal to its edge-connectivity from the
server, so *connectivity is throughput* at the flow level.  This module
measures it: per existing node, and for hypothetical ``d``-tuples of
hanging threads (the quantity driving the paper's defect analysis).
"""

from __future__ import annotations

from typing import AbstractSet, Iterable, Optional, Sequence

from ..core.matrix import SERVER, ThreadMatrix
from ..core.topology import OverlayGraph, build_overlay_graph
from .flows import FlowNetwork

#: Sentinel sink vertex used for tuple-connectivity queries.
_TUPLE_SINK = "__tuple_sink__"


def graph_to_flow_network(graph: OverlayGraph) -> FlowNetwork:
    """Translate an overlay multigraph into a flow network.

    Parallel thread segments become a single edge whose capacity is the
    multiplicity.
    """
    network = FlowNetwork()
    network.vertex(SERVER)
    for node in graph.nodes:
        network.vertex(node)
    for u, targets in graph.succ.items():
        for v, multiplicity in targets.items():
            network.add_edge(u, v, multiplicity)
    return network


def node_connectivity(
    matrix: ThreadMatrix,
    node_id: int,
    failed: Optional[AbstractSet[int]] = None,
) -> int:
    """Edge-connectivity from the server to one working node."""
    failed = failed or frozenset()
    if node_id in failed:
        return 0
    graph = build_overlay_graph(matrix, failed)
    network = graph_to_flow_network(graph)
    return network.max_flow(SERVER, node_id)


def all_node_connectivities(
    matrix: ThreadMatrix,
    failed: Optional[AbstractSet[int]] = None,
    nodes: Optional[Iterable[int]] = None,
) -> dict[int, int]:
    """Edge-connectivity from the server for many nodes at once.

    Builds the flow network once and reuses it via snapshot/restore.
    """
    failed = failed or frozenset()
    graph = build_overlay_graph(matrix, failed)
    network = graph_to_flow_network(graph)
    base = network.snapshot()
    result: dict[int, int] = {}
    targets = list(nodes) if nodes is not None else matrix.node_ids
    for node_id in targets:
        if node_id in failed or node_id not in graph.nodes:
            result[node_id] = 0
            continue
        result[node_id] = network.max_flow(SERVER, node_id)
        network.restore(base)
    return result


class TupleConnectivitySolver:
    """Repeated connectivity queries for d-tuples of hanging threads.

    A query asks: if a new node clipped the hanging threads of columns
    ``C = (c_1 .. c_d)``, what edge-connectivity from the server would it
    get?  Implemented as max-flow to a virtual sink fed by the hanging
    threads' working owners (one unit per chosen column; dead threads —
    those whose bottom occupant failed — contribute nothing).

    The base graph is built once; each query adds temporary sink edges,
    solves, and rewinds.
    """

    def __init__(
        self,
        matrix: ThreadMatrix,
        failed: Optional[AbstractSet[int]] = None,
    ) -> None:
        self.matrix = matrix
        self.failed = frozenset(failed or frozenset())
        self.graph = build_overlay_graph(matrix, self.failed)
        self.network = graph_to_flow_network(self.graph)
        self.network.vertex(_TUPLE_SINK)
        self._base_caps = self.network.snapshot()
        # column -> working owner (or None when the hanging thread is dead)
        self._owner: list[Optional[int]] = []
        for column in range(matrix.k):
            owner = matrix.hanging_owner(column)
            if owner != SERVER and owner in self.failed:
                self._owner.append(None)
            else:
                self._owner.append(owner)

    def connectivity(self, columns: Sequence[int]) -> int:
        """Connectivity a new node would get from this column tuple."""
        mark = self.network.edge_mark()
        live = 0
        for column in columns:
            owner = self._owner[column]
            if owner is None:
                continue
            self.network.add_edge(owner, _TUPLE_SINK, 1)
            live += 1
        if live == 0:
            return 0
        flow = self.network.max_flow(SERVER, _TUPLE_SINK, limit=len(columns))
        self.network.truncate(mark)
        self.network.restore(self._base_caps)
        return flow

    def defect(self, columns: Sequence[int]) -> int:
        """Connectivity shortfall ``d - connectivity`` of a column tuple."""
        return len(columns) - self.connectivity(columns)
