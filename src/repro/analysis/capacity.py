"""Broadcast capacity: what rate can this overlay deliver to everyone?

By the network-coding theorem [1] the broadcast capacity of a network is
``min over receivers of maxflow(server → receiver)`` — and Edmonds'
theorem [8] says routing over edge-disjoint branchings achieves the same
number when every node is a receiver.  Network coding's win is not rate
but *simplicity and churn-tolerance* (§1).  This module computes the
capacity, identifies the bottleneck receivers, and verifies the
coding-equals-branchings equivalence that the paper leans on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Optional

from ..core.matrix import ThreadMatrix
from .connectivity import all_node_connectivities


@dataclass(frozen=True)
class CapacityReport:
    """Broadcast capacity of one overlay snapshot.

    Attributes:
        capacity: The min-cut broadcast rate (threads/unit time).
        bottlenecks: Working nodes achieving exactly the capacity.
        connectivity: Per-node edge-connectivity from the server.
        mean_connectivity: Average over working nodes.
    """

    capacity: int
    bottlenecks: tuple[int, ...]
    connectivity: dict[int, int]
    mean_connectivity: float


def broadcast_capacity(
    matrix: ThreadMatrix,
    failed: Optional[AbstractSet[int]] = None,
) -> CapacityReport:
    """Capacity and bottleneck set of the working overlay.

    An empty overlay (or one where every node failed) reports capacity 0
    with no bottlenecks.
    """
    failed = failed or frozenset()
    working = [n for n in matrix.node_ids if n not in failed]
    if not working:
        return CapacityReport(capacity=0, bottlenecks=(),
                              connectivity={}, mean_connectivity=0.0)
    connectivity = all_node_connectivities(matrix, failed, working)
    capacity = min(connectivity.values())
    bottlenecks = tuple(
        node for node in working if connectivity[node] == capacity
    )
    mean = sum(connectivity.values()) / len(working)
    return CapacityReport(
        capacity=capacity,
        bottlenecks=bottlenecks,
        connectivity=connectivity,
        mean_connectivity=mean,
    )


def capacity_matches_branchings(
    matrix: ThreadMatrix,
    failed: Optional[AbstractSet[int]] = None,
) -> bool:
    """Check Edmonds' equivalence on the working overlay.

    Attempts to pack ``capacity`` edge-disjoint spanning arborescences in
    the working graph; Edmonds' theorem says this must succeed.  Intended
    for small overlays (the packing algorithm is polynomial but heavy).
    """
    import numpy as np

    from ..baselines.edmonds import pack_arborescences, verify_packing
    from ..core.topology import build_overlay_graph

    report = broadcast_capacity(matrix, failed)
    if report.capacity == 0:
        return True
    graph = build_overlay_graph(matrix, failed or frozenset())
    trees = pack_arborescences(graph, report.capacity, np.random.default_rng(0))
    return verify_packing(graph, trees)
