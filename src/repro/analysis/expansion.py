"""Expansion metrics of the overlay graph.

The intuition in §1: random graphs expand — a node with ``d`` parents has
about ``d²`` grandparents, so losing a grandparent rarely costs
connectivity.  These helpers quantify ancestor growth and vertex
expansion so the scalability experiments can exhibit the property the
proofs rely on.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..core.matrix import SERVER
from ..core.topology import OverlayGraph


def ancestor_counts(graph: OverlayGraph, node_id: int, depth: int) -> list[int]:
    """Number of distinct ancestors at each hop distance ``1..depth``.

    ``result[0]`` is the number of distinct parents, ``result[1]`` the
    number of distinct grandparents not already counted closer, etc.  The
    server is excluded from every level.
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    seen = {node_id}
    frontier = {node_id}
    counts = []
    for _ in range(depth):
        next_frontier = set()
        for node in frontier:
            for parent in graph.parents(node):
                if parent != SERVER and parent not in seen:
                    next_frontier.add(parent)
        seen.update(next_frontier)
        counts.append(len(next_frontier))
        frontier = next_frontier
        if not frontier:
            break
    while len(counts) < depth:
        counts.append(0)
    return counts


def mean_grandparent_count(graph: OverlayGraph, nodes: Iterable[int]) -> float:
    """Average number of distinct grandparents over the given nodes.

    The §1 heuristic predicts ≈ d² for nodes deep enough to have two full
    ancestor generations.
    """
    values = [ancestor_counts(graph, node, 2)[1] for node in nodes]
    return float(np.mean(values)) if values else 0.0


def vertex_expansion_sample(
    graph: OverlayGraph,
    rng: np.random.Generator,
    set_size: int,
    samples: int = 50,
) -> float:
    """Estimate the out-neighbourhood expansion of random node sets.

    Returns the mean of ``|N⁺(S) \\ S| / |S|`` over ``samples`` random
    subsets ``S`` of ``set_size`` working nodes.  Expanders keep this
    ratio bounded away from zero as the graph grows.
    """
    nodes = sorted(graph.nodes)
    if len(nodes) < set_size:
        raise ValueError("set_size exceeds node count")
    ratios = []
    for _ in range(samples):
        chosen = {nodes[int(i)] for i in rng.choice(len(nodes), size=set_size, replace=False)}
        boundary = set()
        for node in chosen:
            for child in graph.children(node):
                if child not in chosen:
                    boundary.add(child)
        ratios.append(len(boundary) / set_size)
    return float(np.mean(ratios))
