"""Spectral expansion measurements.

§1's robustness intuition rests on the overlay being an expander.  The
cleanest certificate is spectral: symmetrise the overlay into an
undirected multigraph, normalise by degree, and look at the second
eigenvalue λ₂ of the random-walk matrix — the spectral gap ``1 − λ₂``
lower-bounds conductance (Cheeger).  Random d-regular-ish graphs have a
constant gap; chains have gap Θ(1/N²).
"""

from __future__ import annotations

import numpy as np

from ..core.matrix import SERVER
from ..core.topology import OverlayGraph


def symmetric_adjacency(graph: OverlayGraph, include_server: bool = True
                        ) -> tuple[np.ndarray, list[int]]:
    """Dense symmetrised adjacency (multiplicities summed both ways).

    Returns ``(A, index)`` where ``index[i]`` is the node at row ``i``.
    """
    nodes = sorted(graph.nodes)
    if include_server:
        nodes = [SERVER] + nodes
    position = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    adjacency = np.zeros((n, n), dtype=float)
    for u, targets in graph.succ.items():
        if u not in position:
            continue
        for v, multiplicity in targets.items():
            if v not in position:
                continue
            adjacency[position[u], position[v]] += multiplicity
            adjacency[position[v], position[u]] += multiplicity
    return adjacency, nodes


def spectral_gap(graph: OverlayGraph, include_server: bool = True) -> float:
    """``1 − λ₂`` of the lazy random-walk matrix of the symmetrised graph.

    The walk is made lazy (``W = (I + D⁻¹A)/2``) so negative eigenvalues
    cannot masquerade as a small gap.  Returns 0.0 for graphs with
    fewer than two vertices.  Isolated vertices (degree 0) are dropped.
    """
    adjacency, _ = symmetric_adjacency(graph, include_server)
    degrees = adjacency.sum(axis=1)
    keep = degrees > 0
    adjacency = adjacency[np.ix_(keep, keep)]
    degrees = degrees[keep]
    n = adjacency.shape[0]
    if n < 2:
        return 0.0
    # Symmetric normalised walk: N = D^{-1/2} A D^{-1/2} shares eigenvalues
    # with D^{-1} A but stays symmetric for stable eigensolving.
    inv_sqrt = 1.0 / np.sqrt(degrees)
    normalised = adjacency * inv_sqrt[:, None] * inv_sqrt[None, :]
    lazy = 0.5 * (np.eye(n) + normalised)
    eigenvalues = np.linalg.eigvalsh(lazy)
    return float(1.0 - eigenvalues[-2])


def expansion_report(graph: OverlayGraph) -> dict[str, float]:
    """Gap plus basic size stats, for tables."""
    return {
        "nodes": float(len(graph.nodes)),
        "edges": float(graph.edge_count()),
        "spectral_gap": spectral_gap(graph),
    }
