"""Continuous-time churn on the event engine.

Nodes arrive by a Poisson process; each node draws an exponential
lifetime and, at its end, leaves gracefully or fails (and is repaired
after a fixed repair delay).  This is the asynchronous counterpart of the
slotted churn in :mod:`repro.core.membership`, used for timing-sensitive
questions (how long do children sit disconnected before repair?).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.overlay import OverlayNetwork
from ..sim.engine import Simulator


@dataclass
class ChurnTimeline:
    """Event log of a churn run."""

    joins: list[tuple[float, int]] = field(default_factory=list)
    leaves: list[tuple[float, int]] = field(default_factory=list)
    failures: list[tuple[float, int]] = field(default_factory=list)
    repairs: list[tuple[float, int]] = field(default_factory=list)

    @property
    def repair_latencies(self) -> list[float]:
        """Time from each failure to its repair (matched by node id)."""
        failed_at = {node: t for t, node in self.failures}
        return [t - failed_at[node] for t, node in self.repairs if node in failed_at]


class PoissonChurn:
    """Drive an overlay with Poisson joins and exponential lifetimes.

    Args:
        net: Overlay to drive.
        sim: Event engine to schedule on.
        join_rate: Expected joins per unit time.
        mean_lifetime: Mean node lifetime.
        failure_fraction: Probability a departure is a failure rather
            than a graceful leave.
        repair_delay: Time between a failure and its repair (the *repair
            interval* of §2; children are degraded for this long).
        rng: Randomness.
    """

    def __init__(
        self,
        net: OverlayNetwork,
        sim: Simulator,
        join_rate: float,
        mean_lifetime: float,
        failure_fraction: float,
        repair_delay: float,
        rng: np.random.Generator,
        min_population: int = 1,
    ) -> None:
        if join_rate <= 0 or mean_lifetime <= 0:
            raise ValueError("rates must be positive")
        if not 0.0 <= failure_fraction <= 1.0:
            raise ValueError("failure_fraction must be a probability")
        if repair_delay < 0:
            raise ValueError("repair_delay must be non-negative")
        self.net = net
        self.sim = sim
        self.join_rate = join_rate
        self.mean_lifetime = mean_lifetime
        self.failure_fraction = failure_fraction
        self.repair_delay = repair_delay
        self.rng = rng
        self.min_population = min_population
        self.timeline = ChurnTimeline()

    def start(self) -> None:
        """Schedule the first arrival; the process self-perpetuates."""
        self.sim.schedule_after(self._next_gap(), self._on_join, label="churn-join")

    def _next_gap(self) -> float:
        return float(self.rng.exponential(1.0 / self.join_rate))

    def _on_join(self, sim: Simulator) -> None:
        grant = self.net.join()
        self.timeline.joins.append((sim.now, grant.node_id))
        lifetime = float(self.rng.exponential(self.mean_lifetime))
        sim.schedule_after(
            lifetime, lambda s, node=grant.node_id: self._on_departure(s, node),
            label="churn-departure",
        )
        sim.schedule_after(self._next_gap(), self._on_join, label="churn-join")

    def _on_departure(self, sim: Simulator, node_id: int) -> None:
        if node_id not in self.net.matrix or node_id in self.net.failed:
            return  # already gone (e.g. repaired-away duplicate event)
        if self.net.population <= self.min_population:
            return
        if self.rng.random() < self.failure_fraction:
            self.net.fail(node_id)
            self.timeline.failures.append((sim.now, node_id))
            sim.schedule_after(
                self.repair_delay,
                lambda s, node=node_id: self._on_repair(s, node),
                label="churn-repair",
            )
        else:
            self.net.leave(node_id)
            self.timeline.leaves.append((sim.now, node_id))

    def _on_repair(self, sim: Simulator, node_id: int) -> None:
        if node_id in self.net.failed:
            self.net.repair(node_id)
            self.timeline.repairs.append((sim.now, node_id))
