"""§7 attack scenarios and a naive detector.

Three attacks the paper discusses:

* *failure attack* — join, then go dark.  Equivalent to batch failures
  (see :mod:`repro.failures.models`); the system is robust to it.
* *entropy destruction attack* — forward only trivial combinations.
  Slow poison: the subtree's innovation rate drops, but every packet is a
  valid combination, so it is "more difficult to detect" than failing.
* *jamming attack* — inject random garbage claiming to be combinations.
  After mixing, the garbage contaminates almost every packet downstream.

Role assignment feeds :class:`repro.sim.BroadcastSimulation`; the
detector quantifies the paper's detectability claim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.broadcast import BroadcastReport, NodeRole


def assign_attack_roles(
    node_ids: list[int],
    fraction: float,
    role: NodeRole,
    rng: np.random.Generator,
) -> dict[int, NodeRole]:
    """Mark a random ``fraction`` of the given nodes with ``role``."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    if role is NodeRole.HONEST:
        raise ValueError("assign an attack role, not HONEST")
    count = int(round(fraction * len(node_ids)))
    if count == 0:
        return {}
    picks = rng.choice(len(node_ids), size=count, replace=False)
    return {node_ids[int(i)]: role for i in picks}


@dataclass(frozen=True)
class DetectionOutcome:
    """Result of the naive innovation-rate detector.

    Attributes:
        flagged: Node ids whose receivers would raise an alarm (their
            incoming innovation efficiency fell below the threshold).
        true_positives: Flagged nodes that are actually attackers'
            children (the best a local detector can localise).
        threshold: Efficiency threshold used.
    """

    flagged: list[int]
    true_positives: int
    threshold: float


def detect_low_innovation(
    report: BroadcastReport,
    roles: dict[int, NodeRole],
    attacker_children: set[int],
    threshold: float = 0.5,
) -> DetectionOutcome:
    """Flag honest nodes whose innovation efficiency is suspiciously low.

    A node that mostly receives non-innovative packets is likely fed by
    an entropy attacker.  Failure attacks, by contrast, are *immediately*
    visible (dead threads trigger complaints) — the asymmetry the paper
    points out.
    """
    flagged = []
    for node in report.nodes:
        if roles.get(node.node_id, NodeRole.HONEST) is not NodeRole.HONEST:
            continue
        if node.received == 0:
            continue
        efficiency = node.innovative / node.received
        if efficiency < threshold:
            flagged.append(node.node_id)
    true_positives = sum(1 for n in flagged if n in attacker_children)
    return DetectionOutcome(
        flagged=flagged, true_positives=true_positives, threshold=threshold
    )
