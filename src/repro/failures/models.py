"""Failure models: who fails, when (§4 iid, §5 adversarial).

A failure model selects, for one repair interval, the set of nodes that
fail non-ergodically.  The paper analyses iid failures and then argues
(§5) that a *coordinated* adversary — a p-fraction of nodes failing
simultaneously — is no more harmful, provided row insertion is random.
The adversarial models here reproduce both the benign case (adversaries
arrive at random times) and the attack the randomisation defends against
(adversaries who joined consecutively and fail together).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from ..core.overlay import OverlayNetwork


class FailureModel(Protocol):
    """Strategy choosing which working nodes fail this interval."""

    def select(self, net: OverlayNetwork, rng: np.random.Generator) -> list[int]:
        """Return the node ids that fail (subset of working nodes)."""
        ...


@dataclass(frozen=True)
class IIDFailures:
    """§4: every working node fails independently with probability ``p``."""

    p: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= 1.0:
            raise ValueError("p must be a probability")

    def select(self, net: OverlayNetwork, rng: np.random.Generator) -> list[int]:
        working = net.working_nodes
        if not working:
            return []
        coins = rng.random(len(working)) < self.p
        return [node for node, failed in zip(working, coins) if failed]


@dataclass(frozen=True)
class RandomBatchFailures:
    """§5 benign adversary: a uniformly random ``fraction`` fails at once.

    "The set of adversaries is a uniformly chosen random subset of users"
    — what an attacker achieves when it cannot control arrival times (or
    when the server randomises row insertion).
    """

    fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")

    def select(self, net: OverlayNetwork, rng: np.random.Generator) -> list[int]:
        working = net.working_nodes
        count = int(round(self.fraction * len(working)))
        if count == 0:
            return []
        picks = rng.choice(len(working), size=count, replace=False)
        return [working[int(i)] for i in picks]


@dataclass(frozen=True)
class CohortBatchFailures:
    """§5 coordinated adversary: a *consecutive-arrival* cohort fails.

    Adversaries who joined back-to-back are logically adjacent in an
    append-ordered matrix (they form long sub-chains of the same columns),
    so their simultaneous failure cuts deep.  Random row insertion
    destroys this adjacency; comparing this model under the two insert
    modes is experiment E5.
    """

    fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")

    def select(self, net: OverlayNetwork, rng: np.random.Generator) -> list[int]:
        # Cohort = a contiguous run in *join order* (node ids are assigned
        # sequentially by the server), i.e. the adversaries arrived
        # together in time regardless of where rows were inserted.
        working = sorted(net.working_nodes)
        count = int(round(self.fraction * len(working)))
        if count == 0:
            return []
        if count >= len(working):
            return list(working)
        start = int(rng.integers(0, len(working) - count + 1))
        return working[start : start + count]


@dataclass(frozen=True)
class TopRowsFailures:
    """Worst-case positional adversary: fail the nodes closest to the rod.

    Not achievable by a §5 adversary (it cannot choose positions), but a
    useful stress bound: these nodes carry the most descendants.
    """

    fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")

    def select(self, net: OverlayNetwork, rng: np.random.Generator) -> list[int]:
        ordered = [n for n in net.matrix.node_ids if n in set(net.working_nodes)]
        count = int(round(self.fraction * len(ordered)))
        return ordered[:count]


def apply_failures(
    net: OverlayNetwork,
    model: FailureModel,
    rng: np.random.Generator,
) -> list[int]:
    """Select and inject one interval's failures; returns the victims."""
    victims = model.select(net, rng)
    for node_id in victims:
        net.fail(node_id)
    return victims
