"""Failure machinery: iid and adversarial models, churn, §7 attacks."""

from .attacks import DetectionOutcome, assign_attack_roles, detect_low_innovation
from .churn import ChurnTimeline, PoissonChurn
from .models import (
    CohortBatchFailures,
    FailureModel,
    IIDFailures,
    RandomBatchFailures,
    TopRowsFailures,
    apply_failures,
)

__all__ = [
    "ChurnTimeline",
    "CohortBatchFailures",
    "DetectionOutcome",
    "FailureModel",
    "IIDFailures",
    "PoissonChurn",
    "RandomBatchFailures",
    "TopRowsFailures",
    "apply_failures",
    "assign_attack_roles",
    "detect_low_innovation",
]
