"""Baseline 6 — rarest-first piece forwarding (BitTorrent's heuristic [7]).

Uncoded store-and-forward with the scheduling fix BitTorrent deploys:
instead of forwarding a uniformly random buffered piece, a node forwards
the piece it estimates to be *rarest*.  Estimation is local (real swarms
gossip bitfields): each node scores every piece by how often it has
seen it arrive **plus how often it has already forwarded it** and sends
the lowest-scoring buffered piece, ties broken randomly.  Counting own
transmissions is essential — score receipts alone and a node fixates on
its newest piece, re-sending it slot after slot (measurably *worse*
than random forwarding).

Rarest-first flattens the piece distribution and closes much of the
coupon-collector gap to RLNC — but not all of it, and only via a
heuristic whose accuracy decays with distance, whereas a random linear
mixture is *always* (w.h.p.) useful without any estimation at all.
That comparison is the practical content of the paper's coding argument.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.overlay import OverlayNetwork
from ..sim.links import LinkStats, LossModel
from ..sim.rng import RngStreams
from .store_forward import FloodingReport


class RarestFirstSimulation:
    """Uncoded forwarding with local rarest-first piece selection.

    Same slot discipline and reporting as
    :class:`~repro.baselines.store_forward.FloodingSimulation`.
    """

    def __init__(
        self,
        net: OverlayNetwork,
        packet_count: int,
        seed: Optional[int] = None,
        loss: Optional[LossModel] = None,
    ) -> None:
        if packet_count < 1:
            raise ValueError("packet_count must be >= 1")
        self.net = net
        self.packet_count = packet_count
        self.streams = RngStreams(seed)
        self.loss = loss or LossModel(0.0)
        self.slot = 0
        self.link_stats = LinkStats()
        self._buffers: dict[int, set[int]] = {}
        self._seen_counts: dict[int, np.ndarray] = {}
        self._received: dict[int, int] = {}
        self._completed_at: dict[int, int] = {}

    def buffer_of(self, node_id: int) -> set[int]:
        buffer = self._buffers.get(node_id)
        if buffer is None:
            buffer = set()
            self._buffers[node_id] = buffer
            self._seen_counts[node_id] = np.zeros(self.packet_count, dtype=np.int64)
            self._received[node_id] = 0
        return buffer

    def _pick_piece(self, node_id: int, rng: np.random.Generator) -> int:
        """The buffered piece with the lowest seen+sent score.

        The pick is immediately scored as a transmission so a node
        rotates through its buffer instead of fixating on one piece.
        """
        buffer = self._buffers[node_id]
        counts = self._seen_counts[node_id]
        items = np.fromiter(buffer, dtype=np.int64)
        rarity = counts[items]
        rarest = items[rarity == rarity.min()]
        pick = int(rarest[rng.integers(0, rarest.size)])
        counts[pick] += 1
        return pick

    def step(self) -> None:
        """One slot: emissions from current buffers, then delivery."""
        matrix = self.net.matrix
        failed = self.net.server.failed
        forward_rng = self.streams.get("forward")
        loss_rng = self.streams.get("loss")
        server_rng = self.streams.get("server")
        sends: list[tuple[int, int]] = []
        for column in range(matrix.k):
            chain = matrix.column_chain(column)
            if not chain:
                continue
            sends.append((chain[0], int(server_rng.integers(0, self.packet_count))))
        for node_id in matrix.node_ids:
            if node_id in failed:
                continue
            buffer = self.buffer_of(node_id)
            if not buffer:
                continue
            for column, child in matrix.children_of(node_id).items():
                if child is None:
                    continue
                sends.append((child, self._pick_piece(node_id, forward_rng)))
        for destination, piece in sends:
            delivered = destination not in failed and self.loss.delivers(loss_rng)
            self.link_stats.record(delivered)
            if not delivered:
                continue
            buffer = self.buffer_of(destination)
            self._received[destination] += 1
            self._seen_counts[destination][piece] += 1
            if piece not in buffer:
                buffer.add(piece)
                if (
                    len(buffer) == self.packet_count
                    and destination not in self._completed_at
                ):
                    self._completed_at[destination] = self.slot
        self.slot += 1

    def run_until_complete(self, max_slots: int = 10_000) -> FloodingReport:
        while self.slot < max_slots:
            targets = self.net.working_nodes
            if targets and all(t in self._completed_at for t in targets):
                break
            self.step()
        return self.report()

    def report(self) -> FloodingReport:
        targets = self.net.working_nodes
        unique_fractions = []
        duplicates = 0
        received = 0
        done = 0
        completion = []
        for node_id in targets:
            buffer = self._buffers.get(node_id, set())
            got = self._received.get(node_id, 0)
            unique_fractions.append(len(buffer) / self.packet_count)
            duplicates += max(0, got - len(buffer))
            received += got
            if node_id in self._completed_at:
                done += 1
                completion.append(self._completed_at[node_id])
        return FloodingReport(
            slots=self.slot,
            completion_fraction=done / len(targets) if targets else 0.0,
            mean_unique_fraction=(
                float(np.mean(unique_fractions)) if unique_fractions else 0.0
            ),
            duplicate_fraction=duplicates / received if received else 0.0,
            completion_slots=completion,
        )
