"""Baseline 6 — rarest-first piece forwarding (BitTorrent's heuristic [7]).

Uncoded store-and-forward with the scheduling fix BitTorrent deploys:
instead of forwarding a uniformly random buffered piece, a node forwards
the piece it estimates to be *rarest*.  Estimation is local (real swarms
gossip bitfields): each node scores every piece by how often it has
seen it arrive **plus how often it has already forwarded it** and sends
the lowest-scoring buffered piece, ties broken randomly.  Counting own
transmissions is essential — score receipts alone and a node fixates on
its newest piece, re-sending it slot after slot (measurably *worse*
than random forwarding).

Rarest-first flattens the piece distribution and closes much of the
coupon-collector gap to RLNC — but not all of it, and only via a
heuristic whose accuracy decays with distance, whereas a random linear
mixture is *always* (w.h.p.) useful without any estimation at all.
That comparison is the practical content of the paper's coding argument.

Since the runtime unification the piece-selection policy lives in
:class:`~repro.sim.behaviors.RarestFirstBehavior`; the slot loop is the
shared :class:`~repro.sim.runtime.SlottedRuntime`.
"""

from __future__ import annotations

import numpy as np

from ..sim.behaviors import RarestFirstBehavior
from .store_forward import FloodingReport, FloodingSimulation

# FloodingReport is re-exported for callers that imported it from here.
__all__ = ["FloodingReport", "RarestFirstSimulation"]


class RarestFirstSimulation(FloodingSimulation):
    """Uncoded forwarding with local rarest-first piece selection.

    Same slot discipline and reporting as
    :class:`~repro.baselines.store_forward.FloodingSimulation`; only the
    node behaviour differs.
    """

    behavior_class = RarestFirstBehavior

    @property
    def _seen_counts(self) -> dict[int, np.ndarray]:
        return self.behavior._seen_counts

    def _pick_piece(self, node_id: int, rng: np.random.Generator) -> int:
        return self.behavior._pick_piece(node_id, rng)
