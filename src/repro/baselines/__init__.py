"""Baselines the paper motivates against.

* :class:`ChainOverlay` — the distribution path (§1 strawman).
* :class:`StripedTrees` — SplitStream-style multiple multicast trees [4].
* :mod:`repro.baselines.edmonds` — optimal branchings packing [8] and its
  fragility under failures.
* :class:`MDSCode` / erasure striping — Reed–Solomon-coded multi-parent
  overlays (no in-network mixing).
* :class:`FloodingSimulation` — uncoded store-and-forward.
"""

from .chain import ChainOverlay
from .edmonds import (
    Packing,
    TreeRoutingOutcome,
    curtain_tree_decomposition,
    pack_arborescences,
    route_stripes,
    verify_packing,
)
from .erasure import (
    ErasureOutcome,
    MDSCode,
    evaluate_erasure_overlay,
    stripes_received,
)
from .rarest_first import RarestFirstSimulation
from .store_forward import FloodingReport, FloodingSimulation
from .trees import StripedTrees

__all__ = [
    "ChainOverlay",
    "ErasureOutcome",
    "FloodingReport",
    "FloodingSimulation",
    "MDSCode",
    "Packing",
    "RarestFirstSimulation",
    "StripedTrees",
    "TreeRoutingOutcome",
    "curtain_tree_decomposition",
    "evaluate_erasure_overlay",
    "pack_arborescences",
    "route_stripes",
    "stripes_received",
    "verify_packing",
]
