"""Baseline 2 — striped multiple multicast trees (SplitStream-style [4]).

The content is split into ``d`` stripes of rate 1/d; stripe ``s`` is
multicast over its own tree.  Each node is an *interior* node in exactly
one tree (forwarding that stripe to up to ``d`` children, spending its
whole upload bandwidth there) and a leaf in the other trees — so upload
equals download, like the overlay paper's model.  Reliability per stripe
decays with tree depth (≈ log_d N); stripes may be protected by an MDS
erasure code: receive any ``m`` of ``d`` stripes to decode (at rate m/d
of the full content).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.matrix import SERVER


@dataclass
class StripedTrees:
    """``d`` interior-disjoint multicast trees over ``population`` nodes.

    Construction (an idealised static snapshot, adequate for reliability
    and depth analysis): node ``v`` is interior in tree ``v mod d``.
    Within tree ``s`` the members occupy *heap positions*: the interior
    nodes of the stripe first (in join order), then everyone else.  The
    first ``d`` positions are fed by the server; position ``r >= d``
    hangs under the interior node at heap position ``r // d - 1``.  Every
    interior node thus has at most ``d`` children and depth is
    ``Θ(log_d N)``.

    Attributes:
        d: Stripe/tree count (= per-node bandwidth in stripe units).
        population: Node count.
        required_stripes: Stripes needed to decode (MDS ``m`` of ``d``);
            defaults to ``d`` (no erasure protection).
    """

    d: int
    population: int
    required_stripes: int = 0  # 0 -> defaults to d in __post_init__
    _interior: list[list[int]] = field(default_factory=list, repr=False)
    _position: list[dict[int, int]] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.d < 1 or self.population < 0:
            raise ValueError("need d >= 1 and population >= 0")
        if self.required_stripes == 0:
            self.required_stripes = self.d
        if not 1 <= self.required_stripes <= self.d:
            raise ValueError("required_stripes must be in [1, d]")
        self._interior = [
            [v for v in range(self.population) if v % self.d == s]
            for s in range(self.d)
        ]
        self._position = []
        for s in range(self.d):
            layout = list(self._interior[s]) + [
                v for v in range(self.population) if v % self.d != s
            ]
            self._position.append({v: r for r, v in enumerate(layout)})

    def parent_in_tree(self, node_id: int, stripe: int) -> int:
        """The node's parent in ``stripe``'s tree (``SERVER`` at the top)."""
        if not 0 <= node_id < self.population:
            raise KeyError(f"unknown node {node_id}")
        position = self._position[stripe][node_id]
        if position < self.d:
            return SERVER
        parent_position = position // self.d - 1
        interior = self._interior[stripe]
        parent_position = min(parent_position, len(interior) - 1)
        return interior[parent_position]

    def children_in_tree(self, node_id: int, stripe: int) -> list[int]:
        """The node's children in one stripe's tree (empty for leaves)."""
        return [
            v
            for v in range(self.population)
            if v != node_id and self.parent_in_tree(v, stripe) == node_id
        ]

    def depth_in_tree(self, node_id: int, stripe: int) -> int:
        """Hop depth of a node in one stripe's tree."""
        depth = 0
        current = node_id
        while current != SERVER:
            current = self.parent_in_tree(current, stripe)
            depth += 1
        return depth

    def stripe_delivery_probability(self, node_id: int, stripe: int, p: float) -> float:
        """P(stripe reaches node) = all tree ancestors working."""
        ancestors = 0
        current = self.parent_in_tree(node_id, stripe)
        while current != SERVER:
            ancestors += 1
            current = self.parent_in_tree(current, stripe)
        return float((1.0 - p) ** ancestors)

    def simulate_delivery(
        self, p: float, rng: np.random.Generator
    ) -> tuple[float, float]:
        """One trial: (mean stripes received / d, full-decode fraction).

        A working node decodes iff at least ``required_stripes`` stripes
        arrive through all-working ancestor chains.
        """
        if self.population == 0:
            return 1.0, 1.0
        working = rng.random(self.population) >= p
        received = np.zeros((self.population, self.d), dtype=bool)
        for s in range(self.d):
            # Evaluate in heap-position order so parents come first.
            layout = sorted(range(self.population), key=lambda v: self._position[s][v])
            for v in layout:
                parent = self.parent_in_tree(v, s)
                if parent == SERVER:
                    received[v, s] = True
                else:
                    received[v, s] = bool(working[parent]) and received[parent, s]
        working_ids = [v for v in range(self.population) if working[v]]
        if not working_ids:
            return 1.0, 1.0
        stripe_counts = received[working_ids].sum(axis=1)
        mean_fraction = float(stripe_counts.mean()) / self.d
        decode_fraction = float((stripe_counts >= self.required_stripes).mean())
        return mean_fraction, decode_fraction

    def max_depth(self) -> int:
        """Deepest node over all trees (the delay figure for E6)."""
        if self.population == 0:
            return 0
        return max(
            self.depth_in_tree(v, s)
            for v in range(self.population)
            for s in range(self.d)
        )
