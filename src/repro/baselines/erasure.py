"""Baseline 4 — erasure-coded multi-parent striping (the "past work" of §1).

Each of the server's ``k`` columns carries a distinct stripe of the
content, protected by an (k, m) MDS code (Reed–Solomon style, built on
our GF(2⁸) Vandermonde matrices): any ``m`` stripes reconstruct the
content.  A node receives the stripes of its ``d`` columns — but a
stripe survives only if every upstream occupant of that column works.
No mixing happens in the network, so a node holding fewer than ``m``
distinct stripes gains nothing from extra copies of the ones it has —
the coupon problem network coding eliminates.

Includes both the reliability *analysis* used by E7 and a real
encode/decode path proving the substrate correct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Optional

import numpy as np

from ..gf.linalg import matmul, solve, vandermonde
from ..core.matrix import ThreadMatrix


# ----------------------------------------------------------------------
# MDS code over GF(2^8)


@dataclass(frozen=True)
class MDSCode:
    """A systematic-free (n, m) MDS code from a Vandermonde generator.

    ``n`` coded stripes are produced from ``m`` source stripes; any ``m``
    coded stripes decode.  ``n`` must be at most 255 (distinct nonzero
    evaluation points in GF(256)).
    """

    n: int
    m: int

    def __post_init__(self) -> None:
        if not 1 <= self.m <= self.n <= 255:
            raise ValueError("need 1 <= m <= n <= 255")

    def generator(self) -> np.ndarray:
        """The ``n × m`` Vandermonde generator matrix."""
        return vandermonde(self.n, self.m)

    def encode(self, source: np.ndarray) -> np.ndarray:
        """Encode ``m × L`` source stripes into ``n × L`` coded stripes."""
        source = np.asarray(source, dtype=np.uint8)
        if source.ndim != 2 or source.shape[0] != self.m:
            raise ValueError(f"source must be {self.m} stripes")
        return matmul(self.generator(), source)

    def decode(self, stripe_indices: list[int], stripes: np.ndarray) -> np.ndarray:
        """Recover the source from any ``m`` coded stripes.

        Args:
            stripe_indices: Which coded stripes these are (row indices of
                the generator).
            stripes: ``m × L`` array of the stripe contents.
        """
        if len(stripe_indices) < self.m:
            raise ValueError(
                f"need {self.m} stripes, got {len(stripe_indices)}"
            )
        indices = list(stripe_indices)[: self.m]
        sub = self.generator()[indices, :]
        received = np.asarray(stripes, dtype=np.uint8)[: self.m]
        return solve(sub, received)


# ----------------------------------------------------------------------
# Reliability analysis on the curtain overlay


def stripes_received(
    matrix: ThreadMatrix,
    node_id: int,
    failed: AbstractSet[int],
) -> list[int]:
    """Columns whose full upstream chain above ``node_id`` is working.

    Those are the stripes the node receives under per-column striping
    with no in-network mixing.
    """
    alive = []
    for column in matrix.columns_of(node_id):
        chain = matrix.column_chain(column)
        position = chain.index(node_id)
        if all(w not in failed for w in chain[:position]):
            alive.append(column)
    return sorted(alive)


@dataclass(frozen=True)
class ErasureOutcome:
    """Delivery statistics of erasure striping under one failure set."""

    mean_stripe_count: float
    decode_fraction: float


def evaluate_erasure_overlay(
    matrix: ThreadMatrix,
    failed: AbstractSet[int],
    required: int,
    nodes: Optional[list[int]] = None,
) -> ErasureOutcome:
    """Fraction of working nodes holding >= ``required`` live stripes."""
    population = nodes if nodes is not None else matrix.node_ids
    working = [v for v in population if v not in failed]
    if not working:
        return ErasureOutcome(mean_stripe_count=0.0, decode_fraction=1.0)
    counts = []
    decodable = 0
    for node_id in working:
        count = len(stripes_received(matrix, node_id, failed))
        counts.append(count)
        if count >= required:
            decodable += 1
    return ErasureOutcome(
        mean_stripe_count=float(np.mean(counts)),
        decode_fraction=decodable / len(working),
    )
