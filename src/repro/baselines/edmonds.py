"""Baseline 3 — Edmonds' edge-disjoint branchings ("the theoretical
solution", §1).

Edmonds' theorem [8]: a digraph contains ``d`` edge-disjoint spanning
arborescences rooted at ``r`` iff every vertex has edge-connectivity at
least ``d`` from ``r``.  Routing one content stripe down each
arborescence achieves the full broadcast capacity — optimally — but, as
the paper stresses, the partition must be *recomputed whenever a node
fails*, which is impractical for short-lived failures.  Network coding
reaches the same rate with no trees at all.

Two constructions:

* :func:`curtain_tree_decomposition` — the curtain overlay's DAG has
  in-degree exactly ``d`` at every node, so colouring each node's ``d``
  incoming threads with distinct tree indices *is* a valid packing
  (every colour class gives each node exactly one parent that joined
  earlier, hence an arborescence rooted at the server).  O(N·d).
* :func:`pack_arborescences` — the general Lovász-style constructive
  algorithm with max-flow safety checks, for arbitrary graphs (small
  instances; used as a cross-check oracle and for post-failure repacking).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..analysis.flows import FlowNetwork
from ..core.matrix import SERVER, ThreadMatrix
from ..core.topology import OverlayGraph

#: A packing: ``trees[t][v]`` is v's parent in arborescence ``t``.
Packing = list[dict[int, int]]


def curtain_tree_decomposition(matrix: ThreadMatrix) -> Packing:
    """Colour each node's incoming threads into ``d`` arborescences.

    Requires a uniform-degree matrix (every row the same ``d``).  The
    t-th tree assigns every node its parent on its t-th column (in sorted
    column order) — parents always joined earlier, so each colour class
    is a spanning arborescence rooted at the server, and the classes are
    edge-disjoint because they use disjoint thread segments.
    """
    node_ids = matrix.node_ids
    if not node_ids:
        return []
    degrees = {matrix.row(n).degree for n in node_ids}
    if len(degrees) != 1:
        raise ValueError("curtain decomposition requires uniform degree")
    d = degrees.pop()
    trees: Packing = [dict() for _ in range(d)]
    for node_id in node_ids:
        parents = matrix.parents_of(node_id)
        for t, column in enumerate(sorted(parents)):
            trees[t][node_id] = parents[column]
    return trees


def verify_packing(graph: OverlayGraph, trees: Packing) -> bool:
    """Check a packing: spanning, arborescent, edge-disjoint.

    Each tree must give every graph node exactly one parent, parent
    chains must reach the server acyclically, and no (u, v) pair may be
    used by more trees than the edge multiplicity in ``graph``.
    """
    usage: dict[tuple[int, int], int] = {}
    for tree in trees:
        if set(tree) != set(graph.nodes):
            return False
        for v, u in tree.items():
            if u != SERVER and u not in graph.nodes:
                return False
            usage[(u, v)] = usage.get((u, v), 0) + 1
        # Acyclicity / rootedness: follow chains with a visited guard.
        state: dict[int, int] = {}  # 0=in progress, 1=done
        for start in tree:
            path = []
            v = start
            while v != SERVER and state.get(v) != 1:
                if state.get(v) == 0:
                    return False  # cycle
                state[v] = 0
                path.append(v)
                v = tree[v]
            for w in path:
                state[w] = 1
    for (u, v), count in usage.items():
        if count > graph.succ.get(u, {}).get(v, 0):
            return False
    return True


def _connectivities(
    graph_edges: dict[tuple[int, int], int],
    targets: list[int],
    limit: int,
) -> dict[int, int]:
    """λ(SERVER → v) for each target, capped at ``limit``."""
    result = {}
    network = FlowNetwork()
    network.vertex(SERVER)
    for (u, v), mult in graph_edges.items():
        network.add_edge(u, v, mult)
    base = network.snapshot()
    for v in targets:
        if not network.has_vertex(v):
            result[v] = 0
            continue
        result[v] = network.max_flow(SERVER, v, limit=limit)
        network.restore(base)
    return result


def pack_arborescences(
    graph: OverlayGraph,
    count: int,
    rng: Optional[np.random.Generator] = None,
    max_candidate_tries: Optional[int] = None,
) -> Packing:
    """General Lovász-style packing of ``count`` arborescences.

    Grows each arborescence edge by edge; an edge is accepted only if the
    residual graph still supports the remaining requirement (``count - i``
    full trees' worth of connectivity for vertices not yet spanned,
    one less for vertices already spanned).  Edmonds' theorem guarantees
    a safe edge always exists when the input connectivity suffices;
    raises ``ValueError`` otherwise.

    Exponentially safer but polynomially slower than the curtain fast
    path — intended for small graphs (N up to a few hundred).
    """
    rng = rng or np.random.default_rng()
    nodes = sorted(graph.nodes)
    edges: dict[tuple[int, int], int] = {}
    for u, targets in graph.succ.items():
        for v, mult in targets.items():
            edges[(u, v)] = mult
    initial = _connectivities(edges, nodes, count)
    short = [v for v, c in initial.items() if c < count]
    if short:
        raise ValueError(
            f"connectivity below {count} at nodes {short[:5]} — packing impossible"
        )
    trees: Packing = []
    for i in range(count):
        remaining = count - i  # trees still to build, including this one
        tree: dict[int, int] = {}
        in_tree = {SERVER}
        while len(tree) < len(nodes):
            frontier = [
                (u, v)
                for (u, v), mult in edges.items()
                if mult > 0 and u in in_tree and v not in in_tree
            ]
            if not frontier:
                raise ValueError("frontier empty — input violated the invariant")
            order = list(rng.permutation(len(frontier)))
            tries = len(order) if max_candidate_tries is None else min(
                len(order), max_candidate_tries
            )
            accepted = None
            for index in order[:tries]:
                u, v = frontier[int(index)]
                edges[(u, v)] -= 1
                # Lovász's extension lemma: e is safe iff, with the tree
                # edges so far and e removed, EVERY vertex still has
                # connectivity >= remaining - 1 (enough for the trees
                # still to come).  A safe edge always exists.
                if remaining - 1 == 0:
                    accepted = (u, v)
                    break
                lambdas = _connectivities(edges, nodes, remaining - 1)
                if all(c >= remaining - 1 for c in lambdas.values()):
                    accepted = (u, v)
                    break
                edges[(u, v)] += 1  # roll back, try next candidate
            if accepted is None:
                raise ValueError("no safe edge found — packing failed")
            u, v = accepted
            tree[v] = u
            in_tree.add(v)
        trees.append(tree)
    return trees


@dataclass(frozen=True)
class TreeRoutingOutcome:
    """Delivery outcome of routing stripes down a fixed packing.

    Attributes:
        mean_stripe_fraction: Mean (over working nodes) fraction of
            stripes whose tree path was all-working.
        full_delivery_fraction: Working nodes that received every stripe.
        affected_by_failure: Working nodes that lost at least one stripe.
    """

    mean_stripe_fraction: float
    full_delivery_fraction: float
    affected_by_failure: float


def route_stripes(
    trees: Packing,
    failed: set[int],
    nodes: Optional[list[int]] = None,
) -> TreeRoutingOutcome:
    """Evaluate a fixed packing under a failure set — no recomputation.

    A node receives stripe ``t`` iff its entire parent chain in tree ``t``
    is working.  This is the fragility the paper contrasts with coding:
    the packing was optimal when computed, but failures break whole
    subtrees until trees are recomputed.
    """
    if not trees:
        return TreeRoutingOutcome(1.0, 1.0, 0.0)
    population = nodes if nodes is not None else sorted(trees[0])
    working = [v for v in population if v not in failed]
    if not working:
        return TreeRoutingOutcome(1.0, 1.0, 0.0)
    fractions = []
    full = 0
    affected = 0
    # memoised chain evaluation per tree
    for v in working:
        got = 0
        for tree in trees:
            ok = True
            w = v
            while w != SERVER:
                w = tree[w]
                if w != SERVER and w in failed:
                    ok = False
                    break
            if ok:
                got += 1
        fractions.append(got / len(trees))
        if got == len(trees):
            full += 1
        else:
            affected += 1
    return TreeRoutingOutcome(
        mean_stripe_fraction=float(np.mean(fractions)),
        full_delivery_fraction=full / len(working),
        affected_by_failure=affected / len(working),
    )
