"""Baseline 5 — uncoded store-and-forward (random packet flooding).

Same overlay, same slot discipline as the RLNC simulator — literally the
same kernel since the runtime unification: this is a
:class:`~repro.sim.runtime.SlottedRuntime` over the curtain topology
with a :class:`~repro.sim.behaviors.StoreForwardBehavior` instead of
RLNC recoding.  Nodes forward a uniformly random *unmodified* packet
from their buffer instead of a fresh mixture.  Receivers must collect
all ``g`` distinct source packets — the coupon-collector problem: the
last few packets take disproportionately long, and duplicate deliveries
waste bandwidth.  Network coding's whole point is that every random
mixture is (almost surely) useful; this baseline quantifies the gap.
"""

from __future__ import annotations

from typing import Optional

from ..core.overlay import OverlayNetwork
from ..sim.behaviors import StoreForwardBehavior
from ..sim.links import LinkStats, LossModel
from ..sim.report import FloodingReport, RunReport
from ..sim.rng import RngStreams
from ..sim.runtime import DEFAULT_MAX_SLOTS, CurtainTopology, SlottedRuntime

__all__ = ["FloodingReport", "FloodingSimulation"]


class FloodingSimulation:
    """Uncoded random forwarding of ``packet_count`` distinct packets.

    Packets are abstract indices (payload content is irrelevant to the
    collection dynamics).  The server sends a uniformly random packet
    index down each column each slot (cycling deterministically per
    column would trap each column in a residue class of the packet
    indices whenever gcd(k, packet_count) > 1); peers forward a random
    buffered index per thread per slot.
    """

    behavior_class = StoreForwardBehavior

    def __init__(
        self,
        net: OverlayNetwork,
        packet_count: int,
        seed: Optional[int] = None,
        loss: Optional[LossModel] = None,
    ) -> None:
        self.net = net
        self.packet_count = packet_count
        self.streams = RngStreams(seed)
        self.behavior = self.behavior_class(packet_count, self.streams)
        self.topology = CurtainTopology(net)
        self.runtime = SlottedRuntime(
            self.topology, self.behavior, streams=self.streams, loss=loss
        )

    # -- delegated state -----------------------------------------------

    @property
    def loss(self) -> LossModel:
        return self.runtime.loss

    @property
    def slot(self) -> int:
        return self.runtime.slot

    @property
    def link_stats(self) -> LinkStats:
        return self.runtime.link_stats

    @property
    def _buffers(self) -> dict[int, set[int]]:
        return self.behavior._buffers

    @property
    def _received(self) -> dict[int, int]:
        return self.behavior._received

    @property
    def _completed_at(self) -> dict[int, int]:
        return self.behavior._completed_at

    @property
    def _server_cursor(self) -> int:
        return self.behavior.server_cursor

    def buffer_of(self, node_id: int) -> set[int]:
        return self.behavior.buffer_of(node_id)

    # -- running --------------------------------------------------------

    def step(self) -> None:
        """One slot: emissions from current buffers, then delivery."""
        self.runtime.step()

    def run_until_complete(self, max_slots: int = DEFAULT_MAX_SLOTS) -> FloodingReport:
        """Run until every working node collects everything (or timeout)."""
        self.runtime.run_until_complete(max_slots)
        return self.report()

    def run_report(self) -> RunReport:
        """The unified per-node report (richer than :class:`FloodingReport`)."""
        return self.runtime.report()

    def report(self) -> FloodingReport:
        """Aggregate statistics over the current working nodes."""
        return FloodingReport.from_run(self.runtime.report())
