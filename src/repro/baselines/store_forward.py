"""Baseline 5 — uncoded store-and-forward (random packet flooding).

Same overlay, same slot discipline as the RLNC simulator, but nodes
forward a uniformly random *unmodified* packet from their buffer instead
of a fresh mixture.  Receivers must collect all ``g`` distinct source
packets — the coupon-collector problem: the last few packets take
disproportionately long, and duplicate deliveries waste bandwidth.
Network coding's whole point is that every random mixture is (almost
surely) useful; this baseline quantifies the gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.overlay import OverlayNetwork
from ..sim.links import LinkStats, LossModel
from ..sim.rng import RngStreams


@dataclass
class FloodingReport:
    """Outcome of an uncoded flooding run."""

    slots: int
    completion_fraction: float
    mean_unique_fraction: float
    duplicate_fraction: float
    completion_slots: list[int] = field(default_factory=list)


class FloodingSimulation:
    """Uncoded random forwarding of ``packet_count`` distinct packets.

    Packets are abstract indices (payload content is irrelevant to the
    collection dynamics).  The server sends a uniformly random packet
    index down each column each slot (cycling deterministically per
    column would trap each column in a residue class of the packet
    indices whenever gcd(k, packet_count) > 1); peers forward a random
    buffered index per thread per slot.
    """

    def __init__(
        self,
        net: OverlayNetwork,
        packet_count: int,
        seed: Optional[int] = None,
        loss: Optional[LossModel] = None,
    ) -> None:
        if packet_count < 1:
            raise ValueError("packet_count must be >= 1")
        self.net = net
        self.packet_count = packet_count
        self.streams = RngStreams(seed)
        self.loss = loss or LossModel(0.0)
        self.slot = 0
        self.link_stats = LinkStats()
        self._buffers: dict[int, set[int]] = {}
        self._received: dict[int, int] = {}
        self._completed_at: dict[int, int] = {}
        self._server_cursor = 0

    def buffer_of(self, node_id: int) -> set[int]:
        buffer = self._buffers.get(node_id)
        if buffer is None:
            buffer = set()
            self._buffers[node_id] = buffer
            self._received[node_id] = 0
        return buffer

    def step(self) -> None:
        """One slot: emissions from current buffers, then delivery."""
        matrix = self.net.matrix
        failed = self.net.server.failed
        forward_rng = self.streams.get("forward")
        loss_rng = self.streams.get("loss")
        sends: list[tuple[int, int]] = []
        server_rng = self.streams.get("server")
        for column in range(matrix.k):
            chain = matrix.column_chain(column)
            if not chain:
                continue
            sends.append((chain[0], int(server_rng.integers(0, self.packet_count))))
            self._server_cursor += 1
        for node_id in matrix.node_ids:
            if node_id in failed:
                continue
            buffer = self.buffer_of(node_id)
            if not buffer:
                continue
            items = sorted(buffer)
            for column, child in matrix.children_of(node_id).items():
                if child is None:
                    continue
                pick = items[int(forward_rng.integers(0, len(items)))]
                sends.append((child, pick))
        for destination, packet in sends:
            delivered = destination not in failed and self.loss.delivers(loss_rng)
            self.link_stats.record(delivered)
            if not delivered:
                continue
            buffer = self.buffer_of(destination)
            self._received[destination] += 1
            if packet not in buffer:
                buffer.add(packet)
                if (
                    len(buffer) == self.packet_count
                    and destination not in self._completed_at
                ):
                    self._completed_at[destination] = self.slot
        self.slot += 1

    def run_until_complete(self, max_slots: int = 10_000) -> FloodingReport:
        """Run until every working node collects everything (or timeout)."""
        while self.slot < max_slots:
            targets = self.net.working_nodes
            if targets and all(t in self._completed_at for t in targets):
                break
            self.step()
        return self.report()

    def report(self) -> FloodingReport:
        """Aggregate statistics over the current working nodes."""
        targets = self.net.working_nodes
        unique_fractions = []
        duplicates = 0
        received = 0
        done = 0
        completion = []
        for node_id in targets:
            buffer = self._buffers.get(node_id, set())
            got = self._received.get(node_id, 0)
            unique_fractions.append(len(buffer) / self.packet_count)
            duplicates += max(0, got - len(buffer))
            received += got
            if node_id in self._completed_at:
                done += 1
                completion.append(self._completed_at[node_id])
        return FloodingReport(
            slots=self.slot,
            completion_fraction=done / len(targets) if targets else 0.0,
            mean_unique_fraction=(
                float(np.mean(unique_fractions)) if unique_fractions else 0.0
            ),
            duplicate_fraction=duplicates / received if received else 0.0,
            completion_slots=completion,
        )
