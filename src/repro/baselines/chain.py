"""Baseline 1 — the distribution *path* (§1's strawman).

Each node has enough bandwidth and incentive to forward to exactly one
other node, so the server's k unit-streams become k chains, each carrying
the full content at rate 1... and each hop multiplies reliability by
(1 − p).  With a million nodes and a hundred chains, depths reach ten
thousand and "the probability that any one of the upstream nodes fails is
significant" — the motivating failure of this design.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.matrix import SERVER
from ..core.topology import OverlayGraph


@dataclass(frozen=True)
class ChainOverlay:
    """``k`` equal-length chains hanging off the server.

    Attributes:
        k: Number of chains (server bandwidth in full-content streams).
        population: Total nodes, distributed round-robin across chains.
    """

    k: int
    population: int

    def __post_init__(self) -> None:
        if self.k < 1 or self.population < 0:
            raise ValueError("need k >= 1 and population >= 0")

    def chain_of(self, node_id: int) -> int:
        """Which chain a node sits on (round-robin by join order)."""
        return node_id % self.k

    def depth_of(self, node_id: int) -> int:
        """1-based hop depth of a node on its chain."""
        return node_id // self.k + 1

    def to_overlay_graph(self) -> OverlayGraph:
        """Materialise the chains as an overlay graph."""
        graph = OverlayGraph()
        previous: dict[int, int] = {}
        for node_id in range(self.population):
            graph.add_node(node_id)
            chain = self.chain_of(node_id)
            graph.add_edge(previous.get(chain, SERVER), node_id)
            previous[chain] = node_id
        return graph

    def delivery_probability(self, node_id: int, p: float) -> float:
        """P(node receives) = every upstream node on the chain works.

        The node itself must work too, matching how the overlay metrics
        count only working nodes: ``(1-p)^(depth-1)`` for ancestors.
        """
        return float((1.0 - p) ** (self.depth_of(node_id) - 1))

    def mean_delivery(self, p: float) -> float:
        """Average delivery probability over working nodes (closed form)."""
        return float(
            np.mean(
                [self.delivery_probability(n, p) for n in range(self.population)]
            )
        ) if self.population else 1.0

    def simulate_delivery(self, p: float, rng: np.random.Generator) -> float:
        """One Monte-Carlo trial: fraction of working nodes still served."""
        working = rng.random(self.population) >= p
        served = 0
        total_working = 0
        chain_alive = [True] * self.k
        for node_id in range(self.population):
            chain = self.chain_of(node_id)
            if not working[node_id]:
                chain_alive[chain] = False
                continue
            total_working += 1
            if chain_alive[chain]:
                served += 1
        return served / total_working if total_working else 1.0
