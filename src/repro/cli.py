"""Command-line interface: run scenarios, live transport, quick analyses.

Usage::

    python -m repro.cli scenario live_streaming --seed 3
    python -m repro.cli scenario file_download --population 40
    python -m repro.cli overlay --k 24 --d 3 --peers 200 --fail 5
    python -m repro.cli collapse --k 12 --d 2 --p 0.03 --runs 10
    python -m repro.cli demo --peers 8 --kill 1
    python -m repro.cli chaos --list
    python -m repro.cli chaos all --seed 3
    python -m repro.cli chaos crash_parent_midstream --transport live
    python -m repro.cli serve --port 9470 &
    python -m repro.cli join --port 9470

The CLI is a thin veneer over the library; everything it prints is
reachable programmatically (see README quickstart).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import logging
import os
import sys
from pathlib import Path
from typing import Optional

import numpy as np

from .dataplane import FORWARD_POLICIES


def _configure_logging(level: Optional[str]) -> None:
    """Route ``repro.net.*`` logs to stderr at the requested level.

    Without ``--log-level`` the library stays silent below WARNING
    (Python's last-resort handler), so tests and benches see no output.
    """
    if not level:
        return
    handler = logging.StreamHandler()
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
    )
    logger = logging.getLogger("repro.net")
    logger.addHandler(handler)
    logger.setLevel(getattr(logging, level.upper()))


def _write_stats_json(path: Optional[str], snapshot: Optional[dict]) -> None:
    """Dump one obs snapshot to ``path`` (no-op when either is unset)."""
    if path is None or snapshot is None:
        return
    text = json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    Path(path).write_text(text)
    print(f"stats snapshot written to {path}")


def _install_event_loop(no_uvloop: bool) -> str:
    """Install uvloop's event-loop policy when available; return the name.

    The live-transport commands (``serve``/``join``/``demo``) opt into
    uvloop whenever it is importable — bench runs on a stock interpreter
    simply fall back to asyncio.  ``--no-uvloop`` forces the fallback so
    A/B comparisons can pin the loop; the chosen loop is always printed
    at startup so recorded runs say which one they used.
    """
    if no_uvloop:
        return "asyncio"
    try:
        import uvloop
    except ImportError:
        return "asyncio"
    uvloop.install()
    return "uvloop"


def _cmd_scenario(args: argparse.Namespace) -> int:
    from . import workloads
    from .sim import run_session

    presets = {
        "live_streaming": workloads.live_streaming,
        "file_download": workloads.file_download,
        "flash_crowd": workloads.flash_crowd,
    }
    preset = presets[args.name]
    overrides = {}
    if args.population:
        overrides["population"] = args.population
    if args.max_slots:
        overrides["max_slots"] = args.max_slots
    config = preset(seed=args.seed, **overrides)
    if args.topology != "curtain":
        config.topology = args.topology
        config.fail_probability = 0.0  # the §6 overlay has no repair protocol
    print(f"running scenario {args.name!r}: k={config.k} d={config.d} "
          f"N={config.population} content={config.content_size}B "
          f"topology={config.topology}")
    result = run_session(config)
    report = result.report
    print(f"slots: {report.slots}")
    print(f"completion: {report.completion_fraction:.1%}")
    print(f"failures/repairs: {result.failures_injected}/{result.repairs_performed}"
          f"  joins: {result.joins}  leaves: {result.graceful_leaves}")
    print(f"link delivery: {report.link_stats.delivery_ratio:.3f}")
    slots = report.completion_slots()
    if slots:
        print(f"decode slots: min {min(slots)} median "
              f"{sorted(slots)[len(slots) // 2]} max {max(slots)}")
    bad = [n.node_id for n in report.nodes if n.decoded_ok is False]
    print(f"corrupt decodes: {len(bad)}")
    return 0 if not bad else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    """RLNC vs the uncoded baselines on one overlay, one data plane.

    All three schemes run through :class:`repro.sim.SlottedRuntime` with
    the same curtain topology, loss model, and slot budget — the
    apples-to-apples comparison the unified runtime exists for.
    """
    from .baselines import FloodingSimulation, RarestFirstSimulation
    from .coding.generation import GenerationParams
    from .core import OverlayNetwork
    from .sim import BroadcastSimulation, LossModel

    def build_net():
        net = OverlayNetwork(k=args.k, d=args.d, seed=args.seed)
        net.grow(args.peers)
        return net

    rng = np.random.default_rng(args.seed)
    content = bytes(
        rng.integers(0, 256, size=args.g * args.payload, dtype=np.uint8)
    )
    loss = LossModel(args.p)
    rlnc = BroadcastSimulation(
        build_net(), content, GenerationParams(args.g, args.payload),
        seed=args.seed, loss=loss,
        forward_policy=args.forward_policy, seed_burst=args.seed_burst,
    )
    flood = FloodingSimulation(build_net(), packet_count=args.g,
                               seed=args.seed, loss=loss)
    rarest = RarestFirstSimulation(build_net(), packet_count=args.g,
                                   seed=args.seed, loss=loss)
    print(f"comparing schemes: k={args.k} d={args.d} N={args.peers} "
          f"g={args.g} loss={args.p} budget={args.max_slots} slots "
          f"policy={args.forward_policy}")
    rows = [
        ("rlnc", rlnc.run_until_complete(max_slots=args.max_slots)),
        ("store-forward", flood.run_until_complete(max_slots=args.max_slots)),
        ("rarest-first", rarest.run_until_complete(max_slots=args.max_slots)),
    ]
    for name, report in rows:
        slots = (report.completion_slots() if callable(report.completion_slots)
                 else report.completion_slots)
        last = max(slots) if slots else args.max_slots
        print(f"  {name:>14}: completion {report.completion_fraction:.1%}  "
              f"mean slot {report.mean_completion_slot():.1f}  "
              f"p95 {report.completion_percentile(95):.0f}  last {last}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    """One-process live deployment: server + N peers over loopback TCP."""
    from .net import LoopbackConfig, run_loopback_sync

    loop_name = _install_event_loop(args.no_uvloop)
    _configure_logging(args.log_level)
    config = LoopbackConfig(
        peers=args.peers, k=args.k, d=args.d,
        generation_size=args.g, payload_size=args.payload,
        generations=args.generations, seed=args.seed,
        insert_mode=args.insert_mode, deadline=args.deadline,
        kill_peer=args.kill if args.kill >= 0 else None,
        metrics_port=args.metrics_port,
    )
    print(f"event loop: {loop_name}")
    print(f"loopback demo: {config.peers} peers  k={config.k} d={config.d}  "
          f"{config.generations} generations of "
          f"g={config.generation_size}x{config.payload_size}B  "
          f"insert={config.insert_mode}"
          + (f"  killing peer #{args.kill} mid-run" if args.kill >= 0 else ""))
    result = run_loopback_sync(config)
    report = result.report
    if result.metrics_port is not None:
        print(f"metrics served on http://127.0.0.1:{result.metrics_port}/metrics "
              "during the run")
    _write_stats_json(args.stats_json, result.snapshot)
    print(f"converged: {result.converged}  "
          f"wall clock: {result.wall_clock:.2f}s  rounds: {report.slots}")
    print(f"completion: {report.completion_fraction:.1%}  "
          f"server packets: {report.server_packets}  "
          f"link delivery: {report.link_stats.delivery_ratio:.3f} "
          f"({result.drops} backpressure drops)")
    print(f"repairs: {result.repairs}  reconnects: {result.reconnects}  "
          f"complaints: {result.complaints}")
    slots = report.completion_slots()
    if slots:
        print(f"decode rounds: min {min(slots)} "
              f"median {sorted(slots)[len(slots) // 2]} max {max(slots)}")
    bad = [n.node_id for n in report.nodes if n.decoded_ok is False]
    print(f"corrupt decodes: {len(bad)}")
    return 0 if result.converged and not bad else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Replay chaos scenarios against the virtual or the live transport."""
    from .net.testing import SCENARIOS, run_scenario_sync, trace_digest

    if args.list:
        for spec in SCENARIOS.values():
            transports = "virtual" if spec.requires_virtual else "virtual, live"
            print(f"{spec.name}  [{transports}]")
            print(f"    {spec.description}")
        return 0
    if args.name is None:
        print("chaos: name a scenario or pass --list", file=sys.stderr)
        return 2
    if args.name == "all":
        names = [
            name for name, spec in SCENARIOS.items()
            if args.transport == "virtual" or not spec.requires_virtual
        ]
    else:
        names = [args.name]
    failures = 0
    for name in names:
        result = run_scenario_sync(
            name, seed=args.seed, transport=args.transport
        )
        line = result.summary()
        if result.trace:
            line += f"  trace={len(result.trace)} events digest={trace_digest(result.trace)}"
        print(line)
        failures += 0 if result.ok else 1
    if len(names) > 1:
        print(f"{len(names) - failures}/{len(names)} scenarios ok "
              f"(transport={args.transport}, seed={args.seed})")
    return 0 if failures == 0 else 1


def _cmd_soak(args: argparse.Namespace) -> int:
    """Long-horizon churn soak on the turbo virtual network."""
    from .net.testing import SoakConfig, run_soak

    peers, hours, epoch = args.peers, args.hours, args.epoch
    if args.smoke:
        # CI-grade preset: small population, minutes of virtual time.
        peers = peers if args.peers != 1000 else 200
        hours = min(hours, 0.1)
        epoch = min(epoch, 30.0)
    config = SoakConfig(
        peers=peers,
        hours=hours,
        epoch=epoch,
        trace=args.trace,
        seed=args.seed,
    )
    print(f"soaking {config.trace!r}: n={config.peers} "
          f"horizon={config.hours:g}h epoch={config.epoch:g}s "
          f"seed={config.seed}")
    report = asyncio.run(run_soak(config))
    print(report.summary())
    for violation in report.violations:
        print(f"  violation: {violation}")
    if report.flight_dump and args.dump:
        print(report.flight_dump)
    if args.trace_out:
        report.history.save(args.trace_out)
        print(f"churn trace ({len(report.history)} events) written to "
              f"{args.trace_out}")
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run a standalone coordination + source server."""
    from .coding.generation import GenerationParams
    from .net import ServerNode
    from .obs.http import MetricsServer

    loop_name = _install_event_loop(args.no_uvloop)
    _configure_logging(args.log_level)
    params = GenerationParams(args.g, args.payload)
    rng = np.random.default_rng(args.seed)
    content = rng.integers(
        0, 256, size=args.generations * params.generation_bytes, dtype=np.uint8
    ).tobytes()

    async def _run() -> int:
        print(f"event loop: {loop_name}")
        server = ServerNode(
            content, params, k=args.k, d=args.d,
            host=args.host, port=args.port, seed=args.seed,
            insert_mode=args.insert_mode, send_interval=args.interval,
        )
        await server.start()
        print(f"serving on {server.host}:{server.port}  k={args.k} d={args.d}  "
              f"{args.generations} generations of g={args.g}x{args.payload}B")
        metrics = None
        if args.metrics_port is not None:
            metrics = await MetricsServer(
                server.snapshot, port=args.metrics_port
            ).start()
            print(f"metrics on http://127.0.0.1:{metrics.port}/metrics "
                  f"(JSON at /metrics.json)", flush=True)
        try:
            if args.duration > 0:
                await asyncio.sleep(args.duration)
            else:
                await server.serve_forever()
        except (KeyboardInterrupt, asyncio.CancelledError):
            pass
        finally:
            snapshot = server.snapshot()
            if metrics is not None:
                await metrics.stop()
            await server.stop()
        print(f"served {server.stats.packets_sent} packets over "
              f"{server.stats.rounds} rounds; joins={server.stats.joins} "
              f"leaves={server.stats.leaves} repairs={server.stats.repairs}")
        _write_stats_json(args.stats_json, snapshot)
        return 0

    try:
        return asyncio.run(_run())
    except KeyboardInterrupt:
        return 0


def _cmd_join(args: argparse.Namespace) -> int:
    """Join a running server as one live peer; exit when decoded."""
    from .net import PeerNode
    from .obs.http import MetricsServer

    loop_name = _install_event_loop(args.no_uvloop)
    _configure_logging(args.log_level)

    async def _run() -> int:
        print(f"event loop: {loop_name}")
        done = asyncio.Event()
        peer = PeerNode(args.host, args.port, seed=args.seed,
                        on_complete=lambda _peer: done.set())
        await peer.start()
        print(f"joined as node {peer.node_id}: "
              f"threads {sorted(peer.parents)}  listening on {peer.port}")
        metrics = None
        if args.metrics_port is not None:
            metrics = await MetricsServer(
                peer.snapshot, port=args.metrics_port
            ).start()
            print(f"metrics on http://127.0.0.1:{metrics.port}/metrics "
                  f"(JSON at /metrics.json)", flush=True)
        try:
            await asyncio.wait_for(done.wait(), timeout=args.deadline)
        except asyncio.TimeoutError:
            pass
        ok = peer.completed
        print(f"rank {peer.rank}/{peer.needed}  "
              f"received {peer.stats.received} "
              f"(innovative {peer.stats.innovative})  "
              f"reconnects {peer.stats.reconnects}")
        if ok:
            print(f"decoded {len(peer.recovered_content())} bytes")
        if args.linger > 0:
            # Keep forwarding to children after our own decode (a seed).
            await asyncio.sleep(args.linger)
        snapshot = peer.snapshot()
        if metrics is not None:
            await metrics.stop()
        await peer.leave()
        _write_stats_json(args.stats_json, snapshot)
        return 0 if ok else 1

    try:
        return asyncio.run(_run())
    except KeyboardInterrupt:
        return 0


def _cmd_overlay(args: argparse.Namespace) -> int:
    from .analysis import delay_profile
    from .core import OverlayNetwork

    net = OverlayNetwork(k=args.k, d=args.d, seed=args.seed,
                         insert_mode=args.insert_mode)
    net.grow(args.peers)
    for _ in range(args.fail):
        net.fail(net.random_working_node())
    print(f"overlay: k={args.k} d={args.d} peers={net.population} "
          f"failed={len(net.failed)} insert={args.insert_mode}")
    print(f"connectivity histogram: {net.connectivity_histogram()}")
    profile = delay_profile(net.graph())
    print(f"depth: mean {profile.mean_depth:.1f}  p95 {profile.p95_depth:.0f}  "
          f"max {profile.max_depth}  unreachable {profile.unreachable}")
    summary = net.defect_summary(samples=args.defect_samples)
    print(f"defect (B/A estimate over {summary.samples} tuples): "
          f"{summary.mean_defect:.4f}  bad-tuple fraction: {summary.bad_fraction:.4f}")
    return 0


def _cmd_trajectory(args: argparse.Namespace) -> int:
    from .analysis import measure_defect_trajectory
    from .metrics import sparkline
    from .theory import theorem4_prediction

    trajectory = measure_defect_trajectory(
        k=args.k, d=args.d, p=args.p, arrivals=args.arrivals,
        sample_every=args.sample_every, seed=args.seed,
    )
    try:
        attractor = theorem4_prediction(args.k, args.d, args.p).attractor
    except ValueError:
        attractor = None  # outside the drift regime (pd too large)
    values = trajectory.values
    ceiling = max(max(values), attractor or 0.0) or 1.0
    print(f"defect trajectory  k={args.k} d={args.d} p={args.p} "
          f"({args.arrivals} arrivals, sampled every {args.sample_every})")
    print(f"  {sparkline(values, low=0.0, high=ceiling)}")
    print(f"steady-state mean B/A: {trajectory.steady_state_mean():.4f}   "
          f"peak: {trajectory.peak():.4f}")
    if attractor is None:
        print(f"paper: pd = {args.p * args.d:.4f}   "
              "(pd too large for a drift attractor at this k, d)")
    else:
        print(f"paper: pd = {args.p * args.d:.4f}   "
              f"drift attractor a1 = {attractor:.4f}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Render an obs snapshot (file or live endpoint) as tables."""
    from .metrics.report import render_table
    from .obs import validate_snapshot

    if args.source.startswith(("http://", "https://")):
        from urllib.request import urlopen

        with urlopen(args.source) as response:
            obj = json.load(response)
    else:
        obj = json.loads(Path(args.source).read_text())
    problems = validate_snapshot(obj)
    if problems:
        print(f"invalid snapshot {args.source!r}:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    for name in sorted(obj["registries"]):
        sections = obj["registries"][name]
        rows = []
        for metric, value in sorted(sections["counters"].items()):
            rows.append(("counter", metric, value))
        for metric, value in sorted(sections["gauges"].items()):
            rows.append(("gauge", metric, value))
        for metric, hist in sorted(sections["histograms"].items()):
            count = hist["count"]
            mean = hist["sum"] / count if count else 0.0
            rows.append(
                ("histogram", metric, f"n={count} mean={mean:.3g}")
            )
        print(render_table(("kind", "metric", "value"), rows,
                           title=f"registry: {name}"))
        print()
    return 0


def _cmd_collapse(args: argparse.Namespace) -> int:
    from .theory import collapse_exponent, mean_walk_collapse_time

    rng = np.random.default_rng(args.seed)
    mean, censored = mean_walk_collapse_time(
        k=args.k, d=args.d, p=args.p, runs=args.runs, rng=rng,
        max_steps=args.max_steps,
    )
    print(f"k={args.k} d={args.d} p={args.p}  k/d^3={collapse_exponent(args.k, args.d):.2f}")
    print(f"mean collapse steps over {args.runs} walks: {mean:.0f} "
          f"({censored} censored at {args.max_steps})")
    return 0


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """Observability flags shared by the live-transport commands."""
    parser.add_argument("--metrics-port", type=int, default=None,
                        dest="metrics_port", metavar="PORT",
                        help="serve Prometheus/JSON metrics over HTTP "
                             "(0 = ephemeral port)")
    parser.add_argument("--stats-json", default=None, dest="stats_json",
                        metavar="PATH",
                        help="write the final obs snapshot to this file")
    parser.add_argument("--log-level", default=None, dest="log_level",
                        choices=["debug", "info", "warning"],
                        help="emit repro.net.* logs to stderr at this level")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="P2P broadcast overlays with network coding"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    scenario = sub.add_parser("scenario", help="run a named end-to-end scenario")
    scenario.add_argument("name",
                          choices=["live_streaming", "file_download", "flash_crowd"])
    scenario.add_argument("--seed", type=int, default=0)
    scenario.add_argument("--population", type=int, default=0)
    scenario.add_argument("--max-slots", type=int, default=0, dest="max_slots")
    scenario.add_argument("--topology", choices=["curtain", "graph"],
                          default="curtain",
                          help="overlay family (curtain matrix or §6 random graph)")
    scenario.set_defaults(func=_cmd_scenario)

    compare = sub.add_parser(
        "compare", help="RLNC vs uncoded baselines on the unified data plane"
    )
    compare.add_argument("--k", type=int, default=8)
    compare.add_argument("--d", type=int, default=2)
    compare.add_argument("--peers", type=int, default=32)
    compare.add_argument("--g", type=int, default=16)
    compare.add_argument("--payload", type=int, default=128)
    compare.add_argument("--p", type=float, default=0.02)
    compare.add_argument("--max-slots", type=int, default=600, dest="max_slots")
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument(
        "--forward-policy", choices=list(FORWARD_POLICIES), default="eager",
        dest="forward_policy",
        help="RLNC relay policy: eager emits on every edge every slot; "
             "innovative spends one emission per edge per rank raise "
             "(plus --seed-burst unconditional packets)",
    )
    compare.add_argument(
        "--seed-burst", type=int, default=1, dest="seed_burst",
        help="unconditional packets per edge under --forward-policy "
             "innovative",
    )
    compare.set_defaults(func=_cmd_compare)

    demo = sub.add_parser(
        "demo", help="live loopback deployment: server + N peers on real sockets"
    )
    demo.add_argument("--peers", type=int, default=8)
    demo.add_argument("--k", type=int, default=4)
    demo.add_argument("--d", type=int, default=2)
    demo.add_argument("--g", type=int, default=16)
    demo.add_argument("--payload", type=int, default=128)
    demo.add_argument("--generations", type=int, default=3)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--insert-mode", choices=["append", "uniform"],
                      default="append", dest="insert_mode")
    demo.add_argument("--kill", type=int, default=-1, metavar="INDEX",
                      help="kill this peer mid-run to exercise repair (-1 = off)")
    demo.add_argument("--deadline", type=float, default=60.0,
                      help="hard wall-clock limit in seconds")
    demo.add_argument("--no-uvloop", action="store_true", dest="no_uvloop",
                      help="stay on the stock asyncio event loop")
    _add_obs_flags(demo)
    demo.set_defaults(func=_cmd_demo)

    chaos = sub.add_parser(
        "chaos",
        help="replay fault-injection scenarios on the virtual or live transport",
    )
    chaos.add_argument("name", nargs="?", default=None,
                       help="scenario name, or 'all'")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--transport", choices=["virtual", "live"],
                       default="virtual",
                       help="in-memory deterministic network, or real loopback TCP")
    chaos.add_argument("--list", action="store_true",
                       help="list known scenarios and exit")
    chaos.set_defaults(func=_cmd_chaos)

    soak = sub.add_parser(
        "soak",
        help="virtual-hours churn soak against a large swarm",
    )
    soak.add_argument("--peers", type=int, default=1000,
                      help="initial population (default 1000)")
    soak.add_argument("--hours", type=float, default=2.0,
                      help="soak horizon in virtual hours")
    soak.add_argument("--epoch", type=float, default=60.0,
                      help="epoch length in virtual seconds")
    soak.add_argument("--trace", choices=["steady", "flash", "correlated"],
                      default="steady", help="churn trace shape")
    soak.add_argument("--seed", type=int, default=0)
    soak.add_argument("--smoke", action="store_true",
                      help="CI preset: 200 peers, 0.1 virtual hours")
    soak.add_argument("--dump", action="store_true",
                      help="print the flight-recorder dump on violation")
    soak.add_argument("--trace-out", default=None, metavar="PATH",
                      help="save the applied churn trace as JSON")
    soak.set_defaults(func=_cmd_soak)

    serve = sub.add_parser("serve", help="run a live coordination + source server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0)
    serve.add_argument("--k", type=int, default=4)
    serve.add_argument("--d", type=int, default=2)
    serve.add_argument("--g", type=int, default=16)
    serve.add_argument("--payload", type=int, default=128)
    serve.add_argument("--generations", type=int, default=3)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--insert-mode", choices=["append", "uniform"],
                       default="append", dest="insert_mode")
    serve.add_argument("--interval", type=float, default=0.005,
                       help="seconds between emission rounds")
    serve.add_argument("--duration", type=float, default=0.0,
                       help="stop after this many seconds (0 = run forever)")
    serve.add_argument("--no-uvloop", action="store_true", dest="no_uvloop",
                       help="stay on the stock asyncio event loop")
    _add_obs_flags(serve)
    serve.set_defaults(func=_cmd_serve)

    join = sub.add_parser("join", help="join a live server as one peer")
    join.add_argument("--host", default="127.0.0.1")
    join.add_argument("--port", type=int, required=True)
    join.add_argument("--seed", type=int, default=0)
    join.add_argument("--deadline", type=float, default=60.0,
                      help="give up decoding after this many seconds")
    join.add_argument("--linger", type=float, default=0.0,
                      help="keep forwarding this long after decoding")
    join.add_argument("--no-uvloop", action="store_true", dest="no_uvloop",
                      help="stay on the stock asyncio event loop")
    _add_obs_flags(join)
    join.set_defaults(func=_cmd_join)

    stats = sub.add_parser(
        "stats", help="render an obs snapshot (JSON file or live endpoint)"
    )
    stats.add_argument("source",
                       help="path to a --stats-json file, or an http:// "
                            "metrics.json URL")
    stats.set_defaults(func=_cmd_stats)

    overlay = sub.add_parser("overlay", help="build an overlay and report health")
    overlay.add_argument("--k", type=int, default=24)
    overlay.add_argument("--d", type=int, default=3)
    overlay.add_argument("--peers", type=int, default=200)
    overlay.add_argument("--fail", type=int, default=0)
    overlay.add_argument("--seed", type=int, default=0)
    overlay.add_argument("--insert-mode", choices=["append", "uniform"],
                         default="append", dest="insert_mode")
    overlay.add_argument("--defect-samples", type=int, default=200,
                         dest="defect_samples")
    overlay.set_defaults(func=_cmd_overlay)

    trajectory = sub.add_parser(
        "trajectory", help="sample the defect process (Theorem 4 dynamics)"
    )
    trajectory.add_argument("--k", type=int, default=32)
    trajectory.add_argument("--d", type=int, default=2)
    trajectory.add_argument("--p", type=float, default=0.02)
    trajectory.add_argument("--arrivals", type=int, default=600)
    trajectory.add_argument("--sample-every", type=int, default=25,
                            dest="sample_every")
    trajectory.add_argument("--seed", type=int, default=0)
    trajectory.set_defaults(func=_cmd_trajectory)

    collapse = sub.add_parser("collapse", help="Theorem 5 collapse-walk estimate")
    collapse.add_argument("--k", type=int, default=12)
    collapse.add_argument("--d", type=int, default=2)
    collapse.add_argument("--p", type=float, default=0.03)
    collapse.add_argument("--runs", type=int, default=10)
    collapse.add_argument("--max-steps", type=int, default=400_000,
                          dest="max_steps")
    collapse.add_argument("--seed", type=int, default=0)
    collapse.set_defaults(func=_cmd_collapse)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout was a pipe whose reader exited early (`repro stats ... |
        # head`); behave like a Unix filter and leave quietly.  Python
        # flushes stdout again at interpreter exit, so point the fd at
        # devnull first or the flush re-raises.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
