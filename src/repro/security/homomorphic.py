"""Homomorphic hashing for network coding — §7's open problem, realised.

The paper: "to prevent a jamming attack in an open system that uses
network coding, one would need a signature scheme such that the
signature of a mixed packet can be easily derived from the signatures
of the packets contributing to the mixture.  It is an open problem
whether such a scheme is possible."

It is — Krohn, Freedman and Mazières published exactly this
construction ("On-the-fly verification of rateless erasure codes",
Oakland 2004, contemporaneous with the paper).  This module implements
it:

* public parameters: a prime ``P`` with ``q | P − 1`` (``q`` the coding
  field modulus) and ``S`` generators of the order-``q`` subgroup of
  ``Z_P*``;
* hash of a packet ``v ∈ Z_q^S``:  ``H(v) = ∏ gᵢ^{vᵢ} mod P``;
* homomorphism:  ``H(a·u + b·v) = H(u)^a · H(v)^b mod P``, so any node
  can verify any *mixture* given only the source packets' hashes — no
  trust in intermediate mixers required.

The source publishes (signs, out of band) the per-generation hash
vector; every peer verifies incoming packets before mixing, and jammed
packets are detected immediately instead of contaminating the swarm.
Discrete-log hardness in the subgroup makes forging a packet with a
matching hash infeasible (the 62-bit default modulus here is
demonstration-scale; production would use ≥ 1024-bit ``P``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .codec import PrimePacket
from .modmath import Q

_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def _is_prime(n: int) -> bool:
    """Deterministic Miller–Rabin for n < 3.3e24 (fixed witness set)."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for witness in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(witness, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def find_group_modulus(q: int = Q, start: int = 2) -> int:
    """Smallest prime ``P = 2·c·q + 1`` with ``c >= start``.

    ``q | P − 1`` guarantees an order-``q`` subgroup of ``Z_P*``.
    """
    c = start
    while True:
        candidate = 2 * c * q + 1
        if _is_prime(candidate):
            return candidate
        c += 1


@dataclass(frozen=True)
class HashParams:
    """Public parameters of the homomorphic hash.

    Attributes:
        modulus: The group prime ``P``.
        order: The subgroup order ``q`` (the coding field modulus).
        generators: ``S`` generators of the order-``q`` subgroup, one per
            payload symbol.
    """

    modulus: int
    order: int
    generators: tuple[int, ...]

    @property
    def symbol_count(self) -> int:
        return len(self.generators)


def generate_params(symbol_count: int, seed: int | None = None,
                    q: int = Q) -> HashParams:
    """Generate public hash parameters for ``symbol_count`` symbols."""
    if symbol_count < 1:
        raise ValueError("symbol_count must be >= 1")
    modulus = find_group_modulus(q)
    cofactor = (modulus - 1) // q
    rng = np.random.default_rng(seed)
    generators = []
    while len(generators) < symbol_count:
        h = int(rng.integers(2, modulus - 1))
        g = pow(h, cofactor, modulus)
        if g != 1:
            generators.append(g)
    return HashParams(modulus=modulus, order=q, generators=tuple(generators))


class HomomorphicHasher:
    """Hash, combine and verify packets under fixed public parameters."""

    def __init__(self, params: HashParams) -> None:
        self.params = params

    def hash_payload(self, payload: np.ndarray) -> int:
        """``H(v) = ∏ gᵢ^{vᵢ} mod P`` for a symbol vector ``v``."""
        payload = np.asarray(payload, dtype=np.int64)
        if payload.shape[0] != self.params.symbol_count:
            raise ValueError("payload length does not match generator count")
        result = 1
        modulus = self.params.modulus
        for generator, symbol in zip(self.params.generators, payload):
            result = (result * pow(generator, int(symbol) % self.params.order,
                                   modulus)) % modulus
        return result

    def hash_generation(self, source: np.ndarray) -> list[int]:
        """Per-source-packet hashes the server publishes (and signs)."""
        return [self.hash_payload(row) for row in np.asarray(source)]

    def combine_hashes(self, hashes: list[int],
                       coefficients: np.ndarray) -> int:
        """``H(∑ cⱼ·vⱼ) = ∏ Hⱼ^{cⱼ}`` — the homomorphism itself."""
        coefficients = np.asarray(coefficients, dtype=np.int64)
        if len(hashes) != coefficients.shape[0]:
            raise ValueError("one coefficient per source hash required")
        result = 1
        modulus = self.params.modulus
        for h, c in zip(hashes, coefficients):
            exponent = int(c) % self.params.order
            if exponent:
                result = (result * pow(int(h), exponent, modulus)) % modulus
        return result

    def verify(self, packet: PrimePacket, source_hashes: list[int]) -> bool:
        """True iff the packet really is the combination it claims to be."""
        expected = self.combine_hashes(source_hashes, packet.coefficients)
        return self.hash_payload(packet.payload) == expected
