"""Arithmetic over the prime field Z_q, q = 2³¹ − 1 (Mersenne M31).

The §7 jamming defence needs *homomorphic* hashes, and the classic
construction (Krohn–Freedman–Mazières, Oakland 2004) hashes vectors over
a prime field — exponents live in Z_q, so the network code itself must
run over Z_q rather than GF(2⁸).  This module is the Z_q substrate:
vectorised numpy arithmetic (int64 products of two sub-2³¹ values never
overflow), modular inverses via Fermat, and Gaussian elimination.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

#: The field modulus: the Mersenne prime 2^31 - 1.
Q = (1 << 31) - 1


def as_field(a) -> np.ndarray:
    """Coerce to an int64 array reduced mod Q."""
    return np.asarray(a, dtype=np.int64) % Q


def add_mod(a, b) -> np.ndarray:
    """Element-wise addition in Z_q."""
    return (as_field(a) + as_field(b)) % Q


def sub_mod(a, b) -> np.ndarray:
    """Element-wise subtraction in Z_q."""
    return (as_field(a) - as_field(b)) % Q


def mul_mod(a, b) -> np.ndarray:
    """Element-wise product in Z_q (int64-safe: operands < 2^31)."""
    return (as_field(a) * as_field(b)) % Q


def inv_mod(a: int) -> int:
    """Multiplicative inverse of a scalar (Fermat); raises on zero."""
    a = int(a) % Q
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in Z_q")
    return pow(a, Q - 2, Q)


def matmul_mod(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over Z_q.

    Accumulated per output row with running reduction so intermediate
    sums stay within int64.
    """
    a = as_field(a)
    b = as_field(b)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch {a.shape} @ {b.shape}")
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.int64)
    for j in range(a.shape[1]):
        out = (out + a[:, j][:, None] * b[j][None, :]) % Q
    return out


def rref_mod(a: np.ndarray, ncols: Optional[int] = None) -> tuple[np.ndarray, list[int]]:
    """Reduced row echelon form over Z_q; returns (R, pivot columns)."""
    r = as_field(a).copy()
    rows, cols = r.shape
    pivot_limit = cols if ncols is None else min(ncols, cols)
    pivots: list[int] = []
    row = 0
    for col in range(pivot_limit):
        if row >= rows:
            break
        pivot_row = None
        for candidate in range(row, rows):
            if r[candidate, col]:
                pivot_row = candidate
                break
        if pivot_row is None:
            continue
        if pivot_row != row:
            r[[row, pivot_row]] = r[[pivot_row, row]]
        r[row] = (r[row] * inv_mod(int(r[row, col]))) % Q
        column = r[:, col].copy()
        column[row] = 0
        eliminate = np.nonzero(column)[0]
        if eliminate.size:
            r[eliminate] = (r[eliminate] - column[eliminate][:, None] * r[row][None, :]) % Q
        pivots.append(col)
        row += 1
    return r, pivots


def rank_mod(a: np.ndarray) -> int:
    """Rank of a matrix over Z_q."""
    if np.asarray(a).size == 0:
        return 0
    _, pivots = rref_mod(np.asarray(a))
    return len(pivots)


def solve_mod(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``a @ x = b`` over Z_q for invertible square ``a``."""
    a = as_field(a)
    n = a.shape[0]
    if a.shape[1] != n:
        raise ValueError("solve requires a square matrix")
    rhs = as_field(b)
    vector = rhs.ndim == 1
    if vector:
        rhs = rhs[:, None]
    augmented = np.concatenate([a, rhs], axis=1)
    reduced, pivots = rref_mod(augmented, ncols=n)
    if len(pivots) != n:
        raise np.linalg.LinAlgError("matrix is singular over Z_q")
    solution = reduced[:n, n:]
    return solution[:, 0] if vector else solution


# ----------------------------------------------------------------------
# Bytes <-> symbol packing (3 bytes per symbol, every value < Q)


def bytes_to_symbols(data: bytes, symbols_per_packet: int) -> np.ndarray:
    """Pack bytes into Z_q symbols, 3 bytes each, zero-padded.

    Returns a ``(packets, symbols_per_packet)`` int64 matrix.
    """
    if symbols_per_packet < 1:
        raise ValueError("symbols_per_packet must be >= 1")
    triples = (len(data) + 2) // 3
    packets = max(1, -(-triples // symbols_per_packet))
    padded = np.zeros(packets * symbols_per_packet * 3, dtype=np.uint8)
    if data:
        padded[: len(data)] = np.frombuffer(data, dtype=np.uint8)
    grouped = padded.reshape(-1, 3).astype(np.int64)
    symbols = grouped[:, 0] << 16 | grouped[:, 1] << 8 | grouped[:, 2]
    return symbols.reshape(packets, symbols_per_packet)


def symbols_to_bytes(symbols: np.ndarray, length: int) -> bytes:
    """Inverse of :func:`bytes_to_symbols` (truncated to ``length``)."""
    flat = np.asarray(symbols, dtype=np.int64).reshape(-1)
    out = np.zeros(flat.size * 3, dtype=np.uint8)
    out[0::3] = (flat >> 16) & 0xFF
    out[1::3] = (flat >> 8) & 0xFF
    out[2::3] = flat & 0xFF
    if length > out.size:
        raise ValueError("length exceeds decoded data")
    return out[:length].tobytes()
