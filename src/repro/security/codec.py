"""RLNC codec over the prime field Z_q — the hash-verifiable data plane.

Mirrors :mod:`repro.coding` but with coefficients and symbols in
Z_q (q = 2³¹−1), which is what the homomorphic hash of
:mod:`repro.security.homomorphic` can verify.  Single-generation API:
the §7 defence is per-generation anyway (the source publishes one hash
vector per generation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .modmath import Q, as_field, matmul_mod, rref_mod


@dataclass
class PrimePacket:
    """A coded packet over Z_q.

    Attributes:
        coefficients: length-g int64 vector in Z_q.
        payload: length-S int64 symbol vector in Z_q.
        origin: emitting node id (diagnostics).
    """

    coefficients: np.ndarray
    payload: np.ndarray
    origin: int = -1

    def __post_init__(self) -> None:
        self.coefficients = as_field(self.coefficients)
        self.payload = as_field(self.payload)

    @property
    def generation_size(self) -> int:
        return int(self.coefficients.shape[0])

    @property
    def symbol_count(self) -> int:
        return int(self.payload.shape[0])


class PrimeEncoder:
    """Source encoder over Z_q for one generation.

    Args:
        source: ``(g, S)`` int64 matrix of source symbol vectors.
        rng: Coding randomness.
    """

    def __init__(self, source: np.ndarray, rng: np.random.Generator) -> None:
        self.source = as_field(source)
        if self.source.ndim != 2:
            raise ValueError("source must be a (g, S) matrix")
        self._rng = rng

    @property
    def generation_size(self) -> int:
        return int(self.source.shape[0])

    def source_packet(self, index: int) -> PrimePacket:
        """The ``index``-th original packet in systematic form."""
        coefficients = np.zeros(self.generation_size, dtype=np.int64)
        coefficients[index] = 1
        return PrimePacket(coefficients=coefficients,
                           payload=self.source[index].copy())

    def emit(self) -> PrimePacket:
        """A fresh uniformly random combination of the source."""
        coefficients = self._rng.integers(0, Q, size=self.generation_size,
                                          dtype=np.int64)
        if not coefficients.any():
            coefficients[0] = 1
        payload = matmul_mod(coefficients[None, :], self.source)[0]
        return PrimePacket(coefficients=coefficients, payload=payload)


class PrimeDecoder:
    """Progressive Gaussian-elimination decoder over Z_q."""

    def __init__(self, generation_size: int, symbol_count: int) -> None:
        if generation_size < 1 or symbol_count < 1:
            raise ValueError("generation_size and symbol_count must be >= 1")
        self.generation_size = generation_size
        self.symbol_count = symbol_count
        self._rows = np.zeros((0, generation_size + symbol_count), dtype=np.int64)
        self.rank = 0
        self.received = 0

    @property
    def is_complete(self) -> bool:
        return self.rank == self.generation_size

    def push(self, packet: PrimePacket) -> bool:
        """Consume a packet; True iff innovative."""
        if packet.generation_size != self.generation_size:
            raise ValueError("generation size mismatch")
        if packet.symbol_count != self.symbol_count:
            raise ValueError("symbol count mismatch")
        self.received += 1
        if self.is_complete:
            return False
        row = np.concatenate([packet.coefficients, packet.payload])[None, :]
        candidate = np.concatenate([self._rows, row], axis=0)
        reduced, pivots = rref_mod(candidate, ncols=self.generation_size)
        if len(pivots) > self.rank:
            self._rows = reduced[: len(pivots)]
            self.rank = len(pivots)
            return True
        return False

    def recover(self) -> np.ndarray:
        """The decoded ``(g, S)`` source matrix; requires completeness."""
        if not self.is_complete:
            raise RuntimeError(f"rank {self.rank}/{self.generation_size}")
        # rows are in RREF with pivots 0..g-1 -> coefficient part is I
        return self._rows[:, self.generation_size:].copy()


class PrimeRecoder:
    """Buffer-and-mix over Z_q (verified packets only, in the defence)."""

    def __init__(self, generation_size: int, symbol_count: int,
                 rng: np.random.Generator, node_id: int = -1) -> None:
        self.decoder = PrimeDecoder(generation_size, symbol_count)
        self._rng = rng
        self.node_id = node_id

    def receive(self, packet: PrimePacket) -> bool:
        return self.decoder.push(packet)

    def emit(self) -> Optional[PrimePacket]:
        """A fresh random mixture of the buffered basis."""
        if self.decoder.rank == 0:
            return None
        scalars = self._rng.integers(1, Q, size=self.decoder.rank, dtype=np.int64)
        mixed = matmul_mod(scalars[None, :], self.decoder._rows)[0]
        g = self.decoder.generation_size
        return PrimePacket(coefficients=mixed[:g], payload=mixed[g:],
                           origin=self.node_id)
