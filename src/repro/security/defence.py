"""The verified relay: drop jammed packets at first contact.

Combines the Z_q codec and the homomorphic hash into the §7 defence: a
:class:`VerifiedRelay` wraps a recoder and verifies every incoming
packet against the source's published generation hashes before letting
it into the buffer.  Because verified inputs combine into verifiable
outputs (the homomorphism), an overlay of verified relays confines a
jammer's garbage to its immediate links — the exact dual of the
unprotected system, where one jammer contaminates nearly every decode
(experiment E11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .codec import PrimePacket, PrimeRecoder
from .homomorphic import HomomorphicHasher


@dataclass
class RelayStats:
    """Verification accounting for one relay."""

    accepted: int = 0
    rejected: int = 0

    @property
    def rejection_rate(self) -> float:
        total = self.accepted + self.rejected
        return self.rejected / total if total else 0.0


class VerifiedRelay:
    """A peer that verifies, buffers and remixes packets over Z_q.

    Args:
        hasher: Shared public hash parameters.
        source_hashes: The generation's published source-packet hashes.
        generation_size: g.
        symbol_count: S.
        rng: Mixing randomness.
        node_id: Identifier stamped on emissions.
    """

    def __init__(
        self,
        hasher: HomomorphicHasher,
        source_hashes: list[int],
        generation_size: int,
        symbol_count: int,
        rng: np.random.Generator,
        node_id: int = -1,
    ) -> None:
        self.hasher = hasher
        self.source_hashes = list(source_hashes)
        self.recoder = PrimeRecoder(generation_size, symbol_count, rng, node_id)
        self.stats = RelayStats()

    def receive(self, packet: PrimePacket) -> bool:
        """Verify then ingest; returns True iff accepted AND innovative.

        Invalid packets are rejected before touching the buffer — the
        jamming payload never mixes into this relay's emissions.
        """
        if not self.hasher.verify(packet, self.source_hashes):
            self.stats.rejected += 1
            return False
        self.stats.accepted += 1
        return self.recoder.receive(packet)

    def emit(self) -> Optional[PrimePacket]:
        """A fresh mixture of the (all-verified) buffer."""
        return self.recoder.emit()

    @property
    def is_complete(self) -> bool:
        return self.recoder.decoder.is_complete


def make_jam_packet(generation_size: int, symbol_count: int,
                    rng: np.random.Generator, origin: int = -2) -> PrimePacket:
    """A garbage packet whose header claims a valid combination."""
    from .modmath import Q

    coefficients = rng.integers(0, Q, size=generation_size, dtype=np.int64)
    if not coefficients.any():
        coefficients[0] = 1
    payload = rng.integers(0, Q, size=symbol_count, dtype=np.int64)
    return PrimePacket(coefficients=coefficients, payload=payload, origin=origin)
