"""§7's open problem, implemented: homomorphic-hash-verified coding.

* :mod:`repro.security.modmath` — Z_q arithmetic (q = 2³¹−1) and
  byte/symbol packing.
* :mod:`repro.security.codec` — RLNC encoder/decoder/recoder over Z_q.
* :mod:`repro.security.homomorphic` — the Krohn–Freedman–Mazières hash:
  per-source hashes published once; any mixture verifiable by anyone.
* :mod:`repro.security.defence` — :class:`VerifiedRelay`, which drops
  jammed packets on contact instead of letting them contaminate decodes.
"""

from .codec import PrimeDecoder, PrimeEncoder, PrimePacket, PrimeRecoder
from .defence import RelayStats, VerifiedRelay, make_jam_packet
from .homomorphic import (
    HashParams,
    HomomorphicHasher,
    find_group_modulus,
    generate_params,
)
from .modmath import Q, bytes_to_symbols, symbols_to_bytes

__all__ = [
    "HashParams",
    "HomomorphicHasher",
    "PrimeDecoder",
    "PrimeEncoder",
    "PrimePacket",
    "PrimeRecoder",
    "Q",
    "RelayStats",
    "VerifiedRelay",
    "bytes_to_symbols",
    "find_group_modulus",
    "generate_params",
    "make_jam_packet",
    "symbols_to_bytes",
]
