"""The server side of the §3/§5 control protocol as a sans-IO engine.

:class:`ServerEngine` owns the matrix authority
(:class:`~repro.core.server.CoordinationServer`) and implements every
server-side protocol decision exactly once:

* **hello** — admit a joiner, grant its thread assignments, attach it
  to its parents and (under §5 uniform insertion) redirect the children
  its row displaced;
* **good-bye** — splice the leaver out, redirecting each of its parents
  to the corresponding child (Lemma 1);
* **EOF-crash fast path** — a control connection dying without a
  good-bye is a crash: splice immediately;
* **complaint → probe → repair slow path** — a child's complaint about
  a silent thread opens a failure episode, probes the suspect once (one
  probe in flight per suspect), and splices it out when the probe timer
  fires unanswered;
* **§5 congestion** — shed one thread from a congested node / hand one
  back, rewiring the affected parent and child.

The engine consumes :mod:`~repro.protocol.events` and returns
:mod:`~repro.protocol.effects`; it never touches a socket, a clock, or
an event loop.  Three drivers pump it: the message-level simulator
(:mod:`repro.protocol_sim.actors`), the live transport
(:mod:`repro.net.server`), and — via either of those — the chaos
harness, which asserts invariants against :attr:`core` directly.
"""

from __future__ import annotations

from typing import Optional

from ..core.matrix import SERVER
from ..core.server import CoordinationServer
from .effects import (
    Admitted,
    CloseConnection,
    ComplaintNoted,
    Effect,
    PeerDeparted,
    Send,
    StartTimer,
)
from .events import ConnectionLost, Event, MessageReceived, TimerFired
from .messages import (
    AttachChild,
    ComplaintMsg,
    CongestionDrop,
    CongestionRestore,
    DetachChild,
    JoinGrant,
    JoinRequest,
    LeaveRequest,
    Probe,
    ProbeAck,
    SetParent,
    ThreadRemoved,
)
from .trace import EngineLog

__all__ = ["ServerEngine"]


class ServerEngine:
    """Pure event-in/effect-out server state machine.

    Args:
        core: The matrix authority.  Owned by the engine; drivers read
            it (population, matrix rows) but route every mutation
            through :meth:`handle`.
        probe_timeout: Grace period a probed suspect has to answer
            before being spliced out.
    """

    def __init__(
        self, core: CoordinationServer, *, probe_timeout: float = 0.5
    ) -> None:
        self.core = core
        self.probe_timeout = probe_timeout
        #: suspect -> probe nonce currently outstanding
        self.pending_probes: dict[int, int] = {}
        #: every node that left or was spliced out (ids never recycle)
        self.departed: set[int] = set()
        #: suspects with an open (complained, not yet repaired) episode
        self._open_episodes: set[int] = set()
        self._nonce = 0
        #: optional event/effect recorder (conformance and replay tests)
        self.log: Optional[EngineLog] = None
        #: optional bounded ring of recent steps (duck-typed: anything
        #: with ``record(event, effects)``, e.g. ``obs.FlightRecorder``)
        self.flight = None
        #: optional instrument bundle (duck-typed: anything with
        #: ``record_step(event, effects)``, e.g.
        #: ``obs.ServerEngineInstruments``) — the engine never imports
        #: ``repro.obs``; observability hangs off these two attributes
        self.obs = None

    # ------------------------------------------------------------------

    def handle(self, event: Event) -> list[Effect]:
        """Advance the state machine by one event."""
        effects = self._dispatch(event)
        if self.log is not None:
            self.log.record(event, effects)
        if self.flight is not None:
            self.flight.record(event, effects)
        if self.obs is not None:
            self.obs.record_step(event, effects)
        return effects

    def _dispatch(self, event: Event) -> list[Effect]:
        if isinstance(event, MessageReceived):
            message = event.message
            if isinstance(message, JoinRequest):
                return self._on_join()
            if isinstance(message, LeaveRequest):
                node_id = (
                    event.sender if isinstance(event.sender, int)
                    else message.node_id
                )
                return self._on_leave(node_id)
            if isinstance(message, ComplaintMsg):
                return self._on_complaint(message.suspect)
            if isinstance(message, ProbeAck):
                return self._on_probe_ack(message.node_id, message.nonce)
            if isinstance(message, CongestionDrop):
                return self._on_congestion_drop(message.node_id)
            if isinstance(message, CongestionRestore):
                return self._on_congestion_restore(message.node_id)
            return []
        if isinstance(event, ConnectionLost):
            return self._on_connection_lost(event.node_id)
        if isinstance(event, TimerFired):
            if event.key and event.key[0] == "probe":
                _, suspect, nonce = event.key
                return self._on_probe_timeout(suspect, nonce)
            return []
        return []

    # ------------------------------------------------------------------
    # Hello

    def _on_join(self) -> list[Effect]:
        grant = self.core.hello()
        node_id = grant.node_id
        assignments = tuple(
            (a.column, a.parent) for a in grant.assignments
        )
        effects: list[Effect] = [
            Admitted(node_id=node_id, assignments=assignments),
            Send(node_id, JoinGrant(node_id=node_id, assignments=assignments)),
        ]
        for assignment in grant.assignments:
            if assignment.parent != SERVER:
                effects.append(Send(
                    assignment.parent,
                    AttachChild(column=assignment.column, child=node_id),
                ))
        # Uniform insertion (§5) may splice the newcomer mid-column: the
        # displaced children re-clip onto it.
        for redirect in grant.redirects:
            if redirect.child is None:
                continue
            effects.append(Send(
                redirect.child,
                SetParent(column=redirect.column, parent=node_id),
            ))
            effects.append(Send(
                node_id,
                AttachChild(column=redirect.column, child=redirect.child),
            ))
        return effects

    # ------------------------------------------------------------------
    # Good-bye

    def _on_leave(self, node_id: int) -> list[Effect]:
        if (node_id not in self.core.registry or node_id in self.departed
                or node_id in self.core.failed):
            return []
        self.departed.add(node_id)
        self._open_episodes.discard(node_id)
        redirects = self.core.goodbye(node_id)
        return [
            PeerDeparted(node_id=node_id, reason="leave"),
            *self._redirect_sends(redirects),
        ]

    # ------------------------------------------------------------------
    # Failure detection and repair

    def _on_complaint(self, suspect: int) -> list[Effect]:
        if (suspect in self.departed or suspect not in self.core.registry
                or suspect in self.core.failed):
            return []
        effects: list[Effect] = []
        if suspect not in self._open_episodes:
            self._open_episodes.add(suspect)
            effects.append(ComplaintNoted(suspect=suspect))
        if suspect in self.pending_probes:
            return effects  # probe already in flight
        self._nonce += 1
        self.pending_probes[suspect] = self._nonce
        effects.append(Send(suspect, Probe(nonce=self._nonce)))
        effects.append(StartTimer(
            key=("probe", suspect, self._nonce), delay=self.probe_timeout,
        ))
        return effects

    def _on_probe_ack(self, node_id: int, nonce: int) -> list[Effect]:
        if self.pending_probes.get(node_id) == nonce:
            del self.pending_probes[node_id]
        return []

    def _on_probe_timeout(self, suspect: int, nonce: int) -> list[Effect]:
        if self.pending_probes.get(suspect) != nonce:
            return []  # the suspect answered: spurious complaint
        del self.pending_probes[suspect]
        if suspect in self.departed or suspect not in self.core.registry:
            return []
        return [CloseConnection(node_id=suspect),
                *self._fail_and_splice(suspect)]

    def _on_connection_lost(self, node_id: int) -> list[Effect]:
        if node_id in self.departed or node_id not in self.core.registry:
            return []
        return self._fail_and_splice(node_id)

    def _fail_and_splice(self, node_id: int) -> list[Effect]:
        """Splice a crashed peer out of every column (Lemma 1)."""
        self.departed.add(node_id)
        self._open_episodes.discard(node_id)
        self.core.fail(node_id)
        redirects = self.core.repair(node_id)
        return [
            PeerDeparted(node_id=node_id, reason="crash"),
            *self._redirect_sends(redirects),
        ]

    def _redirect_sends(self, redirects) -> list[Effect]:
        """Push the post-splice topology to every affected, live peer."""
        effects: list[Effect] = []
        for redirect in redirects:
            if redirect.child is not None:
                effects.append(Send(
                    redirect.child,
                    SetParent(column=redirect.column, parent=redirect.parent),
                ))
            if redirect.parent != SERVER:
                if redirect.child is not None:
                    effects.append(Send(
                        redirect.parent,
                        AttachChild(column=redirect.column, child=redirect.child),
                    ))
                else:
                    effects.append(Send(
                        redirect.parent,
                        DetachChild(column=redirect.column),
                    ))
        return effects

    # ------------------------------------------------------------------
    # §5 congestion handling

    def _on_congestion_drop(self, node_id: int) -> list[Effect]:
        if (node_id in self.departed or node_id not in self.core.registry
                or node_id in self.core.failed):
            return []
        matrix = self.core.matrix
        if matrix.row(node_id).degree <= 1:
            return []  # never strand a node with zero threads
        # Capture the neighbourhood BEFORE the splice: the dropped
        # column's parent must be retargeted at the dropped column's
        # child, both read from the pre-drop state.
        parents_before = matrix.parents_of(node_id)
        children_before = matrix.children_of(node_id)
        column = self.core.congestion_drop(node_id)
        parent = parents_before[column]
        child = children_before[column]
        effects: list[Effect] = [
            Send(node_id, ThreadRemoved(column=column)),
        ]
        if parent != SERVER:
            if child is not None:
                effects.append(Send(
                    parent, AttachChild(column=column, child=child)))
            else:
                effects.append(Send(parent, DetachChild(column=column)))
        if child is not None:
            effects.append(Send(
                child, SetParent(column=column, parent=parent)))
        return effects

    def _on_congestion_restore(self, node_id: int) -> list[Effect]:
        if (node_id in self.departed or node_id not in self.core.registry
                or node_id in self.core.failed):
            return []
        matrix = self.core.matrix
        if matrix.row(node_id).degree >= matrix.k:
            return []
        column = self.core.congestion_restore(node_id)
        parent = matrix.parent_in_column(node_id, column)
        child = matrix.child_in_column(node_id, column)
        effects: list[Effect] = [
            Send(node_id, SetParent(column=column, parent=parent)),
        ]
        if parent != SERVER:
            effects.append(Send(
                parent, AttachChild(column=column, child=node_id)))
        if child is not None:
            effects.append(Send(
                node_id, AttachChild(column=column, child=child)))
            effects.append(Send(
                child, SetParent(column=column, parent=node_id)))
        return effects
