"""The reconnect backoff schedule — pure policy, no clock.

Lives in the protocol core because the schedule *is* protocol: chaos
scenarios assert that a cut-off child's redial attempts follow it
exactly, and every driver (live sockets, virtual network) must produce
the same sequence.  The object only computes delays; sleeping them is
the driver's job.
"""

from __future__ import annotations

__all__ = ["ReconnectBackoff"]


class ReconnectBackoff:
    """The peer's redial schedule: ``base, 2*base, 4*base, ...`` capped
    at ``maximum``; any healthy session resets it to ``base``.

    Kept as a standalone object so the schedule is unit-testable and so
    chaos scenarios can assert the exact sleep sequence a peer followed
    under a virtual clock.
    """

    def __init__(self, base: float, maximum: float) -> None:
        if base <= 0:
            raise ValueError(f"backoff base must be positive, got {base}")
        if maximum < base:
            raise ValueError(
                f"backoff maximum {maximum} must be >= base {base}"
            )
        self.base = base
        self.maximum = maximum
        self._delay = base

    @property
    def current(self) -> float:
        """The delay the next failure will sleep for."""
        return self._delay

    def next(self) -> float:
        """Consume one step of the schedule, doubling toward the cap."""
        delay = self._delay
        self._delay = min(self._delay * 2, self.maximum)
        return delay

    def reset(self) -> None:
        self._delay = self.base

    def schedule(self, steps: int) -> list[float]:
        """The first ``steps`` delays a fresh schedule would produce."""
        delays, delay = [], self.base
        for _ in range(steps):
            delays.append(delay)
            delay = min(delay * 2, self.maximum)
        return delays
