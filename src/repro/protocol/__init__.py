"""repro.protocol — the sans-IO core of the §3/§5 control protocol.

One implementation of the control plane, three transports.  The
:class:`ServerEngine` (hello/good-bye, EOF-crash fast path,
complaint→probe→repair slow path, §5 congestion) and
:class:`PeerEngine` (clip/re-clip, silence detection, complaint
emission, reconnect backoff) are pure state machines: they consume
typed :mod:`~repro.protocol.events` and return typed
:mod:`~repro.protocol.effects`, and never import asyncio, sockets, or
the simulators.  Drivers own the I/O:

* :mod:`repro.protocol_sim.actors` pumps effects through the
  discrete-event :class:`~repro.protocol_sim.network.MessageNetwork`;
* :mod:`repro.net.server` / :mod:`repro.net.peer` pump them through
  the :class:`~repro.net.transport.Transport` seam (real asyncio TCP
  or the in-memory chaos network);
* the chaos harness asserts protocol invariants against the engines'
  state directly.

The layering is enforced: ``tools/check_layering.py`` (run in CI and
as a tier-1 test) rejects any import of ``asyncio``, ``repro.net`` or
``repro.sim`` from this package.
"""

from .backoff import ReconnectBackoff
from .effects import (
    Admitted,
    Backoff,
    Clip,
    CloseChildren,
    CloseConnection,
    ComplaintNoted,
    Effect,
    PeerDeparted,
    Send,
    StartTimer,
    StopThread,
)
from .events import (
    ConnectionLost,
    Event,
    KeepAliveTick,
    MessageReceived,
    ServerLost,
    SilenceCheck,
    TimerFired,
    UpstreamDown,
)
from .messages import (
    SERVER_ADDRESS,
    AttachChild,
    ComplaintMsg,
    CongestionDrop,
    CongestionRestore,
    DetachChild,
    JoinGrant,
    JoinRequest,
    KeepAlive,
    LeaveRequest,
    Probe,
    ProbeAck,
    SetParent,
    ThreadRemoved,
)
from .peer_engine import PeerEngine
from .server_engine import ServerEngine
from .trace import EngineLog, replay

__all__ = [
    "SERVER_ADDRESS",
    "Admitted",
    "AttachChild",
    "Backoff",
    "Clip",
    "CloseChildren",
    "CloseConnection",
    "ComplaintMsg",
    "ComplaintNoted",
    "CongestionDrop",
    "CongestionRestore",
    "ConnectionLost",
    "DetachChild",
    "Effect",
    "EngineLog",
    "Event",
    "JoinGrant",
    "JoinRequest",
    "KeepAlive",
    "KeepAliveTick",
    "LeaveRequest",
    "MessageReceived",
    "PeerDeparted",
    "PeerEngine",
    "Probe",
    "ProbeAck",
    "ReconnectBackoff",
    "Send",
    "ServerEngine",
    "ServerLost",
    "SetParent",
    "SilenceCheck",
    "StartTimer",
    "StopThread",
    "ThreadRemoved",
    "TimerFired",
    "UpstreamDown",
    "replay",
]
