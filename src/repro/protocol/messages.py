"""Protocol messages of the §3/§5 control plane.

These are the protocol's concrete datagrams, shared by every
incarnation of the control plane: the message-level simulator
(:mod:`repro.protocol_sim`), the live transport (:mod:`repro.net`,
which also serialises them to wire frames), and the sans-IO engines in
this package.  Every message carries a nominal wire size so harnesses
can report server byte-load; sizes are small constants (a few tens of
bytes) per the paper's "very small data load on the server" claim.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Address of the server actor (message-simulator transport address).
SERVER_ADDRESS = "server"


@dataclass(frozen=True)
class JoinRequest:
    """A prospective peer asks to join (the hello protocol)."""

    reply_to: int  # provisional transport address chosen by the joiner
    size: int = 16


@dataclass(frozen=True)
class JoinGrant:
    """Server -> new peer: your id and your thread assignments."""

    node_id: int
    assignments: tuple[tuple[int, int], ...]  # (column, parent)
    size: int = 48


@dataclass(frozen=True)
class AttachChild:
    """Server -> parent: start streaming ``column`` to ``child``."""

    column: int
    child: int
    size: int = 24


@dataclass(frozen=True)
class DetachChild:
    """Server -> parent: ``column`` now hangs (stop forwarding on it)."""

    column: int
    size: int = 20


@dataclass(frozen=True)
class SetParent:
    """Server -> child: your stream on ``column`` now comes from ``parent``."""

    column: int
    parent: int
    size: int = 24


@dataclass(frozen=True)
class LeaveRequest:
    """Peer -> server: graceful good-bye."""

    node_id: int
    size: int = 16


@dataclass(frozen=True)
class KeepAlive:
    """Parent -> child, per thread per interval: the stream is alive.

    Stands in for the data packets themselves — a child detects a dead
    thread by their absence.
    """

    column: int
    sender: int
    size: int = 8


@dataclass(frozen=True)
class CongestionDrop:
    """Peer -> server: I am congested; splice me out of one thread."""

    node_id: int
    size: int = 16


@dataclass(frozen=True)
class CongestionRestore:
    """Peer -> server: congestion cleared; give me a thread back."""

    node_id: int
    size: int = 16


@dataclass(frozen=True)
class ThreadRemoved:
    """Server -> peer: you no longer hold ``column`` at all (shed)."""

    column: int
    size: int = 16


@dataclass(frozen=True)
class ComplaintMsg:
    """Child -> server: my incoming thread on ``column`` went silent."""

    reporter: int
    column: int
    suspect: int
    size: int = 24


@dataclass(frozen=True)
class Probe:
    """Server -> suspect: are you alive?"""

    nonce: int
    size: int = 12


@dataclass(frozen=True)
class ProbeAck:
    """Suspect -> server: alive (cancels the pending repair)."""

    node_id: int
    nonce: int
    size: int = 12
