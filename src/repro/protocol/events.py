"""Events: everything the outside world can tell a protocol engine.

An event is a plain frozen dataclass; the engines never look at a
socket, a clock, or an event loop — whatever happened out there is
narrated to them through one of these.  Drivers construct events from
their transport of choice (delivered datagrams, stream EOFs, fired
timers, read timeouts) and feed them to ``engine.handle``.

Timestamps: engines are clockless.  Events that feed time-based logic
(keep-alive bookkeeping, silence scans) carry an explicit ``now`` so a
discrete-event simulator, a virtual clock, and the wall clock all look
the same from inside the engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "ConnectionLost",
    "Event",
    "KeepAliveTick",
    "MessageReceived",
    "ServerLost",
    "SilenceCheck",
    "TimerFired",
    "UpstreamDown",
]


@dataclass(frozen=True)
class MessageReceived:
    """A control message arrived.

    ``sender`` is the authenticated transport identity when the driver
    has one (the node id owning the control connection); ``None`` when
    the message speaks for itself (e.g. a fresh ``JoinRequest``).
    """

    message: object
    sender: Optional[object] = None
    now: float = 0.0


@dataclass(frozen=True)
class ConnectionLost:
    """A peer's control connection died without a good-bye (EOF-crash
    fast path — only transports with connections emit this)."""

    node_id: int


@dataclass(frozen=True)
class TimerFired:
    """A timer the engine previously requested (``StartTimer``) fired.
    The ``key`` round-trips verbatim; stale keys are ignored."""

    key: tuple


@dataclass(frozen=True)
class KeepAliveTick:
    """Peer driver cadence: time to emit per-thread keep-alives."""

    now: float = 0.0


@dataclass(frozen=True)
class SilenceCheck:
    """Peer driver cadence: scan incoming threads for silence
    (timestamp-based detection, used by datagram drivers)."""

    now: float = 0.0


@dataclass(frozen=True)
class UpstreamDown:
    """A peer's upstream connection on ``column`` ended (stream-based
    detection, used by connection drivers).  ``saw_traffic`` is True if
    any packet or keep-alive arrived during the session — a healthy
    session resets the reconnect backoff."""

    column: int
    parent: int
    saw_traffic: bool


@dataclass(frozen=True)
class ServerLost:
    """The peer's control connection to the server is gone: no more
    membership repair, but the data plane keeps flowing (§6)."""


#: Anything ``handle`` accepts.
Event = object
