"""The peer side of the §3 protocol as a sans-IO engine.

:class:`PeerEngine` holds a peer's view of its threads — which parent
feeds each column, which child it feeds — and implements every
peer-side protocol decision exactly once:

* **clip / re-clip** — a grant or ``SetParent`` push retargets a
  thread's upstream pump (the live Lemma 1 repair on the child side);
* **silence detection** — two detector front-ends feed one complaint
  rule: timestamp scans (:class:`~repro.protocol.events.SilenceCheck`,
  for datagram drivers whose keep-alives carry the liveness signal) and
  stream endings (:class:`~repro.protocol.events.UpstreamDown`, for
  connection drivers whose read timeouts do);
* **complaint emission** — at most one complaint per column per
  silence episode, re-armed by ``SetParent``, suppressed after the
  server itself is lost (§6) and never against the server;
* **reconnect backoff** — a per-column
  :class:`~repro.protocol.backoff.ReconnectBackoff` schedule, stepped
  on every failed session and reset by a healthy one or a re-clip.

Drivers: :class:`repro.protocol_sim.actors.PeerActor` (datagrams on
the discrete-event engine) and :class:`repro.net.peer.PeerNode` (real
or virtual asyncio streams).
"""

from __future__ import annotations

from typing import Optional

from ..core.matrix import SERVER
from .backoff import ReconnectBackoff
from .effects import (
    Backoff,
    Clip,
    CloseChildren,
    Effect,
    Send,
    StopThread,
)
from .events import (
    Event,
    KeepAliveTick,
    MessageReceived,
    ServerLost,
    SilenceCheck,
    UpstreamDown,
)
from .messages import (
    AttachChild,
    ComplaintMsg,
    DetachChild,
    JoinGrant,
    KeepAlive,
    Probe,
    ProbeAck,
    SetParent,
    ThreadRemoved,
)
from .trace import EngineLog

__all__ = ["PeerEngine"]


class PeerEngine:
    """Pure event-in/effect-out peer state machine.

    Args:
        node_id: Server-assigned id (assignable after construction for
            drivers that learn it from the grant).
        silence_timeout: Silence on an incoming thread before the
            timestamp-based detector complains.
        reconnect_base, reconnect_max: Bounds of the per-column
            exponential redial schedule.
    """

    def __init__(
        self,
        node_id: Optional[int] = None,
        *,
        silence_timeout: float = 1.0,
        reconnect_base: float = 0.05,
        reconnect_max: float = 2.0,
    ) -> None:
        self.node_id = node_id
        self.silence_timeout = silence_timeout
        self.reconnect_base = reconnect_base
        self.reconnect_max = reconnect_max
        self.server_lost = False
        #: column -> parent we currently receive from
        self.parents: dict[int, int] = {}
        #: column -> child we currently forward to
        self.children: dict[int, int] = {}
        #: columns already complained about this silence episode
        self.complained: set[int] = set()
        self._last_heard: dict[int, float] = {}
        self._attached_at: dict[int, float] = {}
        self._backoffs: dict[int, ReconnectBackoff] = {}
        #: optional event/effect recorder (conformance and replay tests)
        self.log: Optional[EngineLog] = None
        #: optional bounded ring of recent steps (duck-typed: anything
        #: with ``record(event, effects)``, e.g. ``obs.FlightRecorder``)
        self.flight = None
        #: optional instrument bundle (duck-typed: anything with
        #: ``record_step(event, effects)`` and a ``complaints_suppressed``
        #: counter, e.g. ``obs.PeerEngineInstruments``) — the engine
        #: never imports ``repro.obs``
        self.obs = None

    # ------------------------------------------------------------------

    def handle(self, event: Event) -> list[Effect]:
        """Advance the state machine by one event."""
        effects = self._dispatch(event)
        if self.log is not None:
            self.log.record(event, effects)
        if self.flight is not None:
            self.flight.record(event, effects)
        if self.obs is not None:
            self.obs.record_step(event, effects)
        return effects

    def _dispatch(self, event: Event) -> list[Effect]:
        if isinstance(event, MessageReceived):
            return self._on_message(event.message, event.now)
        if isinstance(event, KeepAliveTick):
            return [
                Send(child, KeepAlive(column=column, sender=self.node_id))
                for column, child in self.children.items()
            ]
        if isinstance(event, SilenceCheck):
            return self._on_silence_check(event.now)
        if isinstance(event, UpstreamDown):
            return self._on_upstream_down(
                event.column, event.parent, event.saw_traffic
            )
        if isinstance(event, ServerLost):
            self.server_lost = True
            return []
        return []

    # ------------------------------------------------------------------
    # Control messages

    def _on_message(self, message: object, now: float) -> list[Effect]:
        if isinstance(message, KeepAlive):
            self._last_heard[message.column] = now
            return []
        if isinstance(message, JoinGrant):
            effects: list[Effect] = []
            for column, parent in message.assignments:
                effects.append(self._clip(column, parent, now))
            return effects
        if isinstance(message, SetParent):
            self._last_heard.pop(message.column, None)
            self.complained.discard(message.column)
            return [self._clip(message.column, message.parent, now)]
        if isinstance(message, ThreadRemoved):
            self.parents.pop(message.column, None)
            self.children.pop(message.column, None)
            self._last_heard.pop(message.column, None)
            self._backoffs.pop(message.column, None)
            self.complained.discard(message.column)
            return [StopThread(column=message.column)]
        if isinstance(message, AttachChild):
            self.children[message.column] = message.child
            return []
        if isinstance(message, DetachChild):
            self.children.pop(message.column, None)
            return [CloseChildren(column=message.column)]
        if isinstance(message, Probe):
            return [Send(SERVER, ProbeAck(
                node_id=self.node_id, nonce=message.nonce))]
        return []

    def _clip(self, column: int, parent: int, now: float) -> Effect:
        """Retarget one thread's upstream; fresh backoff schedule."""
        self.parents[column] = parent
        self._attached_at[column] = now
        self._backoffs[column] = ReconnectBackoff(
            self.reconnect_base, self.reconnect_max
        )
        return Clip(column=column, parent=parent)

    # ------------------------------------------------------------------
    # Silence detection -> complaints

    def _on_silence_check(self, now: float) -> list[Effect]:
        """Timestamp-based detector: complain about threads whose
        keep-alives stopped arriving."""
        effects: list[Effect] = []
        for column, parent in self.parents.items():
            if parent == SERVER:
                continue  # served directly by the server: assumed reliable
            last = self._last_heard.get(
                column, self._attached_at.get(column, now)
            )
            if now - last > self.silence_timeout:
                effects.extend(self._complain(column, parent))
        return effects

    def _on_upstream_down(
        self, column: int, parent: int, saw_traffic: bool
    ) -> list[Effect]:
        """Stream-based detector: a session on ``column`` ended."""
        backoff = self._backoffs.setdefault(
            column, ReconnectBackoff(self.reconnect_base, self.reconnect_max)
        )
        if saw_traffic:
            backoff.reset()
            return []  # healthy session: redial immediately
        effects: list[Effect] = []
        if self.parents.get(column) == parent:
            effects.extend(self._complain(column, parent))
        effects.append(Backoff(column=column, delay=backoff.next()))
        return effects

    def _complain(self, column: int, suspect: int) -> list[Effect]:
        """One complaint per column per silence episode, re-armed by
        ``SetParent``; never after the server is lost, never against
        the server itself."""
        if self.server_lost or suspect == SERVER:
            return []
        if column in self.complained:
            if self.obs is not None:
                self.obs.complaints_suppressed.inc()
            return []
        self.complained.add(column)
        return [Send(SERVER, ComplaintMsg(
            reporter=self.node_id, column=column, suspect=suspect))]
