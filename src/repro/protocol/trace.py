"""Recording and replaying engine traces.

Attach an :class:`EngineLog` to an engine (``engine.log = EngineLog()``)
and every ``handle`` call appends its ``(event, effects)`` step.  Two
properties make the logs useful:

* **conformance** — two drivers pumping the same protocol scenario
  through their engines must produce identical *effect traces*, however
  different their transports look (the cross-driver goldens assert
  this for the message simulator vs. the virtual network);
* **determinism** — replaying a recorded event trace into a fresh,
  identically-seeded engine reproduces the effect trace exactly (the
  hypothesis suite fuzzes this).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EngineLog", "replay"]


@dataclass
class EngineLog:
    """An append-only record of one engine's event/effect history."""

    #: every event handled, in order
    events: list = field(default_factory=list)
    #: one effects-tuple per event, aligned with :attr:`events`
    steps: list = field(default_factory=list)

    def record(self, event, effects) -> None:
        self.events.append(event)
        self.steps.append(tuple(effects))

    def effect_trace(self) -> tuple:
        """All effects emitted, flattened, in emission order.

        Zero-effect events vanish here, which is what makes the trace
        driver-independent: duplicate complaints, stale probe acks and
        spurious timer fires differ between transports but never
        produce effects.
        """
        return tuple(
            effect for effects in self.steps for effect in effects
        )

    def effect_reprs(self) -> list[str]:
        """The effect trace as stable strings (golden-file friendly)."""
        return [repr(effect) for effect in self.effect_trace()]


def replay(engine, events) -> tuple:
    """Feed ``events`` into ``engine`` and return its flat effect trace.

    The engine should be freshly constructed (and, for a
    :class:`~repro.protocol.server_engine.ServerEngine`, seeded
    identically to the recording run — matrix randomness flows from the
    core's generator).
    """
    trace = []
    for event in events:
        trace.extend(engine.handle(event))
    return tuple(trace)
