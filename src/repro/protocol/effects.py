"""Effects: everything a protocol engine can ask its driver to do.

Effects are data, not actions.  ``engine.handle(event)`` returns a list
of them, in the exact order the driver must perform them (send order is
part of the protocol: a ``SetParent`` overtaking its ``AttachChild``
re-introduces the stale-topology race the FIFO control channel exists
to prevent).  Drivers translate each effect into their transport's
vocabulary — a datagram send, a stream write, an asyncio task, a
simulator timer — or ignore effects that have no meaning there (the
message simulator has no data connections to ``Clip``).

Notification effects (``Admitted``, ``ComplaintNoted``,
``PeerDeparted``) carry no protocol obligation; they exist so drivers
can keep their own bookkeeping (stats counters, repair-latency records,
peer handles) without reimplementing the decision logic.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Admitted",
    "Backoff",
    "Clip",
    "CloseChildren",
    "CloseConnection",
    "ComplaintNoted",
    "Effect",
    "PeerDeparted",
    "Send",
    "StartTimer",
    "StopThread",
]


@dataclass(frozen=True)
class Send:
    """Deliver ``message`` to node ``to`` (:data:`~repro.core.matrix.SERVER`
    means the coordination server)."""

    to: int
    message: object


@dataclass(frozen=True)
class StartTimer:
    """Arrange for ``TimerFired(key)`` after ``delay`` seconds."""

    key: tuple
    delay: float


@dataclass(frozen=True)
class CloseConnection:
    """Server driver: tear down this peer's control connection (probe
    timed out; the suspect is being spliced away)."""

    node_id: int


@dataclass(frozen=True)
class Admitted:
    """Hello protocol completed: ``node_id`` joined with these
    ``(column, parent)`` assignments.  Emitted before the grant and
    redirect sends so the driver can set up per-peer state first."""

    node_id: int
    assignments: tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class ComplaintNoted:
    """First complaint of a failure episode against ``suspect`` was
    accepted (repair-latency bookkeeping hook)."""

    suspect: int


@dataclass(frozen=True)
class PeerDeparted:
    """``node_id`` is out of the matrix: ``"leave"`` for a graceful
    good-bye, ``"crash"`` for an EOF or probe-timeout splice."""

    node_id: int
    reason: str


@dataclass(frozen=True)
class Clip:
    """Peer driver: (re)connect the upstream pump for ``column`` to
    ``parent`` — the live Lemma 1 re-clip."""

    column: int
    parent: int


@dataclass(frozen=True)
class StopThread:
    """Peer driver: stop the upstream pump for ``column`` entirely."""

    column: int


@dataclass(frozen=True)
class CloseChildren:
    """Peer driver: close every downstream pump on ``column``."""

    column: int


@dataclass(frozen=True)
class Backoff:
    """Peer driver: wait ``delay`` seconds before redialing ``column``
    (one step of the exponential reconnect schedule)."""

    column: int
    delay: float


#: Anything ``handle`` returns.
Effect = object
