"""Seed management: one root seed, many independent deterministic streams.

Every stochastic component of a simulation (membership, coding, losses,
attacks) gets its own child generator so that changing how many random
numbers one component draws never perturbs another — runs stay exactly
reproducible and comparable across configurations.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce a seed-like value into a Generator (pass-through if one)."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class RngStreams:
    """A family of named, independent random streams under one root seed.

    >>> streams = RngStreams(42)
    >>> coding_rng = streams.get("coding")
    >>> loss_rng = streams.get("loss")

    Streams are spawned from a ``SeedSequence`` keyed by the stream name,
    so the same (seed, name) pair always yields the same stream.
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self.seed = seed
        self._root = np.random.SeedSequence(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """The generator for ``name``, created deterministically on first use."""
        if name not in self._streams:
            # Derive a child seed from the root entropy and the name bytes.
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=tuple(name.encode("utf-8")),
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]
