"""A compact discrete-event simulation engine.

Binary-heap scheduler with cancellable events, periodic processes and a
watchdog event budget.  The membership/churn drivers and the repair-delay
experiments run on this; the packet data plane uses the slotted
simulator in :mod:`repro.sim.broadcast` (the paper's unit-bandwidth
threads make time slots the natural clock there).
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from .events import Event, make_event


class SimulationError(RuntimeError):
    """Raised when the engine detects a misuse (e.g. scheduling in the past)."""


class Simulator:
    """Discrete-event loop.

    >>> sim = Simulator()
    >>> sim.schedule(5.0, lambda s: print("hello at", s.now))
    >>> sim.run()
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: list[Event] = []
        self.processed = 0

    def schedule(
        self,
        time: float,
        action: Callable[["Simulator"], None],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at absolute ``time``; returns the Event."""
        if time < self.now:
            raise SimulationError(f"cannot schedule at {time} < now {self.now}")
        event = make_event(time, action, priority, label)
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(
        self,
        delay: float,
        action: Callable[["Simulator"], None],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` after a relative ``delay``."""
        if delay < 0:
            raise SimulationError("delay must be non-negative")
        return self.schedule(self.now + delay, action, priority, label)

    def every(
        self,
        interval: float,
        action: Callable[["Simulator"], None],
        start: Optional[float] = None,
        priority: int = 0,
        label: str = "",
    ) -> Callable[[], None]:
        """Run ``action`` periodically; returns a stop() function.

        The first firing is at ``start`` (default: now + interval).
        """
        if interval <= 0:
            raise SimulationError("interval must be positive")
        stopped = {"flag": False}
        holder: dict[str, Event] = {}

        def fire(sim: "Simulator") -> None:
            if stopped["flag"]:
                return
            action(sim)
            if not stopped["flag"]:
                holder["event"] = sim.schedule_after(interval, fire, priority, label)

        first = self.now + interval if start is None else start
        holder["event"] = self.schedule(first, fire, priority, label)

        def stop() -> None:
            stopped["flag"] = True
            event = holder.get("event")
            if event is not None:
                event.cancel()

        return stop

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> None:
        """Process events in order until the queue drains or ``until``.

        ``until`` is inclusive: events exactly at ``until`` still fire.
        ``max_events`` guards against runaway self-scheduling loops.
        """
        budget = max_events
        while self._queue:
            if budget <= 0:
                raise SimulationError(f"event budget {max_events} exhausted at t={self.now}")
            event = self._queue[0]
            if until is not None and event.time > until:
                break
            heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            event.action(self)
            self.processed += 1
            budget -= 1
        if until is not None and self.now < until:
            self.now = until

    def step(self) -> bool:
        """Process exactly one event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            event.action(self)
            self.processed += 1
            return True
        return False

    @property
    def pending(self) -> int:
        """Events still queued (including cancelled ones not yet popped)."""
        return len(self._queue)
