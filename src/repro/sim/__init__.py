"""Simulation layer: event engine, loss models, slotted RLNC broadcast.

* :class:`Simulator` — generic discrete-event engine (membership/churn
  timing experiments).
* :class:`BroadcastSimulation` — the packet-level data plane: one coded
  packet per thread per slot, RLNC mixing at every working node.
* :func:`run_session` — one-call scenario orchestration.
"""

from .broadcast import (
    BroadcastReport,
    BroadcastSimulation,
    NodeReport,
    NodeRole,
)
from .engine import SimulationError, Simulator
from .graph_broadcast import GraphBroadcastSimulation
from .events import Event, make_event
from .links import LinkStats, LossModel, OutageModel
from .streaming import PlaybackMonitor, PlaybackReport
from .rng import RngStreams, make_rng
from .session import SessionConfig, SessionResult, run_session

__all__ = [
    "BroadcastReport",
    "BroadcastSimulation",
    "Event",
    "GraphBroadcastSimulation",
    "LinkStats",
    "LossModel",
    "NodeReport",
    "NodeRole",
    "OutageModel",
    "PlaybackMonitor",
    "PlaybackReport",
    "RngStreams",
    "SessionConfig",
    "SessionResult",
    "SimulationError",
    "Simulator",
    "make_event",
    "make_rng",
    "run_session",
]
