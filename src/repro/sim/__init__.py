"""Simulation layer: event engine, loss models, slotted RLNC broadcast.

* :class:`SlottedRuntime` — the unified two-phase slotted kernel: one
  :class:`Topology` (who sends to whom) × one :class:`NodeBehavior`
  (what is sent, what receipt does) under shared loss/outage/link
  accounting.  Every simulator below runs on it.
* :class:`BroadcastSimulation` — RLNC over the curtain overlay.
* :class:`GraphBroadcastSimulation` — RLNC over the §6 random graph.
* :func:`run_session` — one-call scenario orchestration (churn, repair,
  and attack schedules as runtime slot hooks).
* :class:`Simulator` — generic discrete-event engine (membership/churn
  timing experiments).
"""

from .behaviors import (
    NodeRole,
    RarestFirstBehavior,
    RlncBehavior,
    StoreForwardBehavior,
)
from .broadcast import BroadcastSimulation
from .engine import SimulationError, Simulator
from .graph_broadcast import GraphBroadcastSimulation
from .events import Event, make_event
from .links import LinkStats, LossModel, OutageModel
from .report import (
    BroadcastReport,
    FloodingReport,
    NodeReport,
    RunReport,
    SlotRecord,
    completion_percentile,
    mean_completion_slot,
)
from .runtime import (
    DEFAULT_MAX_SLOTS,
    CurtainTopology,
    GraphTopology,
    NodeBehavior,
    SlottedRuntime,
    StaticTopology,
    Topology,
)
from .streaming import PlaybackMonitor, PlaybackReport
from .rng import RngStreams, make_rng
from .session import SessionConfig, SessionResult, run_session

__all__ = [
    "BroadcastReport",
    "BroadcastSimulation",
    "CurtainTopology",
    "DEFAULT_MAX_SLOTS",
    "Event",
    "FloodingReport",
    "GraphBroadcastSimulation",
    "GraphTopology",
    "LinkStats",
    "LossModel",
    "NodeBehavior",
    "NodeReport",
    "NodeRole",
    "OutageModel",
    "PlaybackMonitor",
    "PlaybackReport",
    "RarestFirstBehavior",
    "RlncBehavior",
    "RngStreams",
    "RunReport",
    "SessionConfig",
    "SessionResult",
    "SimulationError",
    "Simulator",
    "SlotRecord",
    "SlottedRuntime",
    "StaticTopology",
    "StoreForwardBehavior",
    "Topology",
    "completion_percentile",
    "make_event",
    "make_rng",
    "mean_completion_slot",
    "run_session",
]
