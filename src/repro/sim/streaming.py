"""Streaming playback on top of the broadcast data plane.

The paper distinguishes synchronous (live/VoD) from asynchronous
(download) delivery and argues in §7 that larger ``d`` buys *lower
variance* — i.e. smoother playback — at the same expected bandwidth.
This module measures that: a :class:`PlaybackMonitor` models a receiver
that plays generation ``t`` during a fixed-length window after a startup
delay, and counts a *stall* whenever the generation is not decoded by
its deadline.

The continuity index (fraction of windows played on time) is the
standard streaming QoE metric; ablation X6 sweeps ``d`` at fixed total
bandwidth and shows continuity improving with ``d`` — the variance
conjecture, expressed in user experience.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .broadcast import BroadcastSimulation


@dataclass(frozen=True)
class PlaybackReport:
    """Playback outcome for one receiver.

    Attributes:
        node_id: The receiver.
        windows: Generations it attempted to play.
        stalls: Windows whose generation missed its deadline.
        startup_delay: Slots waited before playback began.
        continuity: Fraction of windows played on time.
    """

    node_id: int
    windows: int
    stalls: int
    startup_delay: int

    @property
    def continuity(self) -> float:
        return 1.0 - self.stalls / self.windows if self.windows else 1.0


@dataclass
class PlaybackMonitor:
    """Deadline bookkeeping for every honest receiver in a broadcast.

    Args:
        sim: The broadcast to monitor (drive it via :meth:`step`).
        window: Slots of content per generation at playback rate (the
            generation's play duration).
        startup_delay: Slots a receiver buffers before starting playback
            (counted from when it first receives anything).
    """

    sim: BroadcastSimulation
    window: int
    startup_delay: int
    _first_heard: dict[int, int] = field(default_factory=dict)
    _decoded_at: dict[tuple[int, int], int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.startup_delay < 0:
            raise ValueError("startup_delay must be >= 0")

    def step(self) -> None:
        """Advance the broadcast one slot and sample decode states."""
        self.sim.step()
        slot = self.sim.slot
        for node_id, recoder in self.sim._recoders.items():
            if node_id not in self._first_heard and self.sim._received.get(node_id, 0):
                self._first_heard[node_id] = slot
            for generation, decoder in enumerate(recoder.decoder.generations):
                key = (node_id, generation)
                if key not in self._decoded_at and decoder.is_complete:
                    self._decoded_at[key] = slot

    def run(self, slots: int) -> None:
        """Drive the broadcast for ``slots`` slots."""
        for _ in range(slots):
            self.step()

    def report(self, node_id: int) -> Optional[PlaybackReport]:
        """Playback outcome for one receiver (None if it never heard)."""
        first = self._first_heard.get(node_id)
        if first is None:
            return None
        start = first + self.startup_delay
        generations = self.sim.generation_count
        stalls = 0
        for generation in range(generations):
            deadline = start + (generation + 1) * self.window
            decoded = self._decoded_at.get((node_id, generation))
            if decoded is None or decoded > deadline:
                stalls += 1
        return PlaybackReport(
            node_id=node_id,
            windows=generations,
            stalls=stalls,
            startup_delay=self.startup_delay,
        )

    def continuity_summary(self) -> dict[int, float]:
        """Continuity index per honest working receiver."""
        out = {}
        for node_id in self.sim._honest_working_nodes():
            report = self.report(node_id)
            if report is not None:
                out[node_id] = report.continuity
        return out
