"""Packet-level RLNC broadcast over the §6 random-graph (cyclic) overlay.

The curtain simulator in :mod:`repro.sim.broadcast` walks the thread
matrix; this one walks an explicit edge multiset — the shape the §6
edge-splitting overlay produces.  Cycles are allowed: a node may receive
mixtures derived (transitively) from its own emissions, which are simply
non-innovative.  §6 predicts a small throughput loss from such cycles in
exchange for logarithmic delay; the E6b ablation measures both on the
same code path.

Since the runtime unification this class is a thin adapter over
:class:`~repro.sim.runtime.SlottedRuntime` with a
:class:`~repro.sim.runtime.GraphTopology` edge view — the identical
kernel the curtain and flooding simulators run on, which is what makes
the §6 cyclic-vs-acyclic comparison apples-to-apples.
"""

from __future__ import annotations

from typing import Optional

from ..coding.generation import GenerationParams
from ..coding.recoder import Recoder
from ..core.random_graph import RandomGraphOverlay
from .behaviors import NodeRole, RlncBehavior
from .links import LinkStats, LossModel
from .report import RunReport
from .rng import RngStreams
from .runtime import DEFAULT_MAX_SLOTS, GraphTopology, SlottedRuntime

__all__ = ["GraphBroadcastSimulation"]


class GraphBroadcastSimulation:
    """Slotted RLNC broadcast over a :class:`RandomGraphOverlay`.

    Each slot, every edge ``u -> v`` carries one packet: a fresh encoder
    packet when ``u`` is the server, otherwise a fresh mixture of ``u``'s
    buffer (nothing if the buffer is empty).  Unserved server slots
    (edges to ``None``) idle.

    Args:
        overlay: The §6 overlay (may be mutated between ``step`` calls).
        content: Bytes the server broadcasts.
        params: Generation geometry.
        seed: Root seed for the simulation's random streams.
        loss: Ergodic per-delivery loss model.
        roles: Optional ``node_id -> NodeRole`` for attack experiments
            (the unified runtime makes the §7 attacker roles available
            on every topology).
    """

    def __init__(
        self,
        overlay: RandomGraphOverlay,
        content: bytes,
        params: GenerationParams,
        seed: Optional[int] = None,
        loss: Optional[LossModel] = None,
        roles: Optional[dict[int, NodeRole]] = None,
    ) -> None:
        self.overlay = overlay
        self.content = content
        self.params = params
        self.streams = RngStreams(seed)
        self.behavior = RlncBehavior(content, params, self.streams, roles=roles)
        self.topology = GraphTopology(overlay)
        self.runtime = SlottedRuntime(
            self.topology,
            self.behavior,
            streams=self.streams,
            loss=loss,
            measured=self._honest_nodes,
        )

    # -- delegated state -----------------------------------------------

    @property
    def loss(self) -> LossModel:
        return self.runtime.loss

    @property
    def encoder(self):
        return self.behavior.encoder

    @property
    def generation_count(self) -> int:
        return self.behavior.generation_count

    @property
    def slot(self) -> int:
        return self.runtime.slot

    @property
    def link_stats(self) -> LinkStats:
        return self.runtime.link_stats

    @property
    def server_packets(self) -> int:
        return self.runtime.server_packets

    @property
    def server_detach_slot(self) -> Optional[int]:
        """§6 self-sustaining mode: slot after which the server is silent.

        Unlike the acyclic curtain — where upstream nodes starve the
        moment the rod stops — the cyclic random graph keeps circulating
        information, so the swarm can finish among itself.
        """
        return self.runtime.server_detach_slot

    @server_detach_slot.setter
    def server_detach_slot(self, value: Optional[int]) -> None:
        self.runtime.server_detach_slot = value

    @property
    def _recoders(self) -> dict[int, Recoder]:
        return self.behavior._recoders

    @property
    def _received(self) -> dict[int, int]:
        return self.behavior._received

    @property
    def _innovative(self) -> dict[int, int]:
        return self.behavior._innovative

    @property
    def _completed_at(self) -> dict[int, int]:
        return self.behavior._completed_at

    # -- behaviour pass-throughs ---------------------------------------

    def recoder_of(self, node_id: int) -> Recoder:
        return self.behavior.recoder_of(node_id)

    def _honest_nodes(self) -> list[int]:
        return [
            n for n in sorted(self.overlay.nodes)
            if self.behavior.role_of(n) is NodeRole.HONEST
        ]

    # -- running --------------------------------------------------------

    def step(self) -> None:
        """One slot: simultaneous emissions on every edge, then delivery."""
        self.runtime.step()

    def detach_server(self, at_slot: Optional[int] = None) -> None:
        """Silence the server from ``at_slot`` (default: now)."""
        self.runtime.detach_server(at_slot)

    def swarm_has_full_rank(self) -> bool:
        """True if the peers collectively hold every degree of freedom."""
        return self.behavior.swarm_has_full_rank()

    def run(self, slots: int) -> RunReport:
        """Run ``slots`` more slots and return the cumulative report."""
        return self.runtime.run(slots)

    def run_until_complete(self, max_slots: int = DEFAULT_MAX_SLOTS) -> RunReport:
        """Run until every overlay node decodes (or the budget runs out)."""
        return self.runtime.run_until_complete(max_slots)

    def report(self) -> RunReport:
        """Aggregate per-node statistics (same shape as the curtain sim)."""
        return self.runtime.report()
