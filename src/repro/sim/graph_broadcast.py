"""Packet-level RLNC broadcast over the §6 random-graph (cyclic) overlay.

The curtain simulator in :mod:`repro.sim.broadcast` walks the thread
matrix; this one walks an explicit edge multiset — the shape the §6
edge-splitting overlay produces.  Cycles are allowed: a node may receive
mixtures derived (transitively) from its own emissions, which are simply
non-innovative.  §6 predicts a small throughput loss from such cycles in
exchange for logarithmic delay; the E6b ablation measures both on the
same code path.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..coding.encoder import SourceEncoder
from ..coding.generation import GenerationParams
from ..coding.recoder import Recoder
from ..core.matrix import SERVER
from ..core.random_graph import RandomGraphOverlay
from .broadcast import BroadcastReport, NodeReport
from .links import LinkStats, LossModel
from .rng import RngStreams


class GraphBroadcastSimulation:
    """Slotted RLNC broadcast over a :class:`RandomGraphOverlay`.

    Each slot, every edge ``u -> v`` carries one packet: a fresh encoder
    packet when ``u`` is the server, otherwise a fresh mixture of ``u``'s
    buffer (nothing if the buffer is empty).  Unserved server slots
    (edges to ``None``) idle.
    """

    def __init__(
        self,
        overlay: RandomGraphOverlay,
        content: bytes,
        params: GenerationParams,
        seed: Optional[int] = None,
        loss: Optional[LossModel] = None,
    ) -> None:
        self.overlay = overlay
        self.content = content
        self.params = params
        self.streams = RngStreams(seed)
        self.loss = loss or LossModel(0.0)
        self.encoder = SourceEncoder(content, params, self.streams.get("encoder"))
        self.generation_count = self.encoder.generation_count
        self.slot = 0
        self.link_stats = LinkStats()
        self.server_packets = 0
        #: §6 self-sustaining mode: slot after which the server is silent.
        #: Unlike the acyclic curtain — where upstream nodes starve the
        #: moment the rod stops — the cyclic random graph keeps circulating
        #: information, so the swarm can finish among itself.
        self.server_detach_slot: Optional[int] = None
        self._recoders: dict[int, Recoder] = {}
        self._received: dict[int, int] = {}
        self._innovative: dict[int, int] = {}
        self._completed_at: dict[int, int] = {}

    def recoder_of(self, node_id: int) -> Recoder:
        recoder = self._recoders.get(node_id)
        if recoder is None:
            recoder = Recoder(
                self.params, self.generation_count,
                self.streams.get(f"node-{node_id}"), node_id=node_id,
            )
            self._recoders[node_id] = recoder
            self._received[node_id] = 0
            self._innovative[node_id] = 0
        return recoder

    def step(self) -> None:
        """One slot: simultaneous emissions on every edge, then delivery."""
        sends = []
        server_active = (
            self.server_detach_slot is None or self.slot < self.server_detach_slot
        )
        for u, v in self.overlay.edges:
            if v is None:
                continue  # unserved server slot
            if u == SERVER:
                if not server_active:
                    continue
                sends.append((v, self.encoder.emit()))
                self.server_packets += 1
            else:
                packet = self.recoder_of(u).emit()
                if packet is not None:
                    sends.append((v, packet))
        loss_rng = self.streams.get("loss")
        for destination, packet in sends:
            delivered = self.loss.delivers(loss_rng)
            self.link_stats.record(delivered)
            if not delivered:
                continue
            recoder = self.recoder_of(destination)
            innovative = recoder.receive(packet)
            self._received[destination] += 1
            if innovative:
                self._innovative[destination] += 1
                if (
                    destination not in self._completed_at
                    and recoder.decoder.is_complete
                ):
                    self._completed_at[destination] = self.slot
        self.slot += 1

    def detach_server(self, at_slot: Optional[int] = None) -> None:
        """Silence the server from ``at_slot`` (default: now)."""
        self.server_detach_slot = self.slot if at_slot is None else at_slot

    def swarm_has_full_rank(self) -> bool:
        """True if the peers collectively hold every degree of freedom."""
        from ..gf.linalg import rank as gf_rank

        for generation in range(self.generation_count):
            rows = []
            complete = False
            for recoder in self._recoders.values():
                decoder = recoder.decoder.generations[generation]
                if decoder.is_complete:
                    complete = True
                    break
                if decoder.rank:
                    rows.append(decoder.coefficient_rows())
            if complete:
                continue
            if not rows:
                return False
            if gf_rank(np.concatenate(rows, axis=0)) < self.params.generation_size:
                return False
        return True

    def run_until_complete(self, max_slots: int = 5_000) -> BroadcastReport:
        """Run until every overlay node decodes (or the budget runs out)."""
        while self.slot < max_slots:
            targets = self.overlay.nodes
            if targets and all(t in self._completed_at for t in targets):
                break
            self.step()
        return self.report()

    def report(self) -> BroadcastReport:
        """Aggregate per-node statistics (same shape as the curtain sim)."""
        needed = self.generation_count * self.params.generation_size
        nodes = []
        for node_id in sorted(self.overlay.nodes):
            recoder = self._recoders.get(node_id)
            completed = self._completed_at.get(node_id)
            decoded_ok = None
            if recoder is not None and completed is not None:
                try:
                    decoded_ok = (
                        recoder.decoder.recover(len(self.content)) == self.content
                    )
                except Exception:
                    decoded_ok = False
            nodes.append(
                NodeReport(
                    node_id=node_id,
                    rank=recoder.decoder.total_rank if recoder else 0,
                    needed=needed,
                    completed_at=completed,
                    received=self._received.get(node_id, 0),
                    innovative=self._innovative.get(node_id, 0),
                    decoded_ok=decoded_ok,
                )
            )
        return BroadcastReport(
            slots=self.slot,
            nodes=nodes,
            link_stats=self.link_stats,
            server_packets=self.server_packets,
        )
