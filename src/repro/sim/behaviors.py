"""Node behaviours for the unified slotted runtime.

A behaviour owns all per-node data-plane state (codec buffers or piece
sets) and answers the runtime's three questions: what does the server
put on an edge, what does a peer put on an edge, and what happens when a
payload lands.  Three families cover the repo:

* :class:`RlncBehavior` — RLNC recode-and-forward, with the §7
  behavioural attacker roles (entropy replay, garbage jamming) folded in
  as per-node :class:`NodeRole` assignments;
* :class:`StoreForwardBehavior` — uncoded uniform-random piece
  forwarding (baseline 5, the coupon-collector floor);
* :class:`RarestFirstBehavior` — uncoded forwarding with BitTorrent's
  local rarest-first piece selection (baseline 6).
"""

from __future__ import annotations

import enum
from typing import Callable, Optional, Union

import numpy as np

from ..coding.encoder import SourceEncoder
from ..coding.generation import GenerationParams
from ..coding.packet import CodedPacket
from ..coding.recoder import Recoder
from ..dataplane import (
    EmitToChildren,
    ForwardPolicy,
    IdlePoll,
    MarkComplete,
    PacketArrived,
    PullEmit,
    RelayEngine,
    SourceEngine,
    resolve_policy,
)
from ..gf.tables import FIELD_SIZE
from .report import NodeReport
from .rng import RngStreams

__all__ = [
    "NodeRole",
    "RarestFirstBehavior",
    "RlncBehavior",
    "StoreForwardBehavior",
]


class NodeRole(enum.Enum):
    """Behavioural role of a peer in the data plane."""

    HONEST = "honest"
    ENTROPY_ATTACKER = "entropy"  # §7: forwards trivial combinations
    JAMMER = "jammer"  # §7: injects random garbage packets


class RlncBehavior:
    """RLNC at every node: fresh random mixtures on every outgoing edge.

    Since the data-plane unification this class is a pull-mode driver of
    :class:`~repro.dataplane.RelayEngine` (one per contacted node) and
    one :class:`~repro.dataplane.SourceEngine`: the engines own the
    receive gate, the emit decisions, and the received/innovative/
    completion bookkeeping; the behaviour keeps only what the engines
    cannot know — role dispatch (attackers bypass the honest data
    plane) and the slot at which each completion landed.

    Args:
        content: Bytes the server broadcasts.
        params: Generation geometry.
        streams: The simulation's named RNG streams (the behaviour uses
            the ``encoder``, ``node-<id>``, and ``jammer-<id>`` streams).
        roles: Optional ``node_id -> NodeRole`` for attack experiments.
        systematic: Emit original packets first from the server.
        forward_policy: ``"eager"`` (default) emits a fresh mixture on
            every outgoing edge every slot — the paper's constant
            per-thread flow.  ``"innovative"`` spends one emission per
            edge per rank raise (plus ``seed_burst`` unconditional
            packets), the engine-level translation of the live
            transport's innovation-gated fan-out.
        seed_burst: Unconditional packets per edge before the
            ``innovative`` policy demands fresh innovation credit.
        idle_every: Idle-fill period, in slots, for credit-gated edges:
            after this many consecutive declined pulls on one edge the
            behaviour pumps an :class:`~repro.dataplane.IdlePoll` and
            sends the returned mixture anyway — the slotted translation
            of the live transport honouring
            :class:`~repro.dataplane.RequestIdle` with data-bearing
            keep-alives (a gated child must not starve on a
            dependent-mixture tail).
    """

    def __init__(
        self,
        content: bytes,
        params: GenerationParams,
        streams: RngStreams,
        *,
        roles: Optional[dict[int, NodeRole]] = None,
        systematic: bool = False,
        forward_policy: Union[str, ForwardPolicy] = "eager",
        seed_burst: int = 1,
        idle_every: int = 4,
    ) -> None:
        self.content = content
        self.params = params
        self.streams = streams
        self.roles = dict(roles or {})
        self.forward_policy = resolve_policy(forward_policy)
        self.seed_burst = seed_burst
        self.idle_every = idle_every
        self.encoder = SourceEncoder(
            content, params, streams.get("encoder"), systematic_first=systematic
        )
        self.generation_count = self.encoder.generation_count
        self.source = SourceEngine(self.encoder)
        self._recoders: dict[int, Recoder] = {}
        self._engines: dict[int, RelayEngine] = {}
        self._completed_at: dict[int, int] = {}
        self._jammer_rngs: dict[int, np.random.Generator] = {}
        #: (sender, destination) -> consecutive declined pulls, for the
        #: idle-fill cadence on credit-gated edges
        self._idle_silence: dict[tuple[int, int], int] = {}

    # -- roles and codec state -----------------------------------------

    def role_of(self, node_id: int) -> NodeRole:
        return self.roles.get(node_id, NodeRole.HONEST)

    def engine_of(self, node_id: int) -> RelayEngine:
        """The node's data-plane engine, created on first contact."""
        engine = self._engines.get(node_id)
        if engine is None:
            recoder = Recoder(
                self.params,
                self.generation_count,
                self.streams.get(f"node-{node_id}"),
                node_id=node_id,
            )
            self._recoders[node_id] = recoder
            engine = RelayEngine(
                recoder,
                policy=self.forward_policy,
                batched=False,
                seed_burst=self.seed_burst,
            )
            self._engines[node_id] = engine
        return engine

    def recoder_of(self, node_id: int) -> Recoder:
        """The node's buffer/codec state, created on first contact."""
        return self.engine_of(node_id).recoder

    @property
    def _received(self) -> dict[int, int]:
        """``node -> packets ingested`` (a view over the engines)."""
        return {nid: e.received for nid, e in self._engines.items()}

    @property
    def _innovative(self) -> dict[int, int]:
        """``node -> rank-raising packets`` (a view over the engines)."""
        return {nid: e.innovative for nid, e in self._engines.items()}

    def _jammer_rng(self, node_id: int) -> np.random.Generator:
        """Per-node jammer stream, cached off the per-emission path."""
        rng = self._jammer_rngs.get(node_id)
        if rng is None:
            rng = self.streams.get(f"jammer-{node_id}")
            self._jammer_rngs[node_id] = rng
        return rng

    def _jam_packet(self, node_id: int, generation: int) -> CodedPacket:
        """A garbage packet: random coefficients over a random payload.

        The coefficient header *claims* a valid combination, so honest
        receivers cannot distinguish it — the §7 jamming scenario.
        """
        rng = self._jammer_rng(node_id)
        coefficients = rng.integers(0, FIELD_SIZE, size=self.params.generation_size,
                                    dtype=np.uint8)
        if not coefficients.any():
            coefficients[0] = 1
        payload = rng.integers(0, FIELD_SIZE, size=self.params.payload_size,
                               dtype=np.uint8)
        return CodedPacket(generation=generation, coefficients=coefficients,
                           payload=payload, origin=node_id)

    # -- runtime protocol ----------------------------------------------

    def server_emit(self, destination: int) -> CodedPacket:
        for effect in self.source.handle(PullEmit(destination)):
            if isinstance(effect, EmitToChildren):
                return effect.packets[0]
        return None

    def emit(self, sender: int, destination: int) -> Optional[CodedPacket]:
        engine = self.engine_of(sender)
        role = self.role_of(sender)
        if role is NodeRole.HONEST:
            for effect in engine.handle(PullEmit(destination)):
                if isinstance(effect, EmitToChildren):
                    if engine.policy.wants_idle:
                        self._idle_silence.pop((sender, destination), None)
                    return effect.packets[0]
            if engine.policy.wants_idle:
                # Declined for lack of credit: honour RequestIdle the
                # way the live transport does — a data-bearing fill
                # every ``idle_every`` silent slots on this edge.
                edge = (sender, destination)
                silent = self._idle_silence.get(edge, 0) + 1
                if silent >= self.idle_every:
                    self._idle_silence[edge] = 0
                    for effect in engine.handle(IdlePoll(destination)):
                        if isinstance(effect, EmitToChildren):
                            return effect.packets[0]
                else:
                    self._idle_silence[edge] = silent
            return None
        if role is NodeRole.JAMMER:
            rng = self._jammer_rng(sender)
            generation = int(rng.integers(0, self.generation_count))
            return self._jam_packet(sender, generation)
        return engine.recoder.emit_trivial()

    def deliver(self, destination: int, payload: CodedPacket, slot: int) -> None:
        for effect in self.engine_of(destination).handle(
            PacketArrived(payload, now=slot)
        ):
            if isinstance(effect, MarkComplete):
                self._completed_at[destination] = slot

    def completed_at(self) -> dict[int, int]:
        return self._completed_at

    def node_report(self, node_id: int) -> NodeReport:
        needed = self.generation_count * self.params.generation_size
        engine = self._engines.get(node_id)
        if engine is None:
            return NodeReport(node_id=node_id, rank=0, needed=needed,
                              completed_at=None, received=0, innovative=0,
                              decoded_ok=None)
        decoded_ok: Optional[bool] = None
        completed = self._completed_at.get(node_id)
        if completed is not None:
            try:
                decoded_ok = (
                    engine.recoder.decoder.recover(len(self.content))
                    == self.content
                )
            except Exception:
                decoded_ok = False
        return NodeReport(
            node_id=node_id,
            rank=engine.rank,
            needed=needed,
            completed_at=completed,
            received=engine.received,
            innovative=engine.innovative,
            decoded_ok=decoded_ok,
        )

    # -- §6 self-sustainability ----------------------------------------

    def swarm_has_full_rank(
        self, include: Optional[Callable[[int], bool]] = None
    ) -> bool:
        """True if the included peers collectively hold all content DoF.

        Checked per generation: the union of the included nodes'
        coefficient bases must span the full generation space.  This is
        the §6 self-sustainability condition — once true, the server is
        redundant (in a loss-free network).
        """
        from ..gf.linalg import rank as gf_rank

        for generation in range(self.generation_count):
            rows = []
            complete = False
            for node_id, recoder in self._recoders.items():
                if include is not None and not include(node_id):
                    continue
                decoder = recoder.decoder.generations[generation]
                if decoder.is_complete:
                    complete = True  # someone already decodes: full rank
                    break
                if decoder.rank:
                    rows.append(decoder.coefficient_rows())
            if complete:
                continue
            if not rows:
                return False
            if gf_rank(np.concatenate(rows, axis=0)) < self.params.generation_size:
                return False
        return True


class StoreForwardBehavior:
    """Uncoded random forwarding of ``packet_count`` distinct pieces.

    Pieces are abstract indices (payload content is irrelevant to the
    collection dynamics).  The server sends a uniformly random piece
    index on each of its edges each slot (cycling deterministically per
    edge would trap each column in a residue class of the piece indices
    whenever gcd(k, packet_count) > 1); peers forward a uniformly random
    buffered index per edge per slot.
    """

    def __init__(self, packet_count: int, streams: RngStreams) -> None:
        if packet_count < 1:
            raise ValueError("packet_count must be >= 1")
        self.packet_count = packet_count
        self.streams = streams
        self._server_rng = streams.get("server")
        self._forward_rng = streams.get("forward")
        self._buffers: dict[int, set[int]] = {}
        self._received: dict[int, int] = {}
        self._completed_at: dict[int, int] = {}
        self.server_cursor = 0

    def buffer_of(self, node_id: int) -> set[int]:
        buffer = self._buffers.get(node_id)
        if buffer is None:
            buffer = set()
            self._buffers[node_id] = buffer
            self._received[node_id] = 0
        return buffer

    def server_emit(self, destination: int) -> int:
        self.server_cursor += 1
        return int(self._server_rng.integers(0, self.packet_count))

    def emit(self, sender: int, destination: int) -> Optional[int]:
        buffer = self.buffer_of(sender)
        if not buffer:
            return None
        items = sorted(buffer)
        return items[int(self._forward_rng.integers(0, len(items)))]

    def deliver(self, destination: int, payload: int, slot: int) -> None:
        buffer = self.buffer_of(destination)
        self._received[destination] += 1
        if payload not in buffer:
            buffer.add(payload)
            if (
                len(buffer) == self.packet_count
                and destination not in self._completed_at
            ):
                self._completed_at[destination] = slot

    def completed_at(self) -> dict[int, int]:
        return self._completed_at

    def node_report(self, node_id: int) -> NodeReport:
        buffer = self._buffers.get(node_id, set())
        return NodeReport(
            node_id=node_id,
            rank=len(buffer),
            needed=self.packet_count,
            completed_at=self._completed_at.get(node_id),
            received=self._received.get(node_id, 0),
            innovative=len(buffer),
            decoded_ok=None,
        )


class RarestFirstBehavior(StoreForwardBehavior):
    """Uncoded forwarding with local rarest-first piece selection.

    Each node scores every piece by how often it has seen it arrive
    **plus how often it has already forwarded it** and sends the
    lowest-scoring buffered piece, ties broken randomly.  Counting own
    transmissions is essential — score receipts alone and a node
    fixates on its newest piece, re-sending it slot after slot
    (measurably *worse* than random forwarding).
    """

    def __init__(self, packet_count: int, streams: RngStreams) -> None:
        super().__init__(packet_count, streams)
        self._seen_counts: dict[int, np.ndarray] = {}

    def buffer_of(self, node_id: int) -> set[int]:
        buffer = self._buffers.get(node_id)
        if buffer is None:
            buffer = set()
            self._buffers[node_id] = buffer
            self._seen_counts[node_id] = np.zeros(self.packet_count, dtype=np.int64)
            self._received[node_id] = 0
        return buffer

    def _pick_piece(self, node_id: int, rng: np.random.Generator) -> int:
        """The buffered piece with the lowest seen+sent score.

        The pick is immediately scored as a transmission so a node
        rotates through its buffer instead of fixating on one piece.
        """
        buffer = self._buffers[node_id]
        counts = self._seen_counts[node_id]
        items = np.fromiter(buffer, dtype=np.int64)
        rarity = counts[items]
        rarest = items[rarity == rarity.min()]
        pick = int(rarest[rng.integers(0, rarest.size)])
        counts[pick] += 1
        return pick

    def emit(self, sender: int, destination: int) -> Optional[int]:
        buffer = self.buffer_of(sender)
        if not buffer:
            return None
        return self._pick_piece(sender, self._forward_rng)

    def deliver(self, destination: int, payload: int, slot: int) -> None:
        self.buffer_of(destination)  # ensure counts exist before scoring
        self._seen_counts[destination][payload] += 1
        super().deliver(destination, payload, slot)
