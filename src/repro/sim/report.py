"""Unified run reporting for every slotted data-plane simulator.

All five simulators (curtain RLNC, random-graph RLNC, streaming playback,
store-and-forward flooding, rarest-first) report through one
:class:`RunReport`: a list of per-node :class:`NodeReport` rows plus link
accounting, server load, and an optional per-slot timeline.  The summary
helpers (completion percentiles, mean completion slot) live here once
instead of being reimplemented per report type.

For the uncoded baselines the RLNC vocabulary maps directly: *rank* is
the number of distinct pieces buffered, *needed* is the piece count, and
*innovative* is the number of deliveries that added a new piece —
:class:`FloodingReport` is a derived view over those rows, kept for its
historical field names (``mean_unique_fraction``, ``duplicate_fraction``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..metrics import stats
from .links import LinkStats

__all__ = [
    "BroadcastReport",
    "FloodingReport",
    "NodeReport",
    "RunReport",
    "SlotRecord",
    "TransportReport",
    "completion_percentile",
    "mean_completion_slot",
]


def mean_completion_slot(completion_slots: Sequence[int]) -> float:
    """Mean slot at which finishing nodes completed (0.0 if none did)."""
    return stats.mean(completion_slots)


def completion_percentile(completion_slots: Sequence[int], q: float) -> float:
    """The ``q``-th percentile completion slot (0.0 if none finished)."""
    return stats.percentile(completion_slots, q)


@dataclass
class NodeReport:
    """Per-node outcome of a slotted run.

    Attributes:
        node_id: The peer.
        rank: Degrees of freedom collected (distinct pieces for the
            uncoded baselines).
        needed: Degrees of freedom required for full decode/collection.
        completed_at: Slot at which the node completed (None if never).
        received: Packets delivered to this node.
        innovative: Of those, rank-increasing (piece-adding) ones.
        decoded_ok: True if the node decoded *and* the content matched
            the original bytes (False under jamming pollution; None for
            incomplete nodes and for the uncoded baselines).
    """

    node_id: int
    rank: int
    needed: int
    completed_at: Optional[int]
    received: int
    innovative: int
    decoded_ok: Optional[bool]


@dataclass(frozen=True)
class SlotRecord:
    """One slot's delivery accounting (collected when timeline recording
    is enabled on the runtime)."""

    slot: int
    attempted: int
    delivered: int
    completions: int


@dataclass
class TransportReport:
    """Wire-level accounting from a live-transport run.

    Aggregated over every outbound pump of the deployment (server
    columns and peer children).  ``frames_per_flush`` is the observed
    coalescing ratio — how many frames each drain cycle carried; the
    slotted simulators have no byte stream, so their reports leave
    ``transport`` unset.
    """

    frames_sent: int = 0
    bytes_sent: int = 0
    flushes: int = 0
    keepalives: int = 0

    @property
    def frames_per_flush(self) -> float:
        """Mean data frames per drain cycle (0.0 before any flush)."""
        if self.flushes == 0:
            return 0.0
        return self.frames_sent / self.flushes


@dataclass
class RunReport:
    """Aggregate outcome of a slotted run, shared by every simulator."""

    slots: int
    nodes: list[NodeReport]
    link_stats: LinkStats
    server_packets: int
    timeline: list[SlotRecord] = field(default_factory=list)
    #: Wire-level accounting (live transport runs only).
    transport: Optional[TransportReport] = None

    @property
    def completion_fraction(self) -> float:
        """Fraction of measured nodes that fully completed."""
        if not self.nodes:
            return 0.0
        return sum(1 for n in self.nodes if n.completed_at is not None) / len(self.nodes)

    @property
    def mean_goodput(self) -> float:
        """Mean innovative packets per node per slot (units of bandwidth)."""
        if not self.nodes or self.slots == 0:
            return 0.0
        return float(np.mean([n.innovative for n in self.nodes])) / self.slots

    @property
    def poisoned_fraction(self) -> float:
        """Fraction of completed nodes whose decoded bytes were corrupt."""
        completed = [n for n in self.nodes if n.completed_at is not None]
        if not completed:
            return 0.0
        return sum(1 for n in completed if n.decoded_ok is False) / len(completed)

    def completion_slots(self) -> list[int]:
        """Completion times of the nodes that finished."""
        return [n.completed_at for n in self.nodes if n.completed_at is not None]

    def mean_completion_slot(self) -> float:
        """Mean completion slot over the nodes that finished."""
        return mean_completion_slot(self.completion_slots())

    def completion_percentile(self, q: float) -> float:
        """The ``q``-th percentile completion slot over finishers."""
        return completion_percentile(self.completion_slots(), q)


#: Historical name for the RLNC simulators' report; same object.
BroadcastReport = RunReport


@dataclass
class FloodingReport:
    """Outcome of an uncoded flooding run (derived view of a RunReport)."""

    slots: int
    completion_fraction: float
    mean_unique_fraction: float
    duplicate_fraction: float
    completion_slots: list[int] = field(default_factory=list)

    @classmethod
    def from_run(cls, run: RunReport) -> "FloodingReport":
        # A node that needs nothing is trivially complete: fraction 1.0,
        # not a ZeroDivisionError.
        unique_fractions = [
            n.rank / n.needed if n.needed else 1.0 for n in run.nodes
        ]
        duplicates = sum(max(0, n.received - n.innovative) for n in run.nodes)
        received = sum(n.received for n in run.nodes)
        return cls(
            slots=run.slots,
            completion_fraction=run.completion_fraction,
            mean_unique_fraction=stats.mean(unique_fractions),
            duplicate_fraction=duplicates / received if received else 0.0,
            completion_slots=run.completion_slots(),
        )

    def mean_completion_slot(self) -> float:
        """Mean completion slot over the nodes that finished."""
        return mean_completion_slot(self.completion_slots)

    def completion_percentile(self, q: float) -> float:
        """The ``q``-th percentile completion slot over finishers."""
        return completion_percentile(self.completion_slots, q)
