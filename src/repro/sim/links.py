"""Link models: per-delivery loss (ergodic failures) on thread segments.

The paper folds packet loss and momentary congestion into *ergodic
failures*.  At the data plane that is simply: each packet handed to a
thread segment is delivered with probability ``1 − loss_rate``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class LossModel:
    """Bernoulli per-packet loss.

    Attributes:
        loss_rate: Probability an individual delivery is dropped.
    """

    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")

    def delivers(self, rng: np.random.Generator) -> bool:
        """Sample one delivery attempt."""
        if self.loss_rate == 0.0:
            return True
        return bool(rng.random() >= self.loss_rate)

    def delivers_batch(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Sample ``count`` delivery attempts with one vectorised draw.

        Stream-compatible with ``count`` sequential :meth:`delivers` calls
        on the same generator: ``Generator.random(n)`` consumes the exact
        same variates as ``n`` scalar ``random()`` calls, and a zero loss
        rate draws nothing in either form — so seeded runs are bit-for-bit
        identical whichever API the simulator uses.
        """
        if self.loss_rate == 0.0:
            return np.ones(count, dtype=bool)
        return rng.random(count) >= self.loss_rate


@dataclass
class OutageModel:
    """§2 ergodic failures: temporary, unannounced node outages.

    Distinct from non-ergodic failures: an outaged node is silent for a
    while (congestion, a competing process) and then *resumes by itself*
    — no complaint, no repair, its row never moves.  Per slot, a healthy
    node enters outage with probability ``onset``; an outage ends each
    slot with probability ``recovery`` (geometric duration with mean
    ``1/recovery`` slots).

    Attributes:
        onset: Per-slot probability a healthy node goes dark.
        recovery: Per-slot probability an outaged node comes back.
    """

    onset: float = 0.0
    recovery: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.onset < 1.0:
            raise ValueError("onset must be in [0, 1)")
        if not 0.0 < self.recovery <= 1.0:
            raise ValueError("recovery must be in (0, 1]")

    @property
    def mean_duration(self) -> float:
        """Expected outage length in slots."""
        return 1.0 / self.recovery

    @property
    def stationary_outage_fraction(self) -> float:
        """Long-run fraction of time a node spends outaged."""
        if self.onset == 0.0:
            return 0.0
        return self.onset / (self.onset + self.recovery)

    def advance(self, outaged: set[int], population, rng: np.random.Generator) -> None:
        """Advance the outage state one slot, in place.

        Draws are batched (one vectorised ``random(n)`` per phase) but
        stream-compatible with the historical per-node scalar loop: the
        same nodes are visited in the same order and consume the same
        variates, so seeded runs are unchanged.
        """
        if self.onset == 0.0 and not outaged:
            return
        recovering = list(outaged)
        if recovering:
            recovered = np.asarray(rng.random(len(recovering)) < self.recovery)
            outaged.difference_update(
                node for node, done in zip(recovering, recovered) if done
            )
        if self.onset:
            candidates = [node for node in population if node not in outaged]
            if candidates:
                onsets = np.asarray(rng.random(len(candidates)) < self.onset)
                outaged.update(
                    node for node, hit in zip(candidates, onsets) if hit
                )


@dataclass
class LinkStats:
    """Delivery accounting for a simulation run."""

    attempted: int = 0
    delivered: int = 0

    def record(self, delivered: bool) -> None:
        self.attempted += 1
        if delivered:
            self.delivered += 1

    def record_batch(self, attempted: int, delivered: int) -> None:
        """Account a whole slot's deliveries in one call."""
        self.attempted += attempted
        self.delivered += delivered

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.attempted if self.attempted else 1.0
