"""Scenario orchestration: overlay + data plane + failures in one config.

:class:`SessionConfig` describes a whole experiment — overlay geometry,
content, coding parameters, per-slot dynamics (failures, repairs, churn,
losses, attackers) — and :func:`run_session` executes it, returning the
data-plane report plus event accounting.  The examples and the E7/E11
benches are thin wrappers over this.

Since the runtime unification the per-interval dynamics (repair sweeps,
failures, graceful leaves, joins) are a *slot hook* on the shared
:class:`~repro.sim.runtime.SlottedRuntime`, so the same failure scenario
drives any topology: ``topology="curtain"`` runs the thread-matrix
overlay, ``topology="graph"`` the §6 edge-splitting overlay (which has
no repair protocol — non-ergodic failures are a curtain-only concept).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from ..coding.generation import GenerationParams
from ..core.overlay import OverlayNetwork
from ..core.random_graph import RandomGraphOverlay
from .behaviors import NodeRole
from .broadcast import BroadcastReport, BroadcastSimulation
from .graph_broadcast import GraphBroadcastSimulation
from .links import LossModel
from .rng import RngStreams
from .runtime import SlottedRuntime


@dataclass
class SessionConfig:
    """Everything needed to run one broadcast scenario.

    Attributes:
        k: Server threads.
        d: Per-node threads.
        population: Initial node count.
        content_size: Bytes to broadcast.
        generation_size: Source packets per generation.
        payload_size: Bytes per packet.
        loss_rate: Ergodic per-delivery loss probability.
        fail_probability: Per-node, per-repair-interval probability of a
            non-ergodic failure during the run (curtain topology only).
        repair_interval: Slots between dynamics sweeps (failures found in
            a sweep are spliced out; 0 disables failures, repairs, and
            churn).
        join_rate: Nodes joining per repair interval.
        leave_probability: Per-node graceful-leave probability per repair
            interval.
        entropy_attacker_fraction: Fraction of initial nodes replaying
            trivial combinations (§7).
        jammer_fraction: Fraction of initial nodes injecting garbage (§7).
        systematic: Server sends originals first.
        insert_mode: Matrix row insertion mode ("append"/"uniform",
            curtain topology only).
        max_slots: Hard stop for the run.
        seed: Root seed.
        topology: Overlay family — "curtain" (thread matrix, §3–§5) or
            "graph" (§6 random edge-splitting overlay).
    """

    k: int
    d: int
    population: int
    content_size: int = 16_384
    generation_size: int = 16
    payload_size: int = 256
    loss_rate: float = 0.0
    fail_probability: float = 0.0
    repair_interval: int = 0
    join_rate: int = 0
    leave_probability: float = 0.0
    entropy_attacker_fraction: float = 0.0
    jammer_fraction: float = 0.0
    systematic: bool = False
    insert_mode: str = "append"
    max_slots: int = 5_000
    seed: Optional[int] = None
    topology: str = "curtain"


@dataclass
class SessionResult:
    """Outcome of :func:`run_session`."""

    report: BroadcastReport
    failures_injected: int
    repairs_performed: int
    joins: int
    graceful_leaves: int
    net: Union[OverlayNetwork, RandomGraphOverlay] = field(repr=False)
    simulation: Union[BroadcastSimulation, GraphBroadcastSimulation] = field(repr=False)
    #: node id -> slot at which it joined (0 for the initial population)
    joined_at: dict[int, int] = field(default_factory=dict, repr=False)

    def download_durations(self) -> dict[int, int]:
        """Per-node download time in slots (§1's asynchronous framing).

        A node's download runs from its own join slot to its decode
        completion; late joiners are measured on their own clock, which
        is what an asynchronous file-distribution user experiences.
        Only completed nodes appear.
        """
        durations = {}
        for node in self.report.nodes:
            if node.completed_at is None:
                continue
            durations[node.node_id] = (
                node.completed_at - self.joined_at.get(node.node_id, 0)
            )
        return durations


def _assign_roles(
    node_ids: list[int],
    config: SessionConfig,
    rng: np.random.Generator,
) -> dict[int, NodeRole]:
    roles: dict[int, NodeRole] = {}
    count = len(node_ids)
    n_entropy = int(round(config.entropy_attacker_fraction * count))
    n_jammer = int(round(config.jammer_fraction * count))
    if n_entropy + n_jammer > count:
        raise ValueError("attacker fractions exceed the population")
    shuffled = list(node_ids)
    rng.shuffle(shuffled)
    for node_id in shuffled[:n_entropy]:
        roles[node_id] = NodeRole.ENTROPY_ATTACKER
    for node_id in shuffled[n_entropy : n_entropy + n_jammer]:
        roles[node_id] = NodeRole.JAMMER
    return roles


class _SessionDynamics:
    """The per-interval churn/repair sweep, as a runtime slot hook.

    Runs at the top of every ``repair_interval``-th slot: repair sweep
    first (end of previous interval), then failure/leave rolls over the
    working population, then joins.  Counters are read back into the
    :class:`SessionResult` after the run.
    """

    def __init__(
        self,
        net: Union[OverlayNetwork, RandomGraphOverlay],
        config: SessionConfig,
        rng: np.random.Generator,
        joined_at: dict[int, int],
    ) -> None:
        self.net = net
        self.config = config
        self.rng = rng
        self.joined_at = joined_at
        self.failures = 0
        self.repairs = 0
        self.joins = 0
        self.leaves = 0
        self._curtain = isinstance(net, OverlayNetwork)

    def _working(self) -> list[int]:
        if self._curtain:
            return list(self.net.working_nodes)
        return sorted(self.net.nodes)

    def __call__(self, runtime: SlottedRuntime) -> None:
        interval = self.config.repair_interval
        if not interval or runtime.slot % interval != 0 or runtime.slot == 0:
            return
        net = self.net
        if self._curtain:
            # Repair sweep first (end of previous interval), then dynamics.
            self.repairs += len(net.server.failed)
            net.repair_all()
        for node_id in self._working():
            roll = self.rng.random()
            if roll < self.config.fail_probability:
                net.fail(node_id)
                self.failures += 1
            elif roll < self.config.fail_probability + self.config.leave_probability:
                if net.population > 1:
                    net.leave(node_id)
                    self.leaves += 1
        for _ in range(self.config.join_rate):
            joined = net.join()
            node_id = joined if isinstance(joined, int) else joined.node_id
            self.joined_at[node_id] = runtime.slot
            self.joins += 1


def run_session(config: SessionConfig) -> SessionResult:
    """Build the overlay, run the broadcast with dynamics, report."""
    streams = RngStreams(config.seed)
    params = GenerationParams(
        generation_size=config.generation_size, payload_size=config.payload_size
    )
    content_rng = streams.get("content")

    if config.topology == "curtain":
        net: Union[OverlayNetwork, RandomGraphOverlay] = OverlayNetwork(
            k=config.k, d=config.d, seed=streams.get("overlay"),
            insert_mode=config.insert_mode,
        )
    elif config.topology == "graph":
        if config.fail_probability:
            raise ValueError(
                "the §6 random-graph overlay has no fail/repair protocol; "
                "non-ergodic failures require topology='curtain'"
            )
        net = RandomGraphOverlay(k=config.k, d=config.d,
                                 seed=streams.get("overlay"))
    else:
        raise ValueError(f"unknown topology {config.topology!r}")

    initial = net.grow(config.population)
    content = content_rng.integers(
        0, 256, size=config.content_size, dtype=np.uint8
    ).tobytes()
    roles = _assign_roles(initial, config, streams.get("roles"))

    if config.topology == "curtain":
        simulation: Union[BroadcastSimulation, GraphBroadcastSimulation] = (
            BroadcastSimulation(
                net=net,
                content=content,
                params=params,
                seed=config.seed,
                loss=LossModel(config.loss_rate),
                roles=roles,
                systematic=config.systematic,
            )
        )
    else:
        simulation = GraphBroadcastSimulation(
            net,
            content,
            params,
            seed=config.seed,
            loss=LossModel(config.loss_rate),
            roles=roles,
        )

    joined_at = {node_id: 0 for node_id in initial}
    dynamics = _SessionDynamics(net, config, streams.get("dynamics"), joined_at)
    simulation.runtime.add_slot_hook(dynamics)
    report = simulation.run_until_complete(max_slots=config.max_slots)

    return SessionResult(
        report=report,
        failures_injected=dynamics.failures,
        repairs_performed=dynamics.repairs,
        joins=dynamics.joins,
        graceful_leaves=dynamics.leaves,
        net=net,
        simulation=simulation,
        joined_at=joined_at,
    )
