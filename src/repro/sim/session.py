"""Scenario orchestration: overlay + data plane + failures in one config.

:class:`SessionConfig` describes a whole experiment — overlay geometry,
content, coding parameters, per-slot dynamics (failures, repairs, churn,
losses, attackers) — and :func:`run_session` executes it, returning the
data-plane report plus event accounting.  The examples and the E7/E11
benches are thin wrappers over this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..coding.generation import GenerationParams
from ..core.overlay import OverlayNetwork
from .broadcast import BroadcastReport, BroadcastSimulation, NodeRole
from .links import LossModel
from .rng import RngStreams


@dataclass
class SessionConfig:
    """Everything needed to run one broadcast scenario.

    Attributes:
        k: Server threads.
        d: Per-node threads.
        population: Initial node count.
        content_size: Bytes to broadcast.
        generation_size: Source packets per generation.
        payload_size: Bytes per packet.
        loss_rate: Ergodic per-delivery loss probability.
        fail_probability: Per-node, per-repair-interval probability of a
            non-ergodic failure during the run.
        repair_interval: Slots between repair sweeps (failures found in a
            sweep are spliced out; 0 disables both failures and repairs).
        join_rate: Nodes joining per repair interval.
        leave_probability: Per-node graceful-leave probability per repair
            interval.
        entropy_attacker_fraction: Fraction of initial nodes replaying
            trivial combinations (§7).
        jammer_fraction: Fraction of initial nodes injecting garbage (§7).
        systematic: Server sends originals first.
        insert_mode: Matrix row insertion mode ("append"/"uniform").
        max_slots: Hard stop for the run.
        seed: Root seed.
    """

    k: int
    d: int
    population: int
    content_size: int = 16_384
    generation_size: int = 16
    payload_size: int = 256
    loss_rate: float = 0.0
    fail_probability: float = 0.0
    repair_interval: int = 0
    join_rate: int = 0
    leave_probability: float = 0.0
    entropy_attacker_fraction: float = 0.0
    jammer_fraction: float = 0.0
    systematic: bool = False
    insert_mode: str = "append"
    max_slots: int = 5_000
    seed: Optional[int] = None


@dataclass
class SessionResult:
    """Outcome of :func:`run_session`."""

    report: BroadcastReport
    failures_injected: int
    repairs_performed: int
    joins: int
    graceful_leaves: int
    net: OverlayNetwork = field(repr=False)
    simulation: BroadcastSimulation = field(repr=False)
    #: node id -> slot at which it joined (0 for the initial population)
    joined_at: dict[int, int] = field(default_factory=dict, repr=False)

    def download_durations(self) -> dict[int, int]:
        """Per-node download time in slots (§1's asynchronous framing).

        A node's download runs from its own join slot to its decode
        completion; late joiners are measured on their own clock, which
        is what an asynchronous file-distribution user experiences.
        Only completed nodes appear.
        """
        durations = {}
        for node in self.report.nodes:
            if node.completed_at is None:
                continue
            durations[node.node_id] = (
                node.completed_at - self.joined_at.get(node.node_id, 0)
            )
        return durations


def _assign_roles(
    node_ids: list[int],
    config: SessionConfig,
    rng: np.random.Generator,
) -> dict[int, NodeRole]:
    roles: dict[int, NodeRole] = {}
    count = len(node_ids)
    n_entropy = int(round(config.entropy_attacker_fraction * count))
    n_jammer = int(round(config.jammer_fraction * count))
    if n_entropy + n_jammer > count:
        raise ValueError("attacker fractions exceed the population")
    shuffled = list(node_ids)
    rng.shuffle(shuffled)
    for node_id in shuffled[:n_entropy]:
        roles[node_id] = NodeRole.ENTROPY_ATTACKER
    for node_id in shuffled[n_entropy : n_entropy + n_jammer]:
        roles[node_id] = NodeRole.JAMMER
    return roles


def run_session(config: SessionConfig) -> SessionResult:
    """Build the overlay, run the broadcast with dynamics, report."""
    streams = RngStreams(config.seed)
    net = OverlayNetwork(
        k=config.k, d=config.d, seed=streams.get("overlay"),
        insert_mode=config.insert_mode,
    )
    initial = net.grow(config.population)
    content_rng = streams.get("content")
    content = content_rng.integers(
        0, 256, size=config.content_size, dtype=np.uint8
    ).tobytes()
    roles = _assign_roles(initial, config, streams.get("roles"))
    params = GenerationParams(
        generation_size=config.generation_size, payload_size=config.payload_size
    )
    simulation = BroadcastSimulation(
        net=net,
        content=content,
        params=params,
        seed=config.seed,
        loss=LossModel(config.loss_rate),
        roles=roles,
        systematic=config.systematic,
    )
    dynamics_rng = streams.get("dynamics")
    failures = repairs = joins = leaves = 0
    joined_at = {node_id: 0 for node_id in initial}

    while simulation.slot < config.max_slots:
        honest = simulation._honest_working_nodes()
        if honest and all(
            n in simulation._completed_at for n in honest
        ):
            break
        interval = config.repair_interval
        if interval and simulation.slot % interval == 0 and simulation.slot > 0:
            # Repair sweep first (end of previous interval), then dynamics.
            repairs += len(net.server.failed)
            net.repair_all()
            for node_id in list(net.working_nodes):
                roll = dynamics_rng.random()
                if roll < config.fail_probability:
                    net.fail(node_id)
                    failures += 1
                elif roll < config.fail_probability + config.leave_probability:
                    if net.population > 1:
                        net.leave(node_id)
                        leaves += 1
            for _ in range(config.join_rate):
                grant = net.join()
                joined_at[grant.node_id] = simulation.slot
                joins += 1
        simulation.step()

    return SessionResult(
        report=simulation.report(),
        failures_injected=failures,
        repairs_performed=repairs,
        joins=joins,
        graceful_leaves=leaves,
        net=net,
        simulation=simulation,
        joined_at=joined_at,
    )
