"""Event types for the discrete-event engine."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

#: Global tiebreaker so simultaneous events fire in scheduling order.
_sequence = itertools.count()


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering is (time, priority, sequence): lower fires first.  The
    callback receives the simulator so handlers can schedule follow-ups.
    """

    time: float
    priority: int
    sequence: int = field(compare=True)
    action: Callable[["Any"], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


def make_event(time: float, action: Callable[[Any], None],
               priority: int = 0, label: str = "") -> Event:
    """Construct an event with a fresh global sequence number."""
    return Event(time=time, priority=priority, sequence=next(_sequence),
                 action=action, label=label)
