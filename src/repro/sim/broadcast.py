"""Slotted packet-level broadcast simulation with RLNC at every node.

The paper's bandwidth model makes time-slotting the natural clock: every
thread carries exactly one unit-size packet per slot.  Each slot proceeds
in two phases so transmissions are simultaneous (a packet received in
slot ``t`` can be remixed no earlier than slot ``t+1``):

1. *emit* — the server pushes one fresh coded packet down each column to
   that column's first occupant; every working node pushes one fresh
   mixture of its current buffer down each of its threads that has a
   child attached.
2. *deliver* — packets cross their thread segments (subject to the loss
   model and the receiver being alive) and enter receiver buffers.

Failure attackers are simply failed nodes; entropy attackers replay
trivial combinations instead of mixing; jammers inject random garbage
that claims to be a valid combination (§7's pollution scenario).

The overlay may be mutated between slots (join/leave/fail/repair) — the
simulator picks up topology changes automatically, which is exactly the
robustness-to-churn property network coding buys.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..coding.decoder import Decoder
from ..coding.encoder import SourceEncoder
from ..coding.generation import GenerationParams
from ..coding.packet import CodedPacket
from ..coding.recoder import Recoder
from ..core.matrix import SERVER
from ..core.overlay import OverlayNetwork
from ..gf.tables import FIELD_SIZE
from .links import LinkStats, LossModel, OutageModel
from .rng import RngStreams


class NodeRole(enum.Enum):
    """Behavioural role of a peer in the data plane."""

    HONEST = "honest"
    ENTROPY_ATTACKER = "entropy"  # §7: forwards trivial combinations
    JAMMER = "jammer"  # §7: injects random garbage packets


@dataclass
class NodeReport:
    """Per-node outcome of a broadcast run.

    Attributes:
        node_id: The peer.
        rank: Degrees of freedom collected (across generations).
        needed: Degrees of freedom required for full decode.
        completed_at: Slot at which decoding completed (None if never).
        received: Packets delivered to this node.
        innovative: Of those, rank-increasing ones.
        decoded_ok: True if the node decoded *and* the content matched the
            original bytes (False under jamming pollution).
    """

    node_id: int
    rank: int
    needed: int
    completed_at: Optional[int]
    received: int
    innovative: int
    decoded_ok: Optional[bool]


@dataclass
class BroadcastReport:
    """Aggregate outcome of a broadcast run."""

    slots: int
    nodes: list[NodeReport]
    link_stats: LinkStats
    server_packets: int

    @property
    def completion_fraction(self) -> float:
        """Fraction of measured nodes that fully decoded."""
        if not self.nodes:
            return 0.0
        return sum(1 for n in self.nodes if n.completed_at is not None) / len(self.nodes)

    @property
    def mean_goodput(self) -> float:
        """Mean innovative packets per node per slot (units of bandwidth)."""
        if not self.nodes or self.slots == 0:
            return 0.0
        return float(np.mean([n.innovative for n in self.nodes])) / self.slots

    @property
    def poisoned_fraction(self) -> float:
        """Fraction of completed nodes whose decoded bytes were corrupt."""
        completed = [n for n in self.nodes if n.completed_at is not None]
        if not completed:
            return 0.0
        return sum(1 for n in completed if n.decoded_ok is False) / len(completed)

    def completion_slots(self) -> list[int]:
        """Completion times of the nodes that finished."""
        return [n.completed_at for n in self.nodes if n.completed_at is not None]


class BroadcastSimulation:
    """Run RLNC broadcast over a curtain overlay.

    Args:
        net: The overlay (may be mutated between ``step`` calls).
        content: Bytes the server broadcasts.
        params: Generation geometry.
        seed: Root seed for the simulation's random streams.
        loss: Ergodic per-delivery loss model.
        outage: Ergodic per-node outage model (§2): outaged nodes
            neither send nor receive until they spontaneously recover —
            no complaint, no repair.
        roles: Optional ``node_id -> NodeRole`` for attack experiments.
        systematic: Emit original packets first from the server.
    """

    def __init__(
        self,
        net: OverlayNetwork,
        content: bytes,
        params: GenerationParams,
        seed: Optional[int] = None,
        loss: Optional[LossModel] = None,
        outage: Optional[OutageModel] = None,
        roles: Optional[dict[int, NodeRole]] = None,
        systematic: bool = False,
    ) -> None:
        self.net = net
        self.content = content
        self.params = params
        self.streams = RngStreams(seed)
        self.loss = loss or LossModel(0.0)
        self.outage = outage
        #: Nodes currently in an ergodic outage (silent, not failed).
        self.outaged: set[int] = set()
        self.roles = dict(roles or {})
        self.encoder = SourceEncoder(
            content, params, self.streams.get("encoder"), systematic_first=systematic
        )
        self.generation_count = self.encoder.generation_count
        self.slot = 0
        self.link_stats = LinkStats()
        self.server_packets = 0
        #: When set, the server stops emitting at this slot (§6: "it may be
        #: possible eventually for the server to disconnect itself
        #: completely from the network after the content has been delivered
        #: to a small fraction of the population").
        self.server_detach_slot: Optional[int] = None
        self._recoders: dict[int, Recoder] = {}
        self._received: dict[int, int] = {}
        self._innovative: dict[int, int] = {}
        self._completed_at: dict[int, int] = {}

    # ------------------------------------------------------------------

    def role_of(self, node_id: int) -> NodeRole:
        return self.roles.get(node_id, NodeRole.HONEST)

    def recoder_of(self, node_id: int) -> Recoder:
        """The node's buffer/codec state, created on first contact."""
        recoder = self._recoders.get(node_id)
        if recoder is None:
            recoder = Recoder(
                self.params,
                self.generation_count,
                self.streams.get(f"node-{node_id}"),
                node_id=node_id,
            )
            self._recoders[node_id] = recoder
            self._received[node_id] = 0
            self._innovative[node_id] = 0
        return recoder

    def _jam_packet(self, node_id: int, generation: int) -> CodedPacket:
        """A garbage packet: random coefficients over a random payload.

        The coefficient header *claims* a valid combination, so honest
        receivers cannot distinguish it — the §7 jamming scenario.
        """
        rng = self.streams.get(f"jammer-{node_id}")
        coefficients = rng.integers(0, FIELD_SIZE, size=self.params.generation_size,
                                    dtype=np.uint8)
        if not coefficients.any():
            coefficients[0] = 1
        payload = rng.integers(0, FIELD_SIZE, size=self.params.payload_size,
                               dtype=np.uint8)
        return CodedPacket(generation=generation, coefficients=coefficients,
                           payload=payload, origin=node_id)

    def _emissions(self) -> list[tuple[int, CodedPacket]]:
        """Phase 1: compute every (destination, packet) for this slot."""
        matrix = self.net.matrix
        failed = self.net.server.failed
        sends: list[tuple[int, CodedPacket]] = []
        server_active = (
            self.server_detach_slot is None or self.slot < self.server_detach_slot
        )
        # Server: one packet per column, to the column's first occupant.
        if server_active:
            for column in range(matrix.k):
                chain = matrix.column_chain(column)
                if not chain:
                    continue  # hanging straight off the rod: no subscriber
                target = chain[0]
                sends.append((target, self.encoder.emit()))
                self.server_packets += 1
        # Peers: one mixture per attached outgoing thread.
        for node_id in matrix.node_ids:
            if node_id in failed or node_id in self.outaged:
                continue
            recoder = self.recoder_of(node_id)
            role = self.role_of(node_id)
            for column, child in matrix.children_of(node_id).items():
                if child is None:
                    continue
                if role is NodeRole.JAMMER:
                    generation = int(
                        self.streams.get(f"jammer-{node_id}").integers(
                            0, self.generation_count
                        )
                    )
                    sends.append((child, self._jam_packet(node_id, generation)))
                    continue
                if role is NodeRole.ENTROPY_ATTACKER:
                    packet = recoder.emit_trivial()
                else:
                    packet = recoder.emit()
                if packet is not None:
                    sends.append((child, packet))
        return sends

    def step(self) -> None:
        """Advance one slot (outage dynamics, emit phase, deliver phase)."""
        if self.outage is not None:
            self.outage.advance(
                self.outaged, self.net.working_nodes, self.streams.get("outage")
            )
        sends = self._emissions()
        failed = self.net.server.failed
        loss_rng = self.streams.get("loss")
        for destination, packet in sends:
            delivered = (
                destination not in failed
                and destination not in self.outaged
                and self.loss.delivers(loss_rng)
            )
            self.link_stats.record(delivered)
            if not delivered:
                continue
            recoder = self.recoder_of(destination)
            was_innovative = recoder.receive(packet)
            self._received[destination] += 1
            if was_innovative:
                self._innovative[destination] += 1
                if (
                    destination not in self._completed_at
                    and recoder.decoder.is_complete
                ):
                    self._completed_at[destination] = self.slot
        self.slot += 1

    def detach_server(self, at_slot: Optional[int] = None) -> None:
        """Stop the server's emissions at ``at_slot`` (default: now).

        Models §6's self-sustaining download: once the swarm collectively
        holds every degree of freedom (see :meth:`swarm_has_full_rank`),
        peers can finish the distribution among themselves.
        """
        self.server_detach_slot = self.slot if at_slot is None else at_slot

    def swarm_has_full_rank(self) -> bool:
        """True if the working peers collectively hold all content DoF.

        Checked per generation: the union of the working nodes' coefficient
        bases must span the full generation space.  This is the §6
        self-sustainability condition — once true, the server is
        redundant (in a loss-free network).
        """
        from ..gf.linalg import rank as gf_rank

        failed = self.net.server.failed
        for generation in range(self.generation_count):
            rows = []
            for node_id, recoder in self._recoders.items():
                if node_id in failed or node_id not in self.net.matrix:
                    continue
                decoder = recoder.decoder.generations[generation]
                size = self.params.generation_size
                if decoder.is_complete:
                    rows = None  # someone already decodes: full rank
                    break
                rows.extend(
                    packet.coefficients for packet in decoder.basis_packets()
                )
            if rows is None:
                continue
            if not rows:
                return False
            if gf_rank(np.stack(rows)) < self.params.generation_size:
                return False
        return True

    def run(self, slots: int) -> "BroadcastReport":
        """Run ``slots`` more slots and return the cumulative report."""
        for _ in range(slots):
            self.step()
        return self.report()

    def run_until_complete(
        self, max_slots: int = 10_000, nodes: Optional[list[int]] = None
    ) -> "BroadcastReport":
        """Run until every (given or working honest) node decodes.

        Stops at ``max_slots`` regardless; check ``completion_fraction``.
        """
        while self.slot < max_slots:
            targets = nodes if nodes is not None else self._honest_working_nodes()
            if targets and all(t in self._completed_at for t in targets):
                break
            self.step()
        return self.report(nodes)

    def _honest_working_nodes(self) -> list[int]:
        return [
            n for n in self.net.working_nodes
            if self.role_of(n) is NodeRole.HONEST
        ]

    # ------------------------------------------------------------------

    def report(self, nodes: Optional[list[int]] = None) -> BroadcastReport:
        """Build the report for the given nodes (default: working honest)."""
        targets = nodes if nodes is not None else self._honest_working_nodes()
        reports = []
        needed = self.generation_count * self.params.generation_size
        for node_id in targets:
            recoder = self._recoders.get(node_id)
            if recoder is None:
                reports.append(
                    NodeReport(node_id=node_id, rank=0, needed=needed,
                               completed_at=None, received=0, innovative=0,
                               decoded_ok=None)
                )
                continue
            decoded_ok: Optional[bool] = None
            completed = self._completed_at.get(node_id)
            if completed is not None:
                try:
                    decoded_ok = (
                        recoder.decoder.recover(len(self.content)) == self.content
                    )
                except Exception:
                    decoded_ok = False
            reports.append(
                NodeReport(
                    node_id=node_id,
                    rank=recoder.decoder.total_rank,
                    needed=needed,
                    completed_at=completed,
                    received=self._received.get(node_id, 0),
                    innovative=self._innovative.get(node_id, 0),
                    decoded_ok=decoded_ok,
                )
            )
        return BroadcastReport(
            slots=self.slot,
            nodes=reports,
            link_stats=self.link_stats,
            server_packets=self.server_packets,
        )
