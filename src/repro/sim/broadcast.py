"""Slotted packet-level broadcast simulation with RLNC at every node.

The paper's bandwidth model makes time-slotting the natural clock: every
thread carries exactly one unit-size packet per slot.  Each slot proceeds
in two phases so transmissions are simultaneous (a packet received in
slot ``t`` can be remixed no earlier than slot ``t+1``):

1. *emit* — the server pushes one fresh coded packet down each column to
   that column's first occupant; every working node pushes one fresh
   mixture of its current buffer down each of its threads that has a
   child attached.
2. *deliver* — packets cross their thread segments (subject to the loss
   model and the receiver being alive) and enter receiver buffers.

Failure attackers are simply failed nodes; entropy attackers replay
trivial combinations instead of mixing; jammers inject random garbage
that claims to be a valid combination (§7's pollution scenario).

The overlay may be mutated between slots (join/leave/fail/repair) — the
simulator picks up topology changes automatically, which is exactly the
robustness-to-churn property network coding buys.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..coding.decoder import Decoder
from ..coding.encoder import SourceEncoder
from ..coding.generation import GenerationParams
from ..coding.packet import CodedPacket
from ..coding.recoder import Recoder
from ..core.matrix import SERVER
from ..core.overlay import OverlayNetwork
from ..gf.tables import FIELD_SIZE
from .links import LinkStats, LossModel, OutageModel
from .rng import RngStreams


class NodeRole(enum.Enum):
    """Behavioural role of a peer in the data plane."""

    HONEST = "honest"
    ENTROPY_ATTACKER = "entropy"  # §7: forwards trivial combinations
    JAMMER = "jammer"  # §7: injects random garbage packets


@dataclass
class NodeReport:
    """Per-node outcome of a broadcast run.

    Attributes:
        node_id: The peer.
        rank: Degrees of freedom collected (across generations).
        needed: Degrees of freedom required for full decode.
        completed_at: Slot at which decoding completed (None if never).
        received: Packets delivered to this node.
        innovative: Of those, rank-increasing ones.
        decoded_ok: True if the node decoded *and* the content matched the
            original bytes (False under jamming pollution).
    """

    node_id: int
    rank: int
    needed: int
    completed_at: Optional[int]
    received: int
    innovative: int
    decoded_ok: Optional[bool]


@dataclass
class BroadcastReport:
    """Aggregate outcome of a broadcast run."""

    slots: int
    nodes: list[NodeReport]
    link_stats: LinkStats
    server_packets: int

    @property
    def completion_fraction(self) -> float:
        """Fraction of measured nodes that fully decoded."""
        if not self.nodes:
            return 0.0
        return sum(1 for n in self.nodes if n.completed_at is not None) / len(self.nodes)

    @property
    def mean_goodput(self) -> float:
        """Mean innovative packets per node per slot (units of bandwidth)."""
        if not self.nodes or self.slots == 0:
            return 0.0
        return float(np.mean([n.innovative for n in self.nodes])) / self.slots

    @property
    def poisoned_fraction(self) -> float:
        """Fraction of completed nodes whose decoded bytes were corrupt."""
        completed = [n for n in self.nodes if n.completed_at is not None]
        if not completed:
            return 0.0
        return sum(1 for n in completed if n.decoded_ok is False) / len(completed)

    def completion_slots(self) -> list[int]:
        """Completion times of the nodes that finished."""
        return [n.completed_at for n in self.nodes if n.completed_at is not None]


class BroadcastSimulation:
    """Run RLNC broadcast over a curtain overlay.

    Args:
        net: The overlay (may be mutated between ``step`` calls).
        content: Bytes the server broadcasts.
        params: Generation geometry.
        seed: Root seed for the simulation's random streams.
        loss: Ergodic per-delivery loss model.
        outage: Ergodic per-node outage model (§2): outaged nodes
            neither send nor receive until they spontaneously recover —
            no complaint, no repair.
        roles: Optional ``node_id -> NodeRole`` for attack experiments.
        systematic: Emit original packets first from the server.
    """

    def __init__(
        self,
        net: OverlayNetwork,
        content: bytes,
        params: GenerationParams,
        seed: Optional[int] = None,
        loss: Optional[LossModel] = None,
        outage: Optional[OutageModel] = None,
        roles: Optional[dict[int, NodeRole]] = None,
        systematic: bool = False,
    ) -> None:
        self.net = net
        self.content = content
        self.params = params
        self.streams = RngStreams(seed)
        self.loss = loss or LossModel(0.0)
        self.outage = outage
        #: Nodes currently in an ergodic outage (silent, not failed).
        self.outaged: set[int] = set()
        self.roles = dict(roles or {})
        self.encoder = SourceEncoder(
            content, params, self.streams.get("encoder"), systematic_first=systematic
        )
        self.generation_count = self.encoder.generation_count
        self.slot = 0
        self.link_stats = LinkStats()
        self.server_packets = 0
        #: When set, the server stops emitting at this slot (§6: "it may be
        #: possible eventually for the server to disconnect itself
        #: completely from the network after the content has been delivered
        #: to a small fraction of the population").
        self.server_detach_slot: Optional[int] = None
        self._recoders: dict[int, Recoder] = {}
        self._received: dict[int, int] = {}
        self._innovative: dict[int, int] = {}
        self._completed_at: dict[int, int] = {}
        # Cached rng handles: stream identity depends only on (seed, name),
        # so hoisting the f-string/dict lookups off the per-slot path is
        # behaviour-neutral.
        self._loss_rng = self.streams.get("loss")
        self._jammer_rngs: dict[int, np.random.Generator] = {}
        # Topology cache, keyed on the overlay's mutation epoch: the
        # column chains and children maps only change when the matrix
        # mutates, not every slot.
        self._topo_epoch = -1
        self._server_targets: list[int] = []
        self._peer_children: list[tuple[int, list[int]]] = []

    # ------------------------------------------------------------------

    def role_of(self, node_id: int) -> NodeRole:
        return self.roles.get(node_id, NodeRole.HONEST)

    def recoder_of(self, node_id: int) -> Recoder:
        """The node's buffer/codec state, created on first contact."""
        recoder = self._recoders.get(node_id)
        if recoder is None:
            recoder = Recoder(
                self.params,
                self.generation_count,
                self.streams.get(f"node-{node_id}"),
                node_id=node_id,
            )
            self._recoders[node_id] = recoder
            self._received[node_id] = 0
            self._innovative[node_id] = 0
        return recoder

    def _jammer_rng(self, node_id: int) -> np.random.Generator:
        """Per-node jammer stream, cached off the per-emission path."""
        rng = self._jammer_rngs.get(node_id)
        if rng is None:
            rng = self.streams.get(f"jammer-{node_id}")
            self._jammer_rngs[node_id] = rng
        return rng

    def _jam_packet(self, node_id: int, generation: int) -> CodedPacket:
        """A garbage packet: random coefficients over a random payload.

        The coefficient header *claims* a valid combination, so honest
        receivers cannot distinguish it — the §7 jamming scenario.
        """
        rng = self._jammer_rng(node_id)
        coefficients = rng.integers(0, FIELD_SIZE, size=self.params.generation_size,
                                    dtype=np.uint8)
        if not coefficients.any():
            coefficients[0] = 1
        payload = rng.integers(0, FIELD_SIZE, size=self.params.payload_size,
                               dtype=np.uint8)
        return CodedPacket(generation=generation, coefficients=coefficients,
                           payload=payload, origin=node_id)

    def _refresh_topology(self) -> None:
        """Rebuild the cached chains/children maps if the overlay mutated.

        ``column_chain``/``children_of`` walk the per-column occupancy
        lists; doing that every slot dominated the emit phase.  The cache
        is keyed on the matrix's mutation epoch, so arbitrary churn
        between slots is still picked up immediately.  Failures and
        outages are *not* baked in — they are checked per slot, exactly
        as before.
        """
        matrix = self.net.matrix
        epoch = matrix.mutation_epoch
        if epoch == self._topo_epoch:
            return
        self._topo_epoch = epoch
        # Server: the first occupant of each non-empty column, in column
        # order (columns hanging straight off the rod have no subscriber).
        self._server_targets = []
        for column in range(matrix.k):
            chain = matrix.column_chain(column)
            if chain:
                self._server_targets.append(chain[0])
        # Peers: each node's attached children, in the node and column
        # order the uncached walk used.
        self._peer_children = []
        for node_id in matrix.node_ids:
            children = [
                child
                for child in matrix.children_of(node_id).values()
                if child is not None
            ]
            self._peer_children.append((node_id, children))

    def _emissions(self) -> list[tuple[int, CodedPacket]]:
        """Phase 1: compute every (destination, packet) for this slot."""
        self._refresh_topology()
        failed = self.net.server.failed
        outaged = self.outaged
        sends: list[tuple[int, CodedPacket]] = []
        server_active = (
            self.server_detach_slot is None or self.slot < self.server_detach_slot
        )
        # Server: one packet per column, to the column's first occupant.
        if server_active:
            for target in self._server_targets:
                sends.append((target, self.encoder.emit()))
            self.server_packets += len(self._server_targets)
        # Peers: one mixture per attached outgoing thread.
        for node_id, children in self._peer_children:
            if not children or node_id in failed or node_id in outaged:
                continue
            recoder = self.recoder_of(node_id)
            role = self.role_of(node_id)
            if role is NodeRole.HONEST:
                for child in children:
                    packet = recoder.emit()
                    if packet is not None:
                        sends.append((child, packet))
            elif role is NodeRole.JAMMER:
                jam_rng = self._jammer_rng(node_id)
                for child in children:
                    generation = int(jam_rng.integers(0, self.generation_count))
                    sends.append((child, self._jam_packet(node_id, generation)))
            else:  # NodeRole.ENTROPY_ATTACKER
                for child in children:
                    packet = recoder.emit_trivial()
                    if packet is not None:
                        sends.append((child, packet))
        return sends

    def step(self) -> None:
        """Advance one slot (outage dynamics, emit phase, deliver phase)."""
        if self.outage is not None:
            self.outage.advance(
                self.outaged, self.net.working_nodes, self.streams.get("outage")
            )
        sends = self._emissions()
        failed = self.net.server.failed
        outaged = self.outaged
        # Loss draws are batched into one vectorised RNG call per slot.
        # Only sends whose receiver is alive consume a draw — the same
        # short-circuit (and therefore the same variate stream) as the
        # historical per-send scalar path.
        eligible = [
            destination not in failed and destination not in outaged
            for destination, _ in sends
        ]
        draws = self.loss.delivers_batch(self._loss_rng, sum(eligible))
        delivered_count = 0
        cursor = 0
        for (destination, packet), alive in zip(sends, eligible):
            if not alive:
                continue
            delivered = bool(draws[cursor])
            cursor += 1
            if not delivered:
                continue
            delivered_count += 1
            recoder = self.recoder_of(destination)
            was_innovative = recoder.receive(packet)
            self._received[destination] += 1
            if was_innovative:
                self._innovative[destination] += 1
                if (
                    destination not in self._completed_at
                    and recoder.decoder.is_complete
                ):
                    self._completed_at[destination] = self.slot
        self.link_stats.record_batch(len(sends), delivered_count)
        self.slot += 1

    def detach_server(self, at_slot: Optional[int] = None) -> None:
        """Stop the server's emissions at ``at_slot`` (default: now).

        Models §6's self-sustaining download: once the swarm collectively
        holds every degree of freedom (see :meth:`swarm_has_full_rank`),
        peers can finish the distribution among themselves.
        """
        self.server_detach_slot = self.slot if at_slot is None else at_slot

    def swarm_has_full_rank(self) -> bool:
        """True if the working peers collectively hold all content DoF.

        Checked per generation: the union of the working nodes' coefficient
        bases must span the full generation space.  This is the §6
        self-sustainability condition — once true, the server is
        redundant (in a loss-free network).
        """
        from ..gf.linalg import rank as gf_rank

        failed = self.net.server.failed
        for generation in range(self.generation_count):
            rows = []
            for node_id, recoder in self._recoders.items():
                if node_id in failed or node_id not in self.net.matrix:
                    continue
                decoder = recoder.decoder.generations[generation]
                if decoder.is_complete:
                    rows = None  # someone already decodes: full rank
                    break
                if decoder.rank:
                    rows.append(decoder.coefficient_rows())
            if rows is None:
                continue
            if not rows:
                return False
            if gf_rank(np.concatenate(rows, axis=0)) < self.params.generation_size:
                return False
        return True

    def run(self, slots: int) -> "BroadcastReport":
        """Run ``slots`` more slots and return the cumulative report."""
        for _ in range(slots):
            self.step()
        return self.report()

    def run_until_complete(
        self, max_slots: int = 10_000, nodes: Optional[list[int]] = None
    ) -> "BroadcastReport":
        """Run until every (given or working honest) node decodes.

        Stops at ``max_slots`` regardless; check ``completion_fraction``.
        """
        while self.slot < max_slots:
            targets = nodes if nodes is not None else self._honest_working_nodes()
            if targets and all(t in self._completed_at for t in targets):
                break
            self.step()
        return self.report(nodes)

    def _honest_working_nodes(self) -> list[int]:
        return [
            n for n in self.net.working_nodes
            if self.role_of(n) is NodeRole.HONEST
        ]

    # ------------------------------------------------------------------

    def report(self, nodes: Optional[list[int]] = None) -> BroadcastReport:
        """Build the report for the given nodes (default: working honest)."""
        targets = nodes if nodes is not None else self._honest_working_nodes()
        reports = []
        needed = self.generation_count * self.params.generation_size
        for node_id in targets:
            recoder = self._recoders.get(node_id)
            if recoder is None:
                reports.append(
                    NodeReport(node_id=node_id, rank=0, needed=needed,
                               completed_at=None, received=0, innovative=0,
                               decoded_ok=None)
                )
                continue
            decoded_ok: Optional[bool] = None
            completed = self._completed_at.get(node_id)
            if completed is not None:
                try:
                    decoded_ok = (
                        recoder.decoder.recover(len(self.content)) == self.content
                    )
                except Exception:
                    decoded_ok = False
            reports.append(
                NodeReport(
                    node_id=node_id,
                    rank=recoder.decoder.total_rank,
                    needed=needed,
                    completed_at=completed,
                    received=self._received.get(node_id, 0),
                    innovative=self._innovative.get(node_id, 0),
                    decoded_ok=decoded_ok,
                )
            )
        return BroadcastReport(
            slots=self.slot,
            nodes=reports,
            link_stats=self.link_stats,
            server_packets=self.server_packets,
        )
