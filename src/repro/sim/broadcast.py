"""Slotted packet-level broadcast simulation with RLNC at every node.

The paper's bandwidth model makes time-slotting the natural clock: every
thread carries exactly one unit-size packet per slot.  Each slot proceeds
in two phases so transmissions are simultaneous (a packet received in
slot ``t`` can be remixed no earlier than slot ``t+1``):

1. *emit* — the server pushes one fresh coded packet down each column to
   that column's first occupant; every working node pushes one fresh
   mixture of its current buffer down each of its threads that has a
   child attached.
2. *deliver* — packets cross their thread segments (subject to the loss
   model and the receiver being alive) and enter receiver buffers.

Failure attackers are simply failed nodes; entropy attackers replay
trivial combinations instead of mixing; jammers inject random garbage
that claims to be a valid combination (§7's pollution scenario).

The overlay may be mutated between slots (join/leave/fail/repair) — the
simulator picks up topology changes automatically, which is exactly the
robustness-to-churn property network coding buys.

Since the runtime unification this class is a thin adapter: the slot
kernel lives in :class:`~repro.sim.runtime.SlottedRuntime`, the curtain
edge view in :class:`~repro.sim.runtime.CurtainTopology`, and the
RLNC/attacker node state in :class:`~repro.sim.behaviors.RlncBehavior`.
Seeded runs are golden-tested identical to the pre-unification loop.
"""

from __future__ import annotations

from typing import Optional

from ..coding.generation import GenerationParams
from ..coding.recoder import Recoder
from ..core.overlay import OverlayNetwork
from .behaviors import NodeRole, RlncBehavior
from .links import LinkStats, LossModel, OutageModel
from .report import BroadcastReport, NodeReport, RunReport
from .rng import RngStreams
from .runtime import DEFAULT_MAX_SLOTS, CurtainTopology, SlottedRuntime

__all__ = [
    "BroadcastReport",
    "BroadcastSimulation",
    "NodeReport",
    "NodeRole",
]


class BroadcastSimulation:
    """Run RLNC broadcast over a curtain overlay.

    Args:
        net: The overlay (may be mutated between ``step`` calls).
        content: Bytes the server broadcasts.
        params: Generation geometry.
        seed: Root seed for the simulation's random streams.
        loss: Ergodic per-delivery loss model.
        outage: Ergodic per-node outage model (§2): outaged nodes
            neither send nor receive until they spontaneously recover —
            no complaint, no repair.
        roles: Optional ``node_id -> NodeRole`` for attack experiments.
        systematic: Emit original packets first from the server.
        forward_policy: Engine-level forwarding policy (``"eager"`` /
            ``"innovative"``); see :class:`~repro.sim.behaviors.RlncBehavior`.
        seed_burst: Unconditional packets per edge under the
            ``innovative`` policy.
    """

    def __init__(
        self,
        net: OverlayNetwork,
        content: bytes,
        params: GenerationParams,
        seed: Optional[int] = None,
        loss: Optional[LossModel] = None,
        outage: Optional[OutageModel] = None,
        roles: Optional[dict[int, NodeRole]] = None,
        systematic: bool = False,
        forward_policy: str = "eager",
        seed_burst: int = 1,
    ) -> None:
        self.net = net
        self.content = content
        self.params = params
        self.streams = RngStreams(seed)
        self.behavior = RlncBehavior(
            content, params, self.streams, roles=roles, systematic=systematic,
            forward_policy=forward_policy, seed_burst=seed_burst,
        )
        self.topology = CurtainTopology(net)
        self.runtime = SlottedRuntime(
            self.topology,
            self.behavior,
            streams=self.streams,
            loss=loss,
            outage=outage,
            measured=self._honest_working_nodes,
        )

    # -- delegated state -----------------------------------------------

    @property
    def loss(self) -> LossModel:
        return self.runtime.loss

    @property
    def outage(self) -> Optional[OutageModel]:
        return self.runtime.outage

    @property
    def outaged(self) -> set[int]:
        """Nodes currently in an ergodic outage (silent, not failed)."""
        return self.runtime.outaged

    @property
    def roles(self) -> dict[int, NodeRole]:
        return self.behavior.roles

    @property
    def encoder(self):
        return self.behavior.encoder

    @property
    def generation_count(self) -> int:
        return self.behavior.generation_count

    @property
    def slot(self) -> int:
        return self.runtime.slot

    @property
    def link_stats(self) -> LinkStats:
        return self.runtime.link_stats

    @property
    def server_packets(self) -> int:
        return self.runtime.server_packets

    @property
    def server_detach_slot(self) -> Optional[int]:
        return self.runtime.server_detach_slot

    @server_detach_slot.setter
    def server_detach_slot(self, value: Optional[int]) -> None:
        self.runtime.server_detach_slot = value

    @property
    def _recoders(self) -> dict[int, Recoder]:
        return self.behavior._recoders

    @property
    def _received(self) -> dict[int, int]:
        return self.behavior._received

    @property
    def _innovative(self) -> dict[int, int]:
        return self.behavior._innovative

    @property
    def _completed_at(self) -> dict[int, int]:
        return self.behavior._completed_at

    # -- behaviour pass-throughs ---------------------------------------

    def role_of(self, node_id: int) -> NodeRole:
        return self.behavior.role_of(node_id)

    def recoder_of(self, node_id: int) -> Recoder:
        """The node's buffer/codec state, created on first contact."""
        return self.behavior.recoder_of(node_id)

    # -- running --------------------------------------------------------

    def step(self) -> None:
        """Advance one slot (outage dynamics, emit phase, deliver phase)."""
        self.runtime.step()

    def detach_server(self, at_slot: Optional[int] = None) -> None:
        """Stop the server's emissions at ``at_slot`` (default: now).

        Models §6's self-sustaining download: once the swarm collectively
        holds every degree of freedom (see :meth:`swarm_has_full_rank`),
        peers can finish the distribution among themselves.
        """
        self.runtime.detach_server(at_slot)

    def swarm_has_full_rank(self) -> bool:
        """True if the working peers collectively hold all content DoF."""
        failed = self.net.server.failed
        matrix = self.net.matrix
        return self.behavior.swarm_has_full_rank(
            include=lambda node_id: node_id not in failed and node_id in matrix
        )

    def run(self, slots: int) -> RunReport:
        """Run ``slots`` more slots and return the cumulative report."""
        return self.runtime.run(slots)

    def run_until_complete(
        self, max_slots: int = DEFAULT_MAX_SLOTS, nodes: Optional[list[int]] = None
    ) -> RunReport:
        """Run until every (given or working honest) node decodes.

        Stops at ``max_slots`` regardless; check ``completion_fraction``.
        """
        return self.runtime.run_until_complete(max_slots, nodes)

    def _honest_working_nodes(self) -> list[int]:
        return [
            n for n in self.net.working_nodes
            if self.behavior.role_of(n) is NodeRole.HONEST
        ]

    def report(self, nodes: Optional[list[int]] = None) -> RunReport:
        """Build the report for the given nodes (default: working honest)."""
        return self.runtime.report(nodes)
