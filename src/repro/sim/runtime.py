"""The unified slotted data-plane runtime.

Every simulator in this repo used to hand-roll the same two-phase slot
loop (emit, then deliver) with its own loss accounting and report type.
This module is the single implementation: a :class:`SlottedRuntime`
drives one :class:`Topology` (which says *who sends to whom* each slot)
and one :class:`NodeBehavior` (which says *what* is sent and what
happens on receipt), applying one :class:`~repro.sim.links.LossModel`,
one :class:`~repro.sim.links.OutageModel`, and one
:class:`~repro.sim.links.LinkStats` ledger to all of them.

The slot discipline is the paper's bandwidth model: every edge carries
one unit-size packet per slot, and a packet received in slot ``t`` can
be remixed/forwarded no earlier than slot ``t+1`` — hence the two
phases, with all emissions computed before any delivery lands.

Per-slot order of operations (identical for every topology/behaviour):

1. outage dynamics advance (ergodic, silent, self-recovering);
2. *emit* — walk the topology's ordered edge view; the server emits on
   ``SERVER -> v`` edges while attached, live peers emit on ``u -> v``
   edges (failed or outaged senders idle);
3. *deliver* — one batched Bernoulli loss draw over the sends whose
   receiver is alive, then in-order delivery into receiver state;
4. link accounting and (optionally) a timeline record.

Churn, repair, and attack *schedules* plug in as slot hooks
(:meth:`SlottedRuntime.add_slot_hook`) so any topology can run under any
failure scenario; behavioural attackers (entropy replay, jamming) are
roles inside :class:`~repro.sim.behaviors.RlncBehavior`.

The historical simulator classes (``BroadcastSimulation``,
``GraphBroadcastSimulation``, ``FloodingSimulation``,
``RarestFirstSimulation``) are thin adapters over this runtime and their
seeded runs are golden-tested to be identical to the pre-refactor loops
(``tests/test_runtime_goldens.py``).
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Iterable, Optional, Protocol, Sequence, runtime_checkable

from ..core.matrix import SERVER
from .links import LinkStats, LossModel, OutageModel
from .report import NodeReport, RunReport, SlotRecord
from .rng import RngStreams

__all__ = [
    "DEFAULT_MAX_SLOTS",
    "CurtainTopology",
    "GraphTopology",
    "NodeBehavior",
    "SlottedRuntime",
    "StaticTopology",
    "Topology",
]

#: One cap for every ``run_until_complete`` in the repo.  The historical
#: loops disagreed (5 000 in the graph simulator, 10 000 in the flooding
#: baselines); the larger bound is the safe unification — callers that
#: care about budgets pass ``max_slots`` explicitly.
DEFAULT_MAX_SLOTS = 10_000


@runtime_checkable
class Topology(Protocol):
    """An edges-per-slot view of an overlay.

    The runtime is completely topology-agnostic: it only ever asks for
    the ordered directed edge list of the current slot (``SERVER`` as a
    source marks server emissions), the set of (non-ergodically) failed
    nodes, and node populations for outage dynamics and reporting.
    Implementations may cache — the edge list is re-requested every
    slot, so mutation between slots is picked up automatically.
    """

    def edges(self) -> Sequence[tuple[int, int]]:
        """Ordered ``(sender, receiver)`` pairs for this slot."""
        ...

    def failed_nodes(self) -> frozenset[int]:
        """Nodes that neither send nor receive until repaired."""
        ...

    def live_nodes(self) -> list[int]:
        """Current non-failed population (outage dynamics domain)."""
        ...

    def measured_nodes(self) -> list[int]:
        """Default set of nodes a report covers."""
        ...


class CurtainTopology:
    """Edge view of the paper's curtain-rod overlay (§3–§5).

    The server feeds the first occupant of each non-empty column; every
    occupant feeds the next occupant down each of its threads.  The edge
    list is cached on the matrix's mutation epoch — walking the
    per-column occupancy chains dominated the emit phase before PR 1 —
    so arbitrary churn between slots is still picked up immediately.
    """

    def __init__(self, net) -> None:
        self.net = net
        self._epoch = -1
        self._edges: list[tuple[int, int]] = []

    def edges(self) -> list[tuple[int, int]]:
        matrix = self.net.matrix
        epoch = matrix.mutation_epoch
        if epoch != self._epoch:
            self._epoch = epoch
            edges: list[tuple[int, int]] = []
            for column in range(matrix.k):
                chain = matrix.column_chain(column)
                if chain:
                    edges.append((SERVER, chain[0]))
            for node_id in matrix.node_ids:
                for child in matrix.children_of(node_id).values():
                    if child is not None:
                        edges.append((node_id, child))
            self._edges = edges
        return self._edges

    def failed_nodes(self) -> frozenset[int]:
        return self.net.server.failed

    def live_nodes(self) -> list[int]:
        return self.net.working_nodes

    def measured_nodes(self) -> list[int]:
        return self.net.working_nodes


class GraphTopology:
    """Edge view of the §6 random-graph (cyclic) overlay.

    The overlay's edge multiset *is* the slot schedule; unserved server
    slots (``(u, None)``) idle.  No failure model: the §6 construction
    repairs by re-splicing, which the overlay applies structurally.
    """

    def __init__(self, overlay) -> None:
        self.overlay = overlay

    def edges(self) -> list[tuple[int, int]]:
        return [(u, v) for (u, v) in self.overlay.edges if v is not None]

    def failed_nodes(self) -> frozenset[int]:
        return frozenset()

    def live_nodes(self) -> list[int]:
        return sorted(self.overlay.nodes)

    def measured_nodes(self) -> list[int]:
        return sorted(self.overlay.nodes)


class StaticTopology:
    """A fixed explicit edge list (chains, striped trees, ad-hoc DAGs).

    Gives the comparison baselines that are defined directly as graphs a
    way onto the shared data plane without inventing an overlay class.
    Failures may be injected/repaired between slots.
    """

    def __init__(self, edges: Iterable[tuple[int, int]],
                 nodes: Optional[Iterable[int]] = None) -> None:
        self._edges = list(edges)
        inferred = {v for _, v in self._edges}
        inferred.update(u for u, _ in self._edges if u != SERVER)
        self._nodes = sorted(inferred if nodes is None else set(nodes))
        self._failed: set[int] = set()

    def edges(self) -> list[tuple[int, int]]:
        return self._edges

    def fail(self, node_id: int) -> None:
        self._failed.add(node_id)

    def repair(self, node_id: int) -> None:
        self._failed.discard(node_id)

    def failed_nodes(self) -> frozenset[int]:
        return frozenset(self._failed)

    def live_nodes(self) -> list[int]:
        return [n for n in self._nodes if n not in self._failed]

    def measured_nodes(self) -> list[int]:
        return [n for n in self._nodes if n not in self._failed]


@runtime_checkable
class NodeBehavior(Protocol):
    """What nodes put on the wire and do with what arrives.

    Payloads are opaque to the runtime (RLNC :class:`CodedPacket`,
    integer piece indices, …).  Returning ``None`` from an emit means
    the edge idles this slot (empty buffer, exhausted source).
    """

    def server_emit(self, destination: int) -> Optional[object]:
        """Payload for a ``SERVER -> destination`` edge."""
        ...

    def emit(self, sender: int, destination: int) -> Optional[object]:
        """Payload a live peer puts on one outgoing edge."""
        ...

    def deliver(self, destination: int, payload: object, slot: int) -> None:
        """Apply one successful delivery to the receiver's state."""
        ...

    def completed_at(self) -> dict[int, int]:
        """Live ``node -> completion slot`` mapping."""
        ...

    def node_report(self, node_id: int) -> NodeReport:
        """Report row for one node (zeros if it was never contacted)."""
        ...


class SlottedRuntime:
    """One two-phase slotted kernel for every topology × behaviour.

    Args:
        topology: Who sends to whom each slot.
        behavior: What is sent and how receipts update node state.
        streams: Shared named RNG streams (or pass ``seed`` to create).
        seed: Root seed, used only when ``streams`` is not given.
        loss: Ergodic per-delivery loss model.
        outage: Ergodic per-node outage model (§2): outaged nodes
            neither send nor receive until they spontaneously recover.
        measured: Override for the default report/termination node set
            (e.g. "working honest nodes" for attack experiments).
        record_timeline: Keep a per-slot :class:`SlotRecord` trace in
            :attr:`timeline` (and in reports).
    """

    def __init__(
        self,
        topology: Topology,
        behavior: NodeBehavior,
        *,
        streams: Optional[RngStreams] = None,
        seed: Optional[int] = None,
        loss: Optional[LossModel] = None,
        outage: Optional[OutageModel] = None,
        measured: Optional[Callable[[], list[int]]] = None,
        record_timeline: bool = False,
    ) -> None:
        self.topology = topology
        self.behavior = behavior
        self.streams = streams if streams is not None else RngStreams(seed)
        self.loss = loss or LossModel(0.0)
        self.outage = outage
        #: Nodes currently in an ergodic outage (silent, not failed).
        self.outaged: set[int] = set()
        self.slot = 0
        self.link_stats = LinkStats()
        self.server_packets = 0
        #: When set, the server stops emitting at this slot (§6: the
        #: server may disconnect once the swarm is self-sustaining).
        self.server_detach_slot: Optional[int] = None
        self.record_timeline = record_timeline
        self.timeline: list[SlotRecord] = []
        self._measured = measured
        self._slot_hooks: list[Callable[["SlottedRuntime"], None]] = []
        self._loss_rng = self.streams.get("loss")
        #: Instrumentation is opt-in (:meth:`attach_obs`); unattached,
        #: the slot loop pays one attribute check per step.
        self._obs_slot_seconds = None
        self._obs_slots = None
        self._obs_attempted = None
        self._obs_delivered = None

    def attach_obs(self, registry) -> None:
        """Expose slot-loop timing and delivery/innovation rates.

        ``registry`` is a :class:`repro.obs.Registry` (duck-typed — the
        simulator never imports ``repro.obs``).  Timing costs two
        ``perf_counter`` calls per slot, counters one attribute bump
        each; the rate gauges are callbacks evaluated only at snapshot
        time.  Nothing here touches an RNG stream, so seeded runs are
        byte-identical with or without instrumentation.
        """
        self._obs_slot_seconds = registry.histogram(
            "sim.slot_seconds", "wall-clock time of one slot step",
        )
        self._obs_slots = registry.counter("sim.slots", "slots stepped")
        self._obs_attempted = registry.counter(
            "sim.sends_attempted", "edge sends attempted",
        )
        self._obs_delivered = registry.counter(
            "sim.sends_delivered", "edge sends delivered",
        )
        registry.gauge(
            "sim.server_packets", "source emissions so far",
            fn=lambda: self.server_packets,
        )
        registry.gauge(
            "sim.completed_nodes", "nodes that fully decoded",
            fn=lambda: len(self.behavior.completed_at()),
        )
        registry.gauge(
            "sim.delivery_ratio", "delivered / attempted sends",
            fn=lambda: self.link_stats.delivery_ratio,
        )
        registry.gauge(
            "sim.innovative_ratio",
            "rank-increasing fraction of delivered packets (measured nodes)",
            fn=self._innovative_ratio,
        )

    def _innovative_ratio(self) -> float:
        reports = [
            self.behavior.node_report(node_id)
            for node_id in self.measured_nodes()
        ]
        received = sum(r.received for r in reports)
        if received == 0:
            return 0.0
        return sum(r.innovative for r in reports) / received

    # -- scheduling hooks ----------------------------------------------

    def add_slot_hook(self, hook: Callable[["SlottedRuntime"], None]) -> None:
        """Register a callable invoked before each driven slot.

        Hooks run inside :meth:`run`/:meth:`run_until_complete` (not on
        bare :meth:`step`, whose callers own their own schedule) and are
        where churn, repair sweeps, and attack onset live — the runtime
        picks up the mutated topology on the next edge walk.
        """
        self._slot_hooks.append(hook)

    # -- server lifecycle ----------------------------------------------

    @property
    def server_active(self) -> bool:
        return self.server_detach_slot is None or self.slot < self.server_detach_slot

    def detach_server(self, at_slot: Optional[int] = None) -> None:
        """Stop the server's emissions at ``at_slot`` (default: now)."""
        self.server_detach_slot = self.slot if at_slot is None else at_slot

    # -- the kernel -----------------------------------------------------

    def measured_nodes(self) -> list[int]:
        """The node set reports and completion checks run over."""
        if self._measured is not None:
            return self._measured()
        return self.topology.measured_nodes()

    def step(self) -> None:
        """Advance one slot (outage dynamics, emit phase, deliver phase)."""
        timing = self._obs_slot_seconds
        started = perf_counter() if timing is not None else 0.0
        if self.outage is not None:
            self.outage.advance(
                self.outaged, self.topology.live_nodes(), self.streams.get("outage")
            )
        failed = self.topology.failed_nodes()
        outaged = self.outaged
        behavior = self.behavior
        server_active = self.server_active
        sends: list[tuple[int, object]] = []
        for sender, destination in self.topology.edges():
            if sender == SERVER:
                if not server_active:
                    continue
                payload = behavior.server_emit(destination)
                if payload is None:
                    continue
                sends.append((destination, payload))
                self.server_packets += 1
            else:
                if sender in failed or sender in outaged:
                    continue
                payload = behavior.emit(sender, destination)
                if payload is not None:
                    sends.append((destination, payload))
        # Loss draws are batched into one vectorised RNG call per slot.
        # Only sends whose receiver is alive consume a draw — the same
        # short-circuit (and therefore the same variate stream) as a
        # per-send scalar path.
        eligible = [
            destination not in failed and destination not in outaged
            for destination, _ in sends
        ]
        draws = self.loss.delivers_batch(self._loss_rng, sum(eligible))
        delivered_count = 0
        cursor = 0
        for (destination, payload), alive in zip(sends, eligible):
            if not alive:
                continue
            delivered = bool(draws[cursor])
            cursor += 1
            if not delivered:
                continue
            delivered_count += 1
            behavior.deliver(destination, payload, self.slot)
        self.link_stats.record_batch(len(sends), delivered_count)
        if self.record_timeline:
            completions = sum(
                1 for at in self.behavior.completed_at().values() if at == self.slot
            )
            self.timeline.append(
                SlotRecord(
                    slot=self.slot,
                    attempted=len(sends),
                    delivered=delivered_count,
                    completions=completions,
                )
            )
        self.slot += 1
        if timing is not None:
            timing.observe(perf_counter() - started)
            self._obs_slots.inc()
            self._obs_attempted.inc(len(sends))
            self._obs_delivered.inc(delivered_count)

    def run(self, slots: int) -> RunReport:
        """Run ``slots`` more slots and return the cumulative report."""
        for _ in range(slots):
            for hook in self._slot_hooks:
                hook(self)
            self.step()
        return self.report()

    def run_until_complete(
        self,
        max_slots: int = DEFAULT_MAX_SLOTS,
        nodes: Optional[list[int]] = None,
    ) -> RunReport:
        """Run until every measured (or given) node completes.

        Stops at ``max_slots`` regardless; check ``completion_fraction``
        on the report.
        """
        completed = self.behavior.completed_at()
        while self.slot < max_slots:
            targets = nodes if nodes is not None else self.measured_nodes()
            if targets and all(t in completed for t in targets):
                break
            for hook in self._slot_hooks:
                hook(self)
            self.step()
        return self.report(nodes)

    # -- reporting ------------------------------------------------------

    def report(self, nodes: Optional[list[int]] = None) -> RunReport:
        """Build the unified report for the given nodes (default: measured)."""
        targets = nodes if nodes is not None else self.measured_nodes()
        return RunReport(
            slots=self.slot,
            nodes=[self.behavior.node_report(node_id) for node_id in targets],
            link_stats=self.link_stats,
            server_packets=self.server_packets,
            timeline=list(self.timeline),
        )
