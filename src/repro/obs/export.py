"""Exporters: versioned JSON snapshots and Prometheus text format.

One snapshot shape serves every surface — the ``--stats-json`` file a
node writes on exit, the ``/metrics.json`` endpoint a scraper polls,
the ``repro stats`` table renderer, and the CI schema gate::

    {
      "schema": "repro.obs/1",
      "registries": {
        "<registry>": {
          "counters":   {"<name>": <int>},
          "gauges":     {"<name>": <number>},
          "histograms": {"<name>": {"bounds": [...],
                                    "bucket_counts": [...],
                                    "count": <int>, "sum": <number>}}
        }
      }
    }

The schema string is versioned; consumers reject what they don't
recognise instead of guessing.  :func:`validate_snapshot` is the one
validator everything (tests, CI, the stats subcommand) shares.

The Prometheus rendering is the text exposition format: instrument
names are sanitised into ``repro_<name>`` metrics, the owning registry
becomes a ``registry`` label, and histograms emit cumulative
``_bucket``/``_sum``/``_count`` series.
"""

from __future__ import annotations

import json
import re
from typing import Mapping, Union

from .registry import Registry

__all__ = [
    "SCHEMA",
    "prometheus_text",
    "snapshot_json",
    "snapshot_obj",
    "validate_snapshot",
]

#: Version tag stamped into (and required of) every snapshot.
SCHEMA = "repro.obs/1"

_KINDS = ("counters", "gauges", "histograms")

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def snapshot_obj(
    registries: Union[Registry, Mapping[str, Registry]],
) -> dict:
    """Snapshot one registry (keyed by its own name) or a mapping."""
    if isinstance(registries, Registry):
        registries = {registries.name: registries}
    return {
        "schema": SCHEMA,
        "registries": {
            name: registry.snapshot() for name, registry in registries.items()
        },
    }


def snapshot_json(
    registries: Union[Registry, Mapping[str, Registry]], indent: int = 2,
) -> str:
    """The JSON text of :func:`snapshot_obj` (sorted, newline-closed)."""
    return json.dumps(snapshot_obj(registries), indent=indent, sort_keys=True) + "\n"


def validate_snapshot(obj: object) -> list[str]:
    """Every way ``obj`` fails the snapshot schema (empty = valid)."""
    errors: list[str] = []
    if not isinstance(obj, dict):
        return [f"snapshot must be an object, got {type(obj).__name__}"]
    if obj.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA!r}, got {obj.get('schema')!r}")
    registries = obj.get("registries")
    if not isinstance(registries, dict):
        errors.append("registries must be an object")
        return errors
    for reg_name, sections in registries.items():
        where = f"registries[{reg_name!r}]"
        if not isinstance(sections, dict):
            errors.append(f"{where} must be an object")
            continue
        if sorted(sections) != sorted(_KINDS):
            errors.append(f"{where} must have exactly the sections {_KINDS}")
            continue
        for name, value in sections["counters"].items():
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                errors.append(
                    f"{where} counter {name!r} must be a non-negative int"
                )
        for name, value in sections["gauges"].items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors.append(f"{where} gauge {name!r} must be a number")
        for name, value in sections["histograms"].items():
            errors.extend(
                f"{where} histogram {name!r}: {problem}"
                for problem in _histogram_problems(value)
            )
    return errors


def _histogram_problems(value: object) -> list[str]:
    if not isinstance(value, dict):
        return ["must be an object"]
    problems = []
    bounds = value.get("bounds")
    counts = value.get("bucket_counts")
    if not isinstance(bounds, list) or not all(
        isinstance(b, (int, float)) and not isinstance(b, bool) for b in bounds
    ):
        problems.append("bounds must be a list of numbers")
    if not isinstance(counts, list) or not all(
        isinstance(c, int) and not isinstance(c, bool) and c >= 0 for c in counts
    ):
        problems.append("bucket_counts must be a list of non-negative ints")
    elif isinstance(bounds, list) and len(counts) != len(bounds) + 1:
        problems.append("bucket_counts must have len(bounds) + 1 entries")
    count = value.get("count")
    if not isinstance(count, int) or isinstance(count, bool) or count < 0:
        problems.append("count must be a non-negative int")
    elif isinstance(counts, list) and all(isinstance(c, int) for c in counts) \
            and sum(counts) != count:
        problems.append("bucket_counts must sum to count")
    if not isinstance(value.get("sum"), (int, float)) \
            or isinstance(value.get("sum"), bool):
        problems.append("sum must be a number")
    return problems


# ----------------------------------------------------------------------
# Prometheus text exposition


def _metric_name(name: str) -> str:
    return "repro_" + _NAME_OK.sub("_", name)


def _fmt(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def prometheus_text(
    registries: Union[Registry, Mapping[str, Registry], dict],
) -> str:
    """Render registries (or an existing snapshot) as Prometheus text."""
    if isinstance(registries, dict) and registries.get("schema") == SCHEMA:
        snapshot = registries
    else:
        snapshot = snapshot_obj(registries)
    lines: list[str] = []
    typed: set[str] = set()

    def declare(metric: str, kind: str) -> None:
        if metric not in typed:
            typed.add(metric)
            lines.append(f"# TYPE {metric} {kind}")

    for reg_name in sorted(snapshot["registries"]):
        sections = snapshot["registries"][reg_name]
        label = f'{{registry="{reg_name}"}}'
        for kind, section_name in (("counter", "counters"), ("gauge", "gauges")):
            for name in sorted(sections[section_name]):
                metric = _metric_name(name)
                declare(metric, kind)
                value = sections[section_name][name]
                lines.append(f"{metric}{label} {_fmt(value)}")
        for name in sorted(sections["histograms"]):
            metric = _metric_name(name)
            declare(metric, "histogram")
            histogram = sections["histograms"][name]
            cumulative = 0
            for bound, bucket in zip(
                histogram["bounds"], histogram["bucket_counts"]
            ):
                cumulative += bucket
                lines.append(
                    f'{metric}_bucket{{registry="{reg_name}",le="{_fmt(bound)}"}}'
                    f" {cumulative}"
                )
            lines.append(
                f'{metric}_bucket{{registry="{reg_name}",le="+Inf"}}'
                f" {histogram['count']}"
            )
            lines.append(f"{metric}_sum{label} {_fmt(histogram['sum'])}")
            lines.append(f"{metric}_count{label} {histogram['count']}")
    return "\n".join(lines) + "\n"
