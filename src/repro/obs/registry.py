"""Named instrument registries: counters, gauges, histograms.

The hot-path contract is the whole design: an increment is one Python
attribute bump on a pre-bound instrument object — no dict lookup, no
lock, no string formatting.  Everything expensive (callback gauges,
bucket summaries, name sorting) happens at *snapshot* time, which runs
on demand when an exporter scrapes or a run folds its report.

The module is part of the sans-IO observability core: it imports
nothing but the stdlib (``tools/check_layering.py`` enforces this), so
the protocol engines, the slotted simulator, and the live transport
all hang the same instruments off the same :class:`Registry`.

Concurrency: instruments are safe on the asyncio single-thread path by
construction (one bytecode-level ``+=`` per increment, no compound
read-modify-write across awaits).  They are *not* cross-thread
precise; the repo's runtime is single-threaded per node, so precision
is not bought with locks.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Iterable, Optional, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "POW2_LATENCY_BOUNDS",
    "Registry",
    "pow2_bounds",
]


def pow2_bounds(base: float, count: int) -> tuple[float, ...]:
    """``count`` power-of-two bucket bounds starting at ``base``.

    ``pow2_bounds(1e-6, 4)`` is ``(1e-06, 2e-06, 4e-06, 8e-06)``; a
    histogram built on it adds one implicit +Inf overflow bucket.
    """
    if base <= 0:
        raise ValueError("base bound must be positive")
    if count < 1:
        raise ValueError("need at least one bound")
    return tuple(base * (1 << i) for i in range(count))


#: Default latency bounds: 1 µs to ~4 s in power-of-two steps (23
#: buckets, plus the implicit overflow bucket).  Wide enough for both a
#: simulator slot and a straggling network round-trip.
POW2_LATENCY_BOUNDS = pow2_bounds(1e-6, 23)


class Counter:
    """A monotonically increasing count.

    ``inc`` is the hot-path entry point; callers hold the instrument
    object directly so the increment is a single attribute bump.
    """

    __slots__ = ("name", "help", "value")

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot_value(self) -> Union[int, float]:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A value that can go up, down, or be computed on read.

    A gauge either holds a value (``set``/``inc``/``dec``) or is bound
    to a zero-argument callback (``bind``) evaluated at snapshot time —
    the snapshot-on-read idiom that keeps queue depths, pool occupancy,
    and rank progress observable with zero hot-path cost.
    """

    __slots__ = ("name", "help", "value", "_fn")

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def bind(self, fn: Callable[[], float]) -> "Gauge":
        """Evaluate ``fn`` at snapshot time instead of storing a value.

        Re-binding replaces the previous callback (a reconnected child
        rebinds its queue-depth gauge to the new pump).
        """
        self._fn = fn
        return self

    def snapshot_value(self) -> float:
        if self._fn is not None:
            return self._fn()
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        return f"Gauge({self.name}={self.snapshot_value()})"


class Histogram:
    """Fixed-bucket histogram with cumulative-``le`` semantics.

    Buckets are fixed at construction (power-of-two latency bounds by
    default) so ``observe`` is one :func:`bisect.bisect_left` plus two
    attribute bumps — no allocation, no rebucketing.  An observation
    equal to a bound lands in that bound's bucket (``value <= le``,
    Prometheus semantics); anything above the last bound lands in the
    implicit overflow bucket.
    """

    __slots__ = ("name", "help", "bounds", "bucket_counts", "count", "sum")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        bounds: Iterable[float] = POW2_LATENCY_BOUNDS,
    ) -> None:
        self.name = name
        self.help = help
        self.bounds = tuple(float(b) for b in bounds)
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        #: Per-bucket observation counts; the extra last slot is the
        #: +Inf overflow bucket.
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.bucket_counts[bisect_left(self.bounds, value)] += 1

    def snapshot_value(self) -> dict:
        """Stable summary: bounds, per-bucket counts, count, sum."""
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
        }

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        return f"Histogram({self.name} n={self.count} sum={self.sum})"


Instrument = Union[Counter, Gauge, Histogram]


class Registry:
    """A named bag of instruments with one-shot snapshotting.

    Instrument constructors are idempotent: asking for an existing name
    returns the existing instrument (asking for it with a different
    *kind* is an error).  Drivers therefore wire instruments
    opportunistically without coordinating ownership.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._instruments: dict[str, Instrument] = {}

    # -- construction ---------------------------------------------------

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Instrument:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"instrument {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}"
                )
            return existing
        instrument = cls(name, help, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(
        self, name: str, help: str = "",
        fn: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        gauge = self._get_or_create(Gauge, name, help)
        if fn is not None:
            gauge.bind(fn)
        return gauge

    def histogram(
        self, name: str, help: str = "",
        bounds: Iterable[float] = POW2_LATENCY_BOUNDS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, bounds=bounds)

    # -- introspection --------------------------------------------------

    def instruments(self) -> list[Instrument]:
        """Every registered instrument, in name order."""
        return [self._instruments[name] for name in sorted(self._instruments)]

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> dict:
        """One consistent read of every instrument.

        Counters and gauges flatten to numbers; histograms to their
        bounds/counts summary.  Callback gauges are evaluated here —
        this is the only place they run.
        """
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            out[instrument.kind + "s"][name] = instrument.snapshot_value()
        return out
