"""Instrument bundles: pre-bound counters/gauges for each layer.

The engines stay observability-agnostic: they expose an ``obs``
attribute (``None`` by default) and call ``obs.record_step(event,
effects)`` after each dispatch.  The classification — which effect
means a join, a repair, a probe — lives *here*, next to the protocol
vocabulary it reads, so ``repro.protocol`` never imports ``repro.obs``
and the layering contract holds in both directions (this module may
import the protocol vocabulary because the protocol core is itself
sans-IO).

Everything else in this module is snapshot-on-read binding: stats
dataclasses the transports already keep (``SenderStats``, ``PoolStats``,
per-node ``ServerStats``/``PeerStats``) become callback gauges that
read the live object only when an exporter scrapes.  The hot paths
keep bumping their plain dataclass fields; observability costs nothing
until somebody looks.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from ..dataplane.effects import (
    EmitToChildren,
    Ingested,
    MarkComplete,
)
from ..dataplane.events import IdlePoll
from ..protocol.effects import (
    Admitted,
    Backoff,
    Clip,
    ComplaintNoted,
    PeerDeparted,
    Send,
)
from ..protocol.events import MessageReceived
from ..protocol.messages import (
    ComplaintMsg,
    CongestionDrop,
    CongestionRestore,
    KeepAlive,
    Probe,
    ProbeAck,
)
from .registry import Registry

__all__ = [
    "DataplaneInstruments",
    "PeerEngineInstruments",
    "ServerEngineInstruments",
    "bind_fields",
    "bind_pool",
    "bind_sender_totals",
]


def bind_fields(
    registry: Registry,
    obj: object,
    fields: Iterable[str],
    prefix: str,
    help: str = "",
) -> None:
    """Expose ``obj.<field>`` for each field as a callback gauge.

    The one-liner that folds any stats dataclass into a registry:
    the object keeps being mutated by its owner; the gauge reads it
    at snapshot time.
    """
    for field in fields:
        registry.gauge(
            f"{prefix}.{field}", help,
            fn=lambda o=obj, f=field: getattr(o, f),
        )


def bind_pool(
    registry: Registry, pool, prefix: str = "coding.pool",
) -> None:
    """Fold a :class:`repro.coding.buffers.BufferPool` into gauges."""
    bind_fields(
        registry, pool.stats,
        ("leases", "allocations", "reuses", "releases", "discarded"),
        prefix, "buffer pool accounting",
    )
    registry.gauge(
        f"{prefix}.idle", "buffers parked in the pool", fn=pool.idle_buffers,
    )


def bind_sender_totals(
    registry: Registry,
    senders: Callable[[], Sequence],
    prefix: str = "net.sender",
) -> None:
    """Aggregate live ``SenderStats`` across a dynamic pump set.

    ``senders`` is a callable returning the *current* stats objects
    (pumps come and go with reconnects); each total is summed at
    snapshot time.
    """
    for field in (
        "enqueued", "dropped", "sent", "keepalives", "bytes_sent", "flushes",
    ):
        registry.gauge(
            f"{prefix}.{field}", "summed across live outbound pumps",
            fn=lambda f=field: sum(getattr(s, f) for s in senders()),
        )


class ServerEngineInstruments:
    """Protocol-level counters for one :class:`ServerEngine`.

    ``attach`` hangs the bundle on the engine (``engine.obs = self``)
    and binds state-size gauges to the engine's own dicts/sets; the
    engine then calls :meth:`record_step` once per handled event.
    """

    __slots__ = (
        "events", "effects", "joins", "leaves", "crashes",
        "probes_sent", "episodes_opened",
        "congestion_drops", "congestion_restores",
    )

    def __init__(self, registry: Registry) -> None:
        counter = registry.counter
        self.events = counter("engine.events", "events handled")
        self.effects = counter("engine.effects", "effects emitted")
        self.joins = counter("engine.joins", "peers admitted")
        self.leaves = counter("engine.leaves", "graceful good-byes")
        self.crashes = counter("engine.crashes", "crash splices (repairs)")
        self.probes_sent = counter("engine.probes_sent", "probes dispatched")
        self.episodes_opened = counter(
            "engine.episodes_opened", "failure episodes opened by a complaint",
        )
        self.congestion_drops = counter(
            "engine.congestion_drops", "§5 threads shed from congested nodes",
        )
        self.congestion_restores = counter(
            "engine.congestion_restores", "§5 threads handed back",
        )

    def attach(self, engine, registry: Registry) -> "ServerEngineInstruments":
        engine.obs = self
        registry.gauge(
            "engine.open_episodes", "complained, not yet repaired",
            fn=lambda: len(engine._open_episodes),
        )
        registry.gauge(
            "engine.pending_probes", "probes awaiting ack or timeout",
            fn=lambda: len(engine.pending_probes),
        )
        registry.gauge(
            "engine.departed", "peers ever spliced or left",
            fn=lambda: len(engine.departed),
        )
        registry.gauge(
            "engine.population", "peers currently registered",
            fn=lambda: len(engine.core.registry) - len(engine.departed),
        )
        return self

    def record_step(self, event, effects) -> None:
        self.events.inc()
        self.effects.inc(len(effects))
        if effects and isinstance(event, MessageReceived):
            message = event.message
            if isinstance(message, CongestionDrop):
                self.congestion_drops.inc()
            elif isinstance(message, CongestionRestore):
                self.congestion_restores.inc()
        for effect in effects:
            if isinstance(effect, Admitted):
                self.joins.inc()
            elif isinstance(effect, PeerDeparted):
                if effect.reason == "leave":
                    self.leaves.inc()
                else:
                    self.crashes.inc()
            elif isinstance(effect, ComplaintNoted):
                self.episodes_opened.inc()
            elif isinstance(effect, Send) and isinstance(effect.message, Probe):
                self.probes_sent.inc()


class DataplaneInstruments:
    """Data-plane counters for one :class:`~repro.dataplane.RelayEngine`
    or :class:`~repro.dataplane.SourceEngine`.

    The received/innovative/forwarded classification that used to be
    hand-maintained in ``PeerStats`` and ``RlncBehavior`` happens here,
    once, off the engine's event/effect stream: ``Ingested`` effects
    are arrivals through the receive gate, ``EmitToChildren`` carries
    its mixture count (idle fills — emissions answering an ``IdlePoll``
    — are classified separately), ``MarkComplete`` is the decode.
    """

    __slots__ = (
        "events", "effects", "packets_in", "innovative_in",
        "mixtures_out", "idle_fills", "completions",
    )

    def __init__(self, registry: Registry, prefix: str = "dataplane") -> None:
        counter = registry.counter
        self.events = counter(f"{prefix}.events", "data-plane events handled")
        self.effects = counter(f"{prefix}.effects", "data-plane effects emitted")
        self.packets_in = counter(
            f"{prefix}.packets_in", "packets through the receive gate",
        )
        self.innovative_in = counter(
            f"{prefix}.innovative_in", "rank-raising arrivals",
        )
        self.mixtures_out = counter(
            f"{prefix}.mixtures_out", "fresh mixtures emitted toward children",
        )
        self.idle_fills = counter(
            f"{prefix}.idle_fills", "data-bearing keep-alive substitutes",
        )
        self.completions = counter(
            f"{prefix}.completions", "full decodes marked",
        )

    def attach(self, engine, registry: Registry,
               prefix: str = "dataplane") -> "DataplaneInstruments":
        engine.obs = self
        if hasattr(engine, "rank"):
            registry.gauge(
                f"{prefix}.rank", "degrees of freedom collected",
                fn=lambda: engine.rank,
            )
            registry.gauge(
                f"{prefix}.children", "children in the fan-out list",
                fn=lambda: len(engine.children),
            )
        else:
            registry.gauge(
                f"{prefix}.rounds", "emission rounds scheduled",
                fn=lambda: engine.rounds,
            )
        return self

    def record_step(self, event, effects) -> None:
        self.events.inc()
        self.effects.inc(len(effects))
        idle = isinstance(event, IdlePoll)
        for effect in effects:
            if isinstance(effect, Ingested):
                self.packets_in.inc()
                if effect.innovative:
                    self.innovative_in.inc()
            elif isinstance(effect, EmitToChildren):
                if idle:
                    self.idle_fills.inc(effect.count)
                else:
                    self.mixtures_out.inc(effect.count)
            elif isinstance(effect, MarkComplete):
                self.completions.inc()


class PeerEngineInstruments:
    """Protocol-level counters for one :class:`PeerEngine`.

    ``complaints_suppressed`` is special: the engine bumps it directly
    from the one-complaint-per-episode rule (the suppression leaves no
    effect to classify), every other counter derives from the
    event/effect stream in :meth:`record_step`.
    """

    __slots__ = (
        "events", "effects", "clips", "backoffs",
        "complaints_sent", "complaints_suppressed",
        "keepalives_sent", "probe_acks",
    )

    def __init__(self, registry: Registry) -> None:
        counter = registry.counter
        self.events = counter("engine.events", "events handled")
        self.effects = counter("engine.effects", "effects emitted")
        self.clips = counter("engine.clips", "upstream (re)clips")
        self.backoffs = counter("engine.backoffs", "reconnect backoff steps")
        self.complaints_sent = counter(
            "engine.complaints_sent", "complaints dispatched to the server",
        )
        self.complaints_suppressed = counter(
            "engine.complaints_suppressed",
            "complaints withheld by the one-per-episode rule",
        )
        self.keepalives_sent = counter(
            "engine.keepalives_sent", "keep-alives emitted to children",
        )
        self.probe_acks = counter("engine.probe_acks", "probes answered")

    def attach(self, engine, registry: Registry) -> "PeerEngineInstruments":
        engine.obs = self
        registry.gauge(
            "engine.threads", "columns with a live parent",
            fn=lambda: len(engine.parents),
        )
        registry.gauge(
            "engine.children", "columns with a downstream child",
            fn=lambda: len(engine.children),
        )
        return self

    def record_step(self, event, effects) -> None:
        self.events.inc()
        self.effects.inc(len(effects))
        for effect in effects:
            if isinstance(effect, Clip):
                self.clips.inc()
            elif isinstance(effect, Backoff):
                self.backoffs.inc()
            elif isinstance(effect, Send):
                message = effect.message
                if isinstance(message, ComplaintMsg):
                    self.complaints_sent.inc()
                elif isinstance(message, KeepAlive):
                    self.keepalives_sent.inc()
                elif isinstance(message, ProbeAck):
                    self.probe_acks.inc()
