"""Asyncio surfaces: the scrape endpoint and the periodic sampler.

This is the only ``repro.obs`` module allowed to import asyncio — the
layering check exempts it by name.  Everything it serves comes from a
*provider*: a zero-argument callable returning the snapshot object of
:func:`repro.obs.export.snapshot_obj`, so the server knows nothing
about registries, nodes, or who owns what.

:class:`MetricsServer` is a deliberately tiny HTTP/1.0-style endpoint
on :func:`asyncio.start_server` (no ``http.server`` thread, no route
framework): ``GET /metrics`` answers Prometheus text, ``GET
/metrics.json`` (or ``/``) the JSON snapshot.  Anything else is 404.
One scrape = one connection = one response; the writer closes after
answering, which is all a scraper needs.
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from typing import Callable, Optional

from .export import prometheus_text

__all__ = ["MetricsServer", "PeriodicSampler"]

#: Returns a snapshot object (``snapshot_obj`` shape) on demand.
SnapshotProvider = Callable[[], dict]

_MAX_REQUEST_BYTES = 8192


class MetricsServer:
    """Serve live snapshots over HTTP for scrapers and curl.

    Args:
        provider: Called once per request for a fresh snapshot.
        host: Bind address (loopback by default — metrics are not
            meant to face the open network).
        port: TCP port; 0 picks a free one (read :attr:`port` after
            :meth:`start`).
    """

    def __init__(
        self,
        provider: SnapshotProvider,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._provider = provider
        self._host = host
        self._requested_port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self.port: Optional[int] = None

    async def start(self) -> "MetricsServer":
        self._server = await asyncio.start_server(
            self._handle, self._host, self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
    ) -> None:
        try:
            request = await reader.readline()
            if len(request) > _MAX_REQUEST_BYTES:
                raise ValueError("request line too long")
            # Drain headers so well-behaved clients see a clean close.
            while True:
                line = await reader.readline()
                if line in (b"", b"\r\n", b"\n"):
                    break
            writer.write(self._respond(request.decode("latin-1", "replace")))
            await writer.drain()
        except (ConnectionError, OSError, ValueError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()

    def _respond(self, request_line: str) -> bytes:
        parts = request_line.split()
        path = parts[1].split("?", 1)[0] if len(parts) >= 2 else ""
        if len(parts) < 2 or parts[0] != "GET":
            return _response(405, "text/plain", "method not allowed\n")
        snapshot = self._provider()
        if path == "/metrics":
            return _response(
                200, "text/plain; version=0.0.4", prometheus_text(snapshot)
            )
        if path in ("/", "/metrics.json"):
            return _response(
                200, "application/json",
                json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
            )
        return _response(404, "text/plain", "not found\n")


def _response(status: int, content_type: str, body: str) -> bytes:
    reason = {200: "OK", 404: "Not Found", 405: "Method Not Allowed"}[status]
    payload = body.encode()
    head = (
        f"HTTP/1.0 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + payload


class PeriodicSampler:
    """Keep a bounded history of snapshots on a fixed cadence.

    A rate question ("how many packets in the last second?") needs two
    snapshots; the sampler takes one every ``interval`` seconds and
    retains the last ``capacity``, timestamped with the loop clock.
    """

    def __init__(
        self,
        provider: SnapshotProvider,
        *,
        interval: float = 1.0,
        capacity: int = 60,
    ) -> None:
        if interval <= 0:
            raise ValueError("sample interval must be positive")
        self._provider = provider
        self._interval = interval
        self.samples: deque = deque(maxlen=capacity)
        self._task: Optional[asyncio.Task] = None

    def start(self) -> "PeriodicSampler":
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())
        return self

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    def sample_once(self) -> dict:
        """Take (and retain) one sample immediately."""
        snapshot = self._provider()
        self.samples.append(
            (asyncio.get_event_loop().time(), snapshot)
        )
        return snapshot

    def latest(self) -> Optional[dict]:
        return self.samples[-1][1] if self.samples else None

    async def _run(self) -> None:
        while True:
            await asyncio.sleep(self._interval)
            self.sample_once()
