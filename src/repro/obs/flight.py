"""The flight recorder: a bounded ring of recent engine steps.

A :class:`FlightRecorder` speaks the same ``record(event, effects)``
interface as :class:`repro.protocol.trace.EngineLog`, but where the
trace log grows without bound (it exists to compare *complete*
histories), the recorder keeps only the last N steps — cheap enough to
leave attached to every engine in a live deployment, and exactly what
a post-mortem needs: what did this node see right before the invariant
broke?

Drivers attach one per engine (``engine.flight = FlightRecorder()``);
the chaos harness does this for every node it brings up and dumps the
implicated recorders when ``check_invariants`` fails, so a failing
seed produces a last-N-events trace instead of a bare assertion.
"""

from __future__ import annotations

from collections import deque

__all__ = ["FlightRecorder", "format_dump"]

#: Default ring capacity: enough steps to cover a whole repair episode
#: (complaint, probe, timer, splice fan-out) with room to spare.
DEFAULT_CAPACITY = 64


class FlightRecorder:
    """Append-only bounded record of an engine's recent steps.

    Attributes:
        steps: The retained ``(sequence, event, effects)`` triples,
            oldest first.  ``sequence`` is the step's position in the
            engine's full history, so a dump says how much was
            discarded.
        recorded: Total steps ever recorded (>= ``len(steps)``).
    """

    __slots__ = ("steps", "recorded")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.steps: deque = deque(maxlen=capacity)
        self.recorded = 0

    @property
    def capacity(self) -> int:
        return self.steps.maxlen

    def record(self, event, effects) -> None:
        """One engine step (the engines call this from ``handle``)."""
        self.steps.append((self.recorded, event, tuple(effects)))
        self.recorded += 1

    def clear(self) -> None:
        self.steps.clear()

    def tail(self, count: int) -> list[tuple]:
        """The most recent ``count`` retained steps, oldest first."""
        if count <= 0:
            return []
        return list(self.steps)[-count:]

    def dump(self, label: str = "engine") -> str:
        """Human-readable dump of everything retained."""
        return format_dump(self, label)


def format_dump(recorder: FlightRecorder, label: str = "engine") -> str:
    """Render one recorder's retained steps as an indented block.

    Every line is stable ``repr`` output (the same vocabulary the
    conformance goldens pin), prefixed with the step's sequence number;
    zero-effect steps render on one line.
    """
    lines = [
        f"--- flight recorder: {label} "
        f"(last {len(recorder.steps)} of {recorder.recorded} steps) ---"
    ]
    if not recorder.steps:
        lines.append("  (no steps recorded)")
    for sequence, event, effects in recorder.steps:
        lines.append(f"  [{sequence:>5}] {event!r}")
        for effect in effects:
            lines.append(f"          -> {effect!r}")
    return "\n".join(lines)
