"""``repro.obs``: dependency-free runtime observability.

Four small pieces, layered like the rest of the repo:

* :mod:`~repro.obs.registry` — sans-IO counters/gauges/histograms in a
  named :class:`Registry`; hot-path increments are one attribute bump.
* :mod:`~repro.obs.flight` — a bounded ring of recent engine steps
  (same vocabulary as ``protocol.trace``) for post-mortems.
* :mod:`~repro.obs.instruments` — pre-bound instrument bundles the
  engines drive through a duck-typed ``obs`` attribute, plus binders
  that fold existing stats dataclasses into snapshot-on-read gauges.
* :mod:`~repro.obs.export` / :mod:`~repro.obs.http` — the versioned
  JSON snapshot, Prometheus text rendering, and the asyncio scrape
  endpoint (``http`` is the only module here allowed to touch asyncio;
  ``tools/check_layering.py`` enforces the rest stays sans-IO).
"""

from .export import (
    SCHEMA,
    prometheus_text,
    snapshot_json,
    snapshot_obj,
    validate_snapshot,
)
from .flight import FlightRecorder, format_dump
from .instruments import (
    DataplaneInstruments,
    PeerEngineInstruments,
    ServerEngineInstruments,
    bind_fields,
    bind_pool,
    bind_sender_totals,
)
from .registry import (
    POW2_LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    Registry,
    pow2_bounds,
)

__all__ = [
    "Counter",
    "DataplaneInstruments",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "POW2_LATENCY_BOUNDS",
    "PeerEngineInstruments",
    "Registry",
    "SCHEMA",
    "ServerEngineInstruments",
    "bind_fields",
    "bind_pool",
    "bind_sender_totals",
    "format_dump",
    "pow2_bounds",
    "prometheus_text",
    "snapshot_json",
    "snapshot_obj",
    "validate_snapshot",
]
