"""Analytic side of the paper: drift function, closed-form bounds, collapse.

Everything here is pure computation (no networks); the benchmark harness
prints these predictions next to measured values.
"""

from .bounds import (
    Theorem4Prediction,
    collapse_exponent,
    collapse_probability_bound,
    expected_bandwidth_loss_fraction,
    lemma6_max_jump_fraction,
    theorem4_prediction,
    unicast_capacity,
)
from .collapse import (
    CollapseResult,
    mean_walk_collapse_time,
    measure_collapse_time,
    simulate_defect_walk,
)
from .moments import (
    LossMoments,
    binomial_loss_moments,
    binomial_loss_pmf,
    empirical_loss_moments,
    required_d_for_std,
)
from .drift import (
    DriftParameters,
    defect_drop_interval,
    drift,
    drift_minimum,
    drift_roots,
    paper_a1_epsilon_bound,
    paper_a1_estimate,
    paper_a2_estimate,
)

__all__ = [
    "CollapseResult",
    "DriftParameters",
    "LossMoments",
    "binomial_loss_moments",
    "binomial_loss_pmf",
    "empirical_loss_moments",
    "required_d_for_std",
    "Theorem4Prediction",
    "collapse_exponent",
    "collapse_probability_bound",
    "defect_drop_interval",
    "drift",
    "drift_minimum",
    "drift_roots",
    "expected_bandwidth_loss_fraction",
    "lemma6_max_jump_fraction",
    "mean_walk_collapse_time",
    "measure_collapse_time",
    "paper_a1_epsilon_bound",
    "paper_a1_estimate",
    "paper_a2_estimate",
    "simulate_defect_walk",
    "theorem4_prediction",
    "unicast_capacity",
]
