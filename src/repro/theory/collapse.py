"""Collapse dynamics (Theorem 5 / Lemma 8 / Corollary 9).

Two levels of model:

* :func:`measure_collapse_time` runs the *real* overlay process — repeated
  sequential arrivals with iid failures and periodic repairs — and reports
  when the sampled defect first crosses the tipping root ``a₂`` (or a
  caller-supplied threshold).  Exact but only feasible for small ``k``
  at the large ``p`` needed to see collapses at all.

* :func:`simulate_defect_walk` runs the paper's *abstract* 1-D random
  walk: the normalised defect takes a drift step bounded by Lemma 6 each
  arrival.  This reproduces the exponential-in-``k/d³`` scaling shape of
  Theorem 5 across a wide parameter range in milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..analysis.defects import sampled_defect
from ..core.membership import sequential_arrivals
from ..core.overlay import OverlayNetwork
from .drift import DriftParameters, drift_roots


@dataclass(frozen=True)
class CollapseResult:
    """Outcome of one collapse run.

    Attributes:
        collapsed: Whether the defect crossed the threshold.
        steps: Arrival steps executed before stopping.
        threshold: The defect threshold used.
        peak_defect: Highest (sampled or walked) defect level observed.
    """

    collapsed: bool
    steps: int
    threshold: float
    peak_defect: float


def measure_collapse_time(
    k: int,
    d: int,
    p: float,
    seed: Optional[int] = None,
    max_steps: int = 20_000,
    check_every: int = 25,
    defect_samples: int = 60,
    threshold: Optional[float] = None,
    repair_interval: Optional[int] = None,
) -> CollapseResult:
    """Run the real arrival process until the defect crosses ``threshold``.

    The defect is estimated by tuple sampling every ``check_every``
    arrivals.  ``threshold`` defaults to the numeric tipping root ``a₂``
    when the drift has roots, else 0.5.

    ``repair_interval`` defaults to None — failed rows persist, exactly
    the §4 process whose tags accumulate (the drift heals defects through
    later working arrivals, not through repairs).  Passing an interval
    studies the easier repaired regime, where collapse effectively never
    happens.
    """
    if threshold is None:
        try:
            _, a2 = drift_roots(DriftParameters(k=k, d=d, p=p))
            threshold = a2
        except ValueError:
            threshold = 0.5
    net = OverlayNetwork(k=k, d=d, seed=seed)
    rng = np.random.default_rng(None if seed is None else seed + 1)
    steps = 0
    peak = 0.0
    while steps < max_steps:
        batch = min(check_every, max_steps - steps)
        sequential_arrivals(net, batch, p, rng=rng, repair_interval=repair_interval)
        steps += batch
        summary = sampled_defect(net.matrix, d, rng, samples=defect_samples,
                                 failed=net.failed)
        level = summary.mean_defect / d  # normalise into [0, 1]
        peak = max(peak, level)
        if level >= threshold:
            return CollapseResult(collapsed=True, steps=steps,
                                  threshold=threshold, peak_defect=peak)
    return CollapseResult(collapsed=False, steps=steps,
                          threshold=threshold, peak_defect=peak)


def simulate_defect_walk(
    k: int,
    d: int,
    p: float,
    rng: np.random.Generator,
    max_steps: int = 1_000_000,
    threshold: Optional[float] = None,
    start: float = 0.0,
) -> CollapseResult:
    """Run the abstract Lemma-8 walk on the normalised defect ``b``.

    Each arrival is a failure with probability ``p`` (defect jumps up by
    the Lemma 6 maximum ``d²/k``) or a working node (defect drops by the
    Lemma 7 expected contraction, floored at 0).  This walk *stochastically
    dominates* the real defect process — both the up-jump and the smallness
    of the down-step are worst-case — so its collapse times lower-bound
    the real system's and exhibit the Theorem 5 exponent.
    """
    if threshold is None:
        try:
            _, a2 = drift_roots(DriftParameters(k=k, d=d, p=p))
            threshold = a2
        except ValueError:
            threshold = 0.5
    jump = d * d / k
    b = start
    peak = b
    params_up = p
    contraction = lambda b_val: b_val * (d / k) * max(
        0.0, 1.0 - d * d / k - b_val ** ((d - 1.0) / d)
    )
    for step in range(1, max_steps + 1):
        if rng.random() < params_up:
            b = min(1.0, b + jump)
        else:
            b = max(0.0, b - contraction(b))
        peak = max(peak, b)
        if b >= threshold:
            return CollapseResult(collapsed=True, steps=step,
                                  threshold=threshold, peak_defect=peak)
    return CollapseResult(collapsed=False, steps=max_steps,
                          threshold=threshold, peak_defect=peak)


def mean_walk_collapse_time(
    k: int,
    d: int,
    p: float,
    runs: int,
    rng: np.random.Generator,
    max_steps: int = 1_000_000,
) -> tuple[float, int]:
    """Mean collapse step count of the abstract walk over ``runs`` trials.

    Returns ``(mean_steps, censored)`` where censored counts runs that hit
    ``max_steps`` without collapsing (their step count enters the mean as
    ``max_steps``, making the mean a lower bound — consistent with
    Theorem 5 being a lower bound).
    """
    times = []
    censored = 0
    for _ in range(runs):
        result = simulate_defect_walk(k, d, p, rng, max_steps=max_steps)
        times.append(result.steps)
        if not result.collapsed:
            censored += 1
    return float(np.mean(times)), censored
