"""Loss moments: the §7 second-moment programme, executable.

§7 conjectures that losing κ threads is about as likely as losing κ
parents, i.e. the per-node loss is ≈ Binomial(d, p).  Under that model
the *fraction* of bandwidth lost, L/d, has

    E[L/d]   = p                      (the paper's headline)
    Var[L/d] = p(1-p)/d               (the conjectured 1/d decay)

This module provides the model moments and estimators for comparing a
measured loss histogram against them (used by E9/X3 and available to
applications sizing d for a target rate variance).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class LossMoments:
    """First two moments of the per-thread loss fraction L/d."""

    mean: float
    variance: float

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)


def binomial_loss_moments(d: int, p: float) -> LossMoments:
    """Model moments under the κ ~ Binomial(d, p) conjecture."""
    if d < 1:
        raise ValueError("d must be >= 1")
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be a probability")
    return LossMoments(mean=p, variance=p * (1.0 - p) / d)


def binomial_loss_pmf(d: int, p: float) -> list[float]:
    """P(κ = j) for j = 0..d under the conjecture."""
    return [
        math.comb(d, j) * (p ** j) * ((1.0 - p) ** (d - j))
        for j in range(d + 1)
    ]


def empirical_loss_moments(losses: Sequence[int], d: int) -> LossMoments:
    """Moments of measured per-node thread losses (each in 0..d)."""
    if not losses:
        raise ValueError("no samples")
    if d < 1:
        raise ValueError("d must be >= 1")
    fractions = [loss / d for loss in losses]
    n = len(fractions)
    mean = sum(fractions) / n
    variance = sum((f - mean) ** 2 for f in fractions) / n
    return LossMoments(mean=mean, variance=variance)


def required_d_for_std(p: float, target_std: float, max_d: int = 64) -> int:
    """Smallest d whose model loss-fraction std meets ``target_std``.

    The §7 sizing question made concrete: "if one wants a more
    consistent bandwidth, a larger d would be a better choice" — this
    says how much larger.  Raises if no d up to ``max_d`` suffices.
    """
    if target_std <= 0:
        raise ValueError("target_std must be positive")
    for d in range(1, max_d + 1):
        if binomial_loss_moments(d, p).std <= target_std:
            return d
    raise ValueError(
        f"even d={max_d} gives std "
        f"{binomial_loss_moments(max_d, p).std:.4f} > {target_std}"
    )
