"""The drift function ``f(b)`` of §4 and its roots.

After Lemma 7 the paper bounds the one-step change of the normalised
defect ``b = B/A``:

    E[b'] − b  ≤  f(b)  =  p·d²/k  −  (1−p)·d(k−d²)/k² · b
                           + (1−p)·(d/k) · b^(2−1/d)

``f`` is convex on [0, 1] with a minimum near 1/2 and (in the operating
regime ``pd ≤ δ``, ``k ≥ c·d²``) two roots ``0 < a₁ < 1/2 < a₂ < 1``:

* ``a₁ ≈ pd`` — the attractor: the steady-state defect level (Theorem 4);
* ``a₂ ≈ 1 − (pd/(d−1) + d²/k)`` — the tipping point beyond which the
  defect drifts to 1 and the system collapses.

This module evaluates ``f`` and finds the roots numerically; the
experiments compare the *measured* defect trajectory against them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize


@dataclass(frozen=True)
class DriftParameters:
    """Operating point of the drift analysis.

    Attributes:
        k: Server threads.
        d: Per-node threads (>= 2).
        p: Per-interval failure probability.
    """

    k: int
    d: int
    p: float

    def __post_init__(self) -> None:
        if self.d < 2:
            raise ValueError("the analysis requires d >= 2")
        if self.k <= self.d * self.d:
            raise ValueError("the analysis requires k > d^2")
        if not 0.0 <= self.p < 1.0:
            raise ValueError("p must be in [0, 1)")


def drift(params: DriftParameters, b: float | np.ndarray) -> float | np.ndarray:
    """Evaluate ``f(b)`` — the upper bound on the expected defect change."""
    k, d, p = params.k, params.d, params.p
    b = np.asarray(b, dtype=float)
    value = (
        p * d * d / k
        - (1.0 - p) * d * (k - d * d) / (k * k) * b
        + (1.0 - p) * (d / k) * np.power(b, 2.0 - 1.0 / d)
    )
    return float(value) if value.ndim == 0 else value


def drift_minimum(params: DriftParameters) -> tuple[float, float]:
    """Location and value of the minimum of ``f`` on [0, 1].

    The paper's closed form puts the minimiser near
    ``a₀ = (1 − d²/k)/(2 − 1/d) ≈ 1/2`` and the minimum value below
    ``−d/(8k)``; we solve numerically.
    """
    result = optimize.minimize_scalar(
        lambda b: drift(params, b), bounds=(0.0, 1.0), method="bounded"
    )
    return float(result.x), float(result.fun)


def drift_roots(params: DriftParameters) -> tuple[float, float]:
    """The two roots ``(a₁, a₂)`` of ``f`` in (0, 1).

    Raises ``ValueError`` when ``f`` has no sign change — i.e. the
    operating point is outside the paper's regime (``pd`` too large for
    this ``k, d``) and the system has no stable defect level.
    """
    minimiser, minimum = drift_minimum(params)
    if minimum >= 0.0:
        raise ValueError(
            f"f(b) has no roots: min f = {minimum:.3g} >= 0 at b = {minimiser:.3f};"
            " pd is too large for this (k, d)"
        )
    f = lambda b: drift(params, b)
    if f(0.0) <= 0.0:
        a1 = 0.0
    else:
        a1 = float(optimize.brentq(f, 0.0, minimiser))
    if f(1.0) <= 0.0:
        a2 = 1.0
    else:
        a2 = float(optimize.brentq(f, minimiser, 1.0))
    return a1, a2


def paper_a1_estimate(params: DriftParameters) -> float:
    """The paper's closed-form leading estimate of the attractor root.

    ``a₁ = pd / ((1−p)(1−d²/k)) · (1+ε)`` with ``0 < ε < (2pd)^(1−1/d)``;
    this returns the ε = 0 leading term.
    """
    k, d, p = params.k, params.d, params.p
    return p * d / ((1.0 - p) * (1.0 - d * d / k))


def paper_a1_epsilon_bound(params: DriftParameters) -> float:
    """The paper's upper bound ``(2pd)^(1−1/d)`` on ε in the a₁ estimate."""
    d, p = params.d, params.p
    return float((2.0 * p * d) ** (1.0 - 1.0 / d))


def paper_a2_estimate(params: DriftParameters) -> float:
    """The paper's closed-form leading estimate of the tipping root.

    ``a₂ = 1 − (pd/(d−1) + d²/k)(1+ε)`` with ``|ε| < 2(1/d + d²/k)``.
    (The paper's display writes ``pd/(1−d)``; the quantity subtracted from
    1 must be positive, so the intended magnitude is ``pd/(d−1)``.)
    """
    k, d, p = params.k, params.d, params.p
    return 1.0 - (p * d / (d - 1.0) + d * d / k)


def defect_drop_interval(
    params: DriftParameters, c1: float
) -> tuple[float, float]:
    """The interval ``[b₁, b₂]`` on which ``f(b) ≤ −c₁``.

    This is the strongly contracting zone used in the collapse analysis
    (Lemma 8); the paper takes ``c₁ = δ₂·d/k`` for a small constant δ₂.
    Raises ``ValueError`` when no such interval exists.
    """
    if c1 <= 0.0:
        raise ValueError("c1 must be positive")
    minimiser, minimum = drift_minimum(params)
    if minimum > -c1:
        raise ValueError(f"f never reaches -c1 = {-c1:.3g} (min = {minimum:.3g})")
    g = lambda b: drift(params, b) + c1
    b1 = float(optimize.brentq(g, 0.0, minimiser)) if g(0.0) > 0 else 0.0
    b2 = float(optimize.brentq(g, minimiser, 1.0)) if g(1.0) > 0 else 1.0
    return b1, b2
