"""Closed-form predictions of Theorems 4 and 5, for paper-vs-measured rows.

Nothing here touches a network; these are the reference curves the
benchmark harness prints next to the measurements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .drift import DriftParameters, drift_roots, paper_a1_epsilon_bound


@dataclass(frozen=True)
class Theorem4Prediction:
    """Predicted steady-state defect level.

    Attributes:
        naive: The headline value ``p·d``.
        attractor: The exact numeric root ``a₁`` of the drift bound —
            the tightest level the proof guarantees.
        with_epsilon: The paper's ``(1+ε)·p·d`` ceiling using the proved
            ε bound (loose but fully rigorous).
    """

    naive: float
    attractor: float
    with_epsilon: float


def theorem4_prediction(k: int, d: int, p: float) -> Theorem4Prediction:
    """Steady-state defect predictions for an operating point."""
    params = DriftParameters(k=k, d=d, p=p)
    if p == 0.0:
        return Theorem4Prediction(naive=0.0, attractor=0.0, with_epsilon=0.0)
    a1, _ = drift_roots(params)
    epsilon = paper_a1_epsilon_bound(params)
    return Theorem4Prediction(
        naive=p * d,
        attractor=a1,
        with_epsilon=(1.0 + epsilon) * p * d,
    )


def expected_bandwidth_loss_fraction(p: float) -> float:
    """§7: expected *fraction* of bandwidth lost ≈ p, independent of d.

    Each of the d unit threads is lost with probability ≈ p (its parent's
    failure), and each carries 1/d of the bandwidth.
    """
    return p


def collapse_exponent(k: int, d: int) -> float:
    """Theorem 5's scaling variable ``k/d³``.

    The expected number of steps before collapse is at least
    ``(1/ξ₁)·exp(ξ₂·k/d³)``; experiments fit log(steps) against this.
    """
    return k / float(d ** 3)


def collapse_probability_bound(
    steps: int, k: int, d: int, xi1: float, xi2: float
) -> float:
    """Corollary 9: P(collapse within ``steps``) ≤ steps·ξ₁·exp(−ξ₂k/d³).

    ξ₁, ξ₂ are the analysis constants; callers fit them empirically.
    """
    return min(1.0, steps * xi1 * math.exp(-xi2 * collapse_exponent(k, d)))


def lemma6_max_jump_fraction(k: int, d: int) -> float:
    """Lemma 6: one arrival moves the total defect by at most (d²/k)·A.

    Returned as the fraction of A.
    """
    return d * d / float(k)


def unicast_capacity(k: int, d: int) -> int:
    """§2: users a k-unit server could serve by plain unicast, ``⌊k/d⌋``.

    The overlay supports exponentially more (Theorem 5); this is the
    trivial reference the scalability experiment prints.
    """
    return k // d
