"""Shared summary statistics for series and run reports.

One home for the mean/std/percentile helpers that were previously
duplicated between :mod:`repro.metrics.recorder` (``Series``) and
:mod:`repro.sim.report` (completion-slot summaries).  Every helper
returns a defined value for an empty input — 0.0, never numpy's
nan-plus-RuntimeWarning — so callers can summarise degenerate runs
(no finishers, no samples) without guarding.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["maximum", "mean", "minimum", "percentile", "std", "summary"]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    if len(values) == 0:
        return 0.0
    return float(np.mean(values))


def std(values: Sequence[float]) -> float:
    """Sample standard deviation, ddof=1 (0.0 below two samples)."""
    if len(values) < 2:
        return 0.0
    return float(np.std(values, ddof=1))


def minimum(values: Sequence[float]) -> float:
    """Smallest value (0.0 for an empty sequence)."""
    if len(values) == 0:
        return 0.0
    return float(np.min(values))


def maximum(values: Sequence[float]) -> float:
    """Largest value (0.0 for an empty sequence)."""
    if len(values) == 0:
        return 0.0
    return float(np.max(values))


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile, 0 <= q <= 100 (0.0 for an empty sequence)."""
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    if len(values) == 0:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=float), q))


def summary(values: Sequence[float]) -> dict[str, float]:
    """{mean, std, min, max, n} of one sample set (all-zero when empty)."""
    return {
        "mean": mean(values),
        "std": std(values),
        "min": minimum(values),
        "max": maximum(values),
        "n": float(len(values)),
    }
