"""Metrics: series recording and table rendering for the bench harness."""

from . import stats
from .export import save_table, to_csv, to_json
from .recorder import Recorder, Series
from .report import format_cell, print_table, render_table, sparkline

__all__ = [
    "Recorder",
    "Series",
    "stats",
    "format_cell",
    "print_table",
    "render_table",
    "save_table",
    "sparkline",
    "to_csv",
    "to_json",
]
