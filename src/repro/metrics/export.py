"""Export experiment tables to CSV/JSON for external plotting."""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Iterable, Sequence, Union

from .report import Cell


def to_csv(headers: Sequence[str], rows: Iterable[Sequence[Cell]]) -> str:
    """Render a table as CSV text (None becomes an empty cell)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        writer.writerow(["" if cell is None else cell for cell in row])
    return buffer.getvalue()


def to_json(headers: Sequence[str], rows: Iterable[Sequence[Cell]]) -> str:
    """Render a table as a JSON list of row objects."""
    records = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        records.append(dict(zip(headers, row)))
    return json.dumps(records, indent=2)


def save_table(
    path: Union[str, Path],
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
) -> None:
    """Write a table to ``path``; format chosen by suffix (.csv/.json)."""
    path = Path(path)
    rows = [list(row) for row in rows]
    if path.suffix == ".csv":
        path.write_text(to_csv(headers, rows))
    elif path.suffix == ".json":
        path.write_text(to_json(headers, rows))
    else:
        raise ValueError(f"unsupported export format {path.suffix!r}")
