"""Time-series recording for experiments.

A tiny, dependency-free recorder: named series of (time, value) points
with summary statistics.  Benches use it to accumulate sweeps before
rendering tables.  The statistics themselves live in
:mod:`repro.metrics.stats`, shared with the simulators' run reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from . import stats


@dataclass
class Series:
    """One named series of (t, value) samples."""

    name: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def add(self, t: float, value: float) -> None:
        self.times.append(float(t))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.values)

    def mean(self) -> float:
        return stats.mean(self.values)

    def std(self) -> float:
        return stats.std(self.values)

    def max(self) -> float:
        return stats.maximum(self.values)

    def min(self) -> float:
        return stats.minimum(self.values)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of the values (0.0 when empty)."""
        return stats.percentile(self.values, q)

    def last(self) -> Optional[float]:
        return self.values[-1] if self.values else None

    def summary(self) -> dict[str, float]:
        """{mean, std, min, max, n} for this series."""
        return stats.summary(self.values)


class Recorder:
    """A bag of named series."""

    def __init__(self) -> None:
        self._series: dict[str, Series] = {}

    def record(self, name: str, t: float, value: float) -> None:
        """Append one sample to series ``name`` (created on first use)."""
        series = self._series.get(name)
        if series is None:
            series = Series(name)
            self._series[name] = series
        series.add(t, value)

    def series(self, name: str) -> Series:
        """The series called ``name``; KeyError if never recorded."""
        return self._series[name]

    def names(self) -> list[str]:
        return sorted(self._series)

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-series {mean, std, min, max, n} snapshot."""
        return {name: s.summary() for name, s in self._series.items()}
