"""Plain-text table rendering for the benchmark harness.

Every bench prints the rows/series the corresponding paper claim implies,
in a fixed-width table that also reads cleanly when tee'd into
EXPERIMENTS.md code blocks.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

Cell = Union[str, int, float, None]


def format_cell(value: Cell, precision: int = 4) -> str:
    """Render one table cell."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 10_000 or 0 < abs(value) < 10 ** (-precision):
            return f"{value:.{precision}g}"
        return f"{value:.{precision}f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: str = "",
    precision: int = 4,
) -> str:
    """Render a fixed-width table with a separator under the header."""
    text_rows = [[format_cell(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


#: Block characters for sparklines, lowest to highest.
_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values, low: float = None, high: float = None) -> str:
    """Render a value series as a one-line unicode sparkline.

    The scale runs from ``low`` to ``high`` (default: the series'
    min/max; a constant series renders as all-low blocks).
    """
    values = [float(v) for v in values]
    if not values:
        return ""
    floor = min(values) if low is None else low
    ceiling = max(values) if high is None else high
    span = ceiling - floor
    if span <= 0:
        return _SPARK_BLOCKS[0] * len(values)
    out = []
    top = len(_SPARK_BLOCKS) - 1
    for value in values:
        position = (value - floor) / span
        out.append(_SPARK_BLOCKS[max(0, min(top, int(position * top + 0.5)))])
    return "".join(out)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: str = "",
    precision: int = 4,
) -> None:
    """Render and print (benches' standard output path)."""
    print()
    print(render_table(headers, rows, title, precision))
    print()
