"""A latency/loss message network on the discrete-event engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Protocol

import numpy as np

from ..sim.engine import Simulator


class Actor(Protocol):
    """Anything that can receive messages from the network."""

    def handle(self, message: object, sender: Hashable) -> None:
        """Process one delivered message."""
        ...


@dataclass
class NetworkStats:
    """Message/byte accounting, per message type name."""

    messages: dict[str, int] = field(default_factory=dict)
    bytes: dict[str, int] = field(default_factory=dict)
    dropped: int = 0

    def record(self, message: object) -> None:
        name = type(message).__name__
        self.messages[name] = self.messages.get(name, 0) + 1
        self.bytes[name] = self.bytes.get(name, 0) + getattr(message, "size", 0)

    def total_messages(self) -> int:
        return sum(self.messages.values())

    def total_bytes(self) -> int:
        return sum(self.bytes.values())


class MessageNetwork:
    """Point-to-point datagrams with latency jitter and optional loss.

    Args:
        sim: The event engine.
        rng: Randomness for jitter/loss.
        base_latency: Minimum one-way delay.
        jitter: Uniform extra delay in [0, jitter).
        loss_rate: Per-message drop probability.
        fifo: Deliver messages between each (sender, destination) pair in
            send order, like a TCP connection.  This matters: the server
            is the single writer of every peer's topology state, and
            jitter-reordered updates would let a stale `AttachChild`
            overwrite a fresh one (observed under §5 uniform insertion).
            Set False to model independent datagrams.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: np.random.Generator,
        base_latency: float = 0.05,
        jitter: float = 0.05,
        loss_rate: float = 0.0,
        fifo: bool = True,
    ) -> None:
        if base_latency < 0 or jitter < 0:
            raise ValueError("latencies must be non-negative")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.sim = sim
        self.rng = rng
        self.base_latency = base_latency
        self.jitter = jitter
        self.loss_rate = loss_rate
        self.fifo = fifo
        self._actors: dict[Hashable, Actor] = {}
        self._last_delivery: dict[tuple[Hashable, Hashable], float] = {}
        self.stats = NetworkStats()

    def register(self, address: Hashable, actor: Actor) -> None:
        """Attach an actor at ``address`` (replacing any previous one)."""
        self._actors[address] = actor

    def unregister(self, address: Hashable) -> None:
        """Remove an actor; in-flight messages to it are dropped silently."""
        self._actors.pop(address, None)

    def send(self, sender: Hashable, destination: Hashable, message: object) -> None:
        """Queue a message for delivery after the sampled latency."""
        self.stats.record(message)
        if self.loss_rate and self.rng.random() < self.loss_rate:
            self.stats.dropped += 1
            return
        delay = self.base_latency
        if self.jitter:
            delay += float(self.rng.random()) * self.jitter
        arrival = self.sim.now + delay
        if self.fifo:
            channel = (sender, destination)
            arrival = max(arrival, self._last_delivery.get(channel, 0.0) + 1e-9)
            self._last_delivery[channel] = arrival
        self.sim.schedule(
            arrival,
            lambda _sim, d=destination, m=message, s=sender: self._deliver(d, m, s),
            label=f"deliver-{type(message).__name__}",
        )

    def _deliver(self, destination: Hashable, message: object, sender: Hashable) -> None:
        actor = self._actors.get(destination)
        if actor is not None:
            actor.handle(message, sender)
