"""Server and peer actors: the §3 protocols as message handlers.

The :class:`ServerActor` wraps the library's
:class:`~repro.core.server.CoordinationServer` — the matrix logic is
identical to the function-call control plane; only the transport
changes.  Failure detection is end-to-end and complaint-driven, exactly
as the paper describes: parents emit per-thread keep-alives (standing in
for the data packets), children whose threads go silent complain, the
server probes the suspect and, on probe timeout, splices it out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional


from ..core.server import CoordinationServer
from ..sim.engine import Simulator
from .messages import (
    SERVER_ADDRESS,
    AttachChild,
    ComplaintMsg,
    CongestionDrop,
    CongestionRestore,
    DetachChild,
    JoinGrant,
    JoinRequest,
    KeepAlive,
    LeaveRequest,
    Probe,
    ProbeAck,
    SetParent,
    ThreadRemoved,
)
from .network import MessageNetwork


@dataclass
class RepairRecord:
    """Timeline of one detected failure."""

    victim: int
    crashed_at: float
    first_complaint_at: Optional[float] = None
    repaired_at: Optional[float] = None

    @property
    def detection_latency(self) -> Optional[float]:
        if self.first_complaint_at is None:
            return None
        return self.first_complaint_at - self.crashed_at

    @property
    def repair_latency(self) -> Optional[float]:
        if self.repaired_at is None:
            return None
        return self.repaired_at - self.crashed_at


class PeerActor:
    """One peer: keep-alive emission, silence detection, re-attachment.

    Args:
        node_id: Server-assigned id.
        sim: Event engine (for timers).
        network: Transport.
        keepalive_interval: Period of per-thread keep-alives.
        silence_timeout: Silence on an incoming thread before complaining.
    """

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: MessageNetwork,
        keepalive_interval: float,
        silence_timeout: float,
    ) -> None:
        self.node_id = node_id
        self.sim = sim
        self.network = network
        self.keepalive_interval = keepalive_interval
        self.silence_timeout = silence_timeout
        self.alive = True
        #: column -> parent we currently receive from
        self.parents: dict[int, int] = {}
        #: column -> child we currently forward to
        self.children: dict[int, int] = {}
        self._last_heard: dict[int, float] = {}
        self._complained: set[int] = set()
        self._stop_timers = []

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin periodic keep-alives and silence checks."""
        self._stop_timers.append(
            self.sim.every(self.keepalive_interval, self._send_keepalives,
                           label=f"ka-{self.node_id}")
        )
        self._stop_timers.append(
            self.sim.every(self.keepalive_interval, self._check_silence,
                           label=f"watch-{self.node_id}")
        )

    def crash(self) -> None:
        """Non-ergodic failure: go silent (timers keep firing but no-op)."""
        self.alive = False

    def _send_keepalives(self, _sim: Simulator) -> None:
        if not self.alive:
            return
        for column, child in self.children.items():
            self.network.send(
                self.node_id, child, KeepAlive(column=column, sender=self.node_id)
            )

    def _check_silence(self, _sim: Simulator) -> None:
        if not self.alive:
            return
        now = self.sim.now
        for column, parent in self.parents.items():
            if parent == -1:
                continue  # served directly by the server: assumed reliable
            last = self._last_heard.get(column, self._attached_at.get(column, now))
            if now - last > self.silence_timeout and column not in self._complained:
                self._complained.add(column)
                self.network.send(
                    self.node_id,
                    SERVER_ADDRESS,
                    ComplaintMsg(reporter=self.node_id, column=column,
                                 suspect=parent),
                )

    # bookkeeping of when each thread was (re)attached, to seed timers
    @property
    def _attached_at(self) -> dict[int, float]:
        if not hasattr(self, "_attached_at_store"):
            self._attached_at_store: dict[int, float] = {}
        return self._attached_at_store

    # ------------------------------------------------------------------

    def handle(self, message: object, sender: Hashable) -> None:
        if not self.alive:
            return
        if isinstance(message, KeepAlive):
            self._last_heard[message.column] = self.sim.now
        elif isinstance(message, JoinGrant):
            for column, parent in message.assignments:
                self.parents[column] = parent
                self._attached_at[column] = self.sim.now
        elif isinstance(message, AttachChild):
            self.children[message.column] = message.child
        elif isinstance(message, DetachChild):
            self.children.pop(message.column, None)
        elif isinstance(message, SetParent):
            self.parents[message.column] = message.parent
            self._attached_at[message.column] = self.sim.now
            self._last_heard.pop(message.column, None)
            self._complained.discard(message.column)
        elif isinstance(message, ThreadRemoved):
            self.parents.pop(message.column, None)
            self.children.pop(message.column, None)
            self._last_heard.pop(message.column, None)
            self._complained.discard(message.column)
        elif isinstance(message, Probe):
            self.network.send(self.node_id, SERVER_ADDRESS,
                              ProbeAck(node_id=self.node_id, nonce=message.nonce))


class ServerActor:
    """The coordination authority as a message-driven actor."""

    def __init__(
        self,
        core: CoordinationServer,
        sim: Simulator,
        network: MessageNetwork,
        probe_timeout: float = 0.5,
    ) -> None:
        self.core = core
        self.sim = sim
        self.network = network
        self.probe_timeout = probe_timeout
        #: suspect -> probe nonce currently outstanding
        self._pending_probes: dict[int, int] = {}
        self._nonce = 0
        self.repairs: list[RepairRecord] = []
        self._crash_times: dict[int, float] = {}
        #: callback the harness sets to learn about admitted peers
        self.on_admit = None

    # ------------------------------------------------------------------

    def note_crash(self, node_id: int) -> None:
        """The harness records ground-truth crash time (for latency stats)."""
        self._crash_times[node_id] = self.sim.now

    def handle(self, message: object, sender: Hashable) -> None:
        if isinstance(message, JoinRequest):
            self._handle_join(message)
        elif isinstance(message, LeaveRequest):
            self._handle_leave(message)
        elif isinstance(message, ComplaintMsg):
            self._handle_complaint(message)
        elif isinstance(message, CongestionDrop):
            self._handle_congestion_drop(message)
        elif isinstance(message, CongestionRestore):
            self._handle_congestion_restore(message)
        elif isinstance(message, ProbeAck):
            self._pending_probes.pop(message.node_id, None)

    def _handle_join(self, message: JoinRequest) -> None:
        grant = self.core.hello()
        node_id = grant.node_id
        if self.on_admit is not None:
            self.on_admit(node_id, message.reply_to)
        self.network.send(
            SERVER_ADDRESS, node_id,
            JoinGrant(
                node_id=node_id,
                assignments=tuple((a.column, a.parent) for a in grant.assignments),
            ),
        )
        for assignment in grant.assignments:
            if assignment.parent != -1:
                self.network.send(
                    SERVER_ADDRESS, assignment.parent,
                    AttachChild(column=assignment.column, child=node_id),
                )
        for redirect in grant.redirects:
            if redirect.child is not None:
                self.network.send(
                    SERVER_ADDRESS, redirect.child,
                    SetParent(column=redirect.column, parent=node_id),
                )
                self.network.send(
                    SERVER_ADDRESS, node_id,
                    AttachChild(column=redirect.column, child=redirect.child),
                )

    def _handle_leave(self, message: LeaveRequest) -> None:
        if message.node_id not in self.core.registry:
            return
        redirects = self.core.goodbye(message.node_id)
        self._broadcast_redirects(redirects)

    def _handle_complaint(self, message: ComplaintMsg) -> None:
        suspect = message.suspect
        if suspect not in self.core.registry or suspect in self.core.failed:
            return
        record = next(
            (r for r in self.repairs
             if r.victim == suspect and r.repaired_at is None),
            None,
        )
        if record is None:
            record = RepairRecord(
                victim=suspect,
                crashed_at=self._crash_times.get(suspect, self.sim.now),
                first_complaint_at=self.sim.now,
            )
            self.repairs.append(record)
        if suspect in self._pending_probes:
            return  # probe already in flight
        self._nonce += 1
        nonce = self._nonce
        self._pending_probes[suspect] = nonce
        self.network.send(SERVER_ADDRESS, suspect, Probe(nonce=nonce))
        self.sim.schedule_after(
            self.probe_timeout,
            lambda _sim, s=suspect, n=nonce: self._probe_timeout(s, n),
            label="probe-timeout",
        )

    def _handle_congestion_drop(self, message: CongestionDrop) -> None:
        node_id = message.node_id
        if node_id not in self.core.registry or node_id in self.core.failed:
            return
        matrix = self.core.matrix
        if matrix.row(node_id).degree <= 1:
            return  # never strand a node with zero threads
        # Capture the neighbourhood BEFORE the splice: the dropped
        # column's parent must be retargeted at the dropped column's
        # child, both read from the pre-drop state.
        parents_before = matrix.parents_of(node_id)
        children_before = matrix.children_of(node_id)
        column = self.core.congestion_drop(node_id)
        parent = parents_before[column]
        child = children_before[column]
        # the shedding node forgets the column entirely
        self.network.send(SERVER_ADDRESS, node_id, ThreadRemoved(column=column))
        if parent != -1:
            if child is not None:
                self.network.send(SERVER_ADDRESS, parent,
                                  AttachChild(column=column, child=child))
            else:
                self.network.send(SERVER_ADDRESS, parent,
                                  DetachChild(column=column))
        if child is not None:
            self.network.send(SERVER_ADDRESS, child,
                              SetParent(column=column, parent=parent))

    def _handle_congestion_restore(self, message: CongestionRestore) -> None:
        node_id = message.node_id
        if node_id not in self.core.registry or node_id in self.core.failed:
            return
        matrix = self.core.matrix
        if matrix.row(node_id).degree >= matrix.k:
            return
        column = self.core.congestion_restore(node_id)
        parent = matrix.parent_in_column(node_id, column)
        child = matrix.child_in_column(node_id, column)
        self.network.send(SERVER_ADDRESS, node_id,
                          SetParent(column=column, parent=parent))
        if parent != -1:
            self.network.send(SERVER_ADDRESS, parent,
                              AttachChild(column=column, child=node_id))
        if child is not None:
            self.network.send(SERVER_ADDRESS, node_id,
                              AttachChild(column=column, child=child))
            self.network.send(SERVER_ADDRESS, child,
                              SetParent(column=column, parent=node_id))

    def _probe_timeout(self, suspect: int, nonce: int) -> None:
        if self._pending_probes.get(suspect) != nonce:
            return  # the suspect answered: spurious complaint
        self._pending_probes.pop(suspect, None)
        if suspect not in self.core.registry:
            return
        self.core.fail(suspect)
        redirects = self.core.repair(suspect)
        self._broadcast_redirects(redirects)
        for record in self.repairs:
            if record.victim == suspect and record.repaired_at is None:
                record.repaired_at = self.sim.now

    def _broadcast_redirects(self, redirects) -> None:
        for redirect in redirects:
            if redirect.parent != -1:
                if redirect.child is not None:
                    self.network.send(
                        SERVER_ADDRESS, redirect.parent,
                        AttachChild(column=redirect.column, child=redirect.child),
                    )
                else:
                    self.network.send(
                        SERVER_ADDRESS, redirect.parent,
                        DetachChild(column=redirect.column),
                    )
            if redirect.child is not None:
                self.network.send(
                    SERVER_ADDRESS, redirect.child,
                    SetParent(column=redirect.column, parent=redirect.parent),
                )
