"""Server and peer actors: datagram drivers over the protocol engines.

Every protocol decision — hello grants, Lemma 1 splices, the
complaint→probe→repair slow path, silence detection — lives in the
sans-IO engines of :mod:`repro.protocol`.  The actors here are thin
drivers: they translate delivered datagrams into engine events, pump
the returned effects through the latency/loss
:class:`~repro.protocol_sim.network.MessageNetwork`, and arm engine
timers on the discrete-event :class:`~repro.sim.engine.Simulator`.
What stays in this layer is what only this transport can measure:
ground-truth crash times and the detection/repair-latency records the
harness reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional

from ..core.matrix import SERVER
from ..core.server import CoordinationServer
from ..protocol import (
    Admitted,
    ComplaintNoted,
    KeepAliveTick,
    MessageReceived,
    PeerDeparted,
    PeerEngine,
    Send,
    ServerEngine,
    SilenceCheck,
    StartTimer,
    TimerFired,
)
from ..protocol.messages import SERVER_ADDRESS, JoinRequest
from ..sim.engine import Simulator
from .network import MessageNetwork


@dataclass
class RepairRecord:
    """Timeline of one detected failure."""

    victim: int
    crashed_at: float
    first_complaint_at: Optional[float] = None
    repaired_at: Optional[float] = None

    @property
    def detection_latency(self) -> Optional[float]:
        if self.first_complaint_at is None:
            return None
        return self.first_complaint_at - self.crashed_at

    @property
    def repair_latency(self) -> Optional[float]:
        if self.repaired_at is None:
            return None
        return self.repaired_at - self.crashed_at


class PeerActor:
    """One peer: a datagram driver around :class:`PeerEngine`.

    Args:
        node_id: Server-assigned id.
        sim: Event engine (for timers).
        network: Transport.
        keepalive_interval: Period of per-thread keep-alives.
        silence_timeout: Silence on an incoming thread before complaining.
    """

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: MessageNetwork,
        keepalive_interval: float,
        silence_timeout: float,
    ) -> None:
        self.node_id = node_id
        self.sim = sim
        self.network = network
        self.keepalive_interval = keepalive_interval
        self.engine = PeerEngine(node_id, silence_timeout=silence_timeout)
        self.alive = True
        self._stop_timers = []

    #: column -> parent we currently receive from (engine state)
    @property
    def parents(self) -> dict[int, int]:
        return self.engine.parents

    #: column -> child we currently forward to (engine state)
    @property
    def children(self) -> dict[int, int]:
        return self.engine.children

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin periodic keep-alives and silence checks."""
        self._stop_timers.append(
            self.sim.every(self.keepalive_interval, self._send_keepalives,
                           label=f"ka-{self.node_id}")
        )
        self._stop_timers.append(
            self.sim.every(self.keepalive_interval, self._check_silence,
                           label=f"watch-{self.node_id}")
        )

    def crash(self) -> None:
        """Non-ergodic failure: go silent (timers keep firing but no-op)."""
        self.alive = False

    def _send_keepalives(self, _sim: Simulator) -> None:
        if not self.alive:
            return
        self._pump(self.engine.handle(KeepAliveTick(now=self.sim.now)))

    def _check_silence(self, _sim: Simulator) -> None:
        if not self.alive:
            return
        self._pump(self.engine.handle(SilenceCheck(now=self.sim.now)))

    # ------------------------------------------------------------------

    def handle(self, message: object, sender: Hashable) -> None:
        if not self.alive:
            return
        self._pump(self.engine.handle(
            MessageReceived(message, sender=sender, now=self.sim.now)
        ))

    def _pump(self, effects) -> None:
        """Perform engine effects on the datagram transport.  Data-plane
        effects (Clip/StopThread/CloseChildren/Backoff) have no meaning
        here: keep-alives stand in for the streams."""
        for effect in effects:
            if isinstance(effect, Send):
                destination = (
                    SERVER_ADDRESS if effect.to == SERVER else effect.to
                )
                self.network.send(self.node_id, destination, effect.message)


class ServerActor:
    """The coordination authority: a datagram driver around
    :class:`ServerEngine`."""

    def __init__(
        self,
        core: CoordinationServer,
        sim: Simulator,
        network: MessageNetwork,
        probe_timeout: float = 0.5,
    ) -> None:
        self.core = core
        self.sim = sim
        self.network = network
        self.engine = ServerEngine(core, probe_timeout=probe_timeout)
        self.repairs: list[RepairRecord] = []
        self._crash_times: dict[int, float] = {}
        #: callback the harness sets to learn about admitted peers
        self.on_admit = None
        self._reply_to: Optional[int] = None

    # ------------------------------------------------------------------

    def note_crash(self, node_id: int) -> None:
        """The harness records ground-truth crash time (for latency stats)."""
        self._crash_times[node_id] = self.sim.now

    def handle(self, message: object, sender: Hashable) -> None:
        if isinstance(message, JoinRequest):
            self._reply_to = message.reply_to
        self._pump(self.engine.handle(
            MessageReceived(message, sender=sender, now=self.sim.now)
        ))

    def _pump(self, effects) -> None:
        for effect in effects:
            if isinstance(effect, Send):
                self.network.send(SERVER_ADDRESS, effect.to, effect.message)
            elif isinstance(effect, StartTimer):
                self.sim.schedule_after(
                    effect.delay,
                    lambda _sim, key=effect.key: self._pump(
                        self.engine.handle(TimerFired(key))
                    ),
                    label="probe-timeout",
                )
            elif isinstance(effect, Admitted):
                if self.on_admit is not None:
                    self.on_admit(effect.node_id, self._reply_to)
            elif isinstance(effect, ComplaintNoted):
                self.repairs.append(RepairRecord(
                    victim=effect.suspect,
                    crashed_at=self._crash_times.get(
                        effect.suspect, self.sim.now),
                    first_complaint_at=self.sim.now,
                ))
            elif isinstance(effect, PeerDeparted):
                if effect.reason == "crash":
                    for record in self.repairs:
                        if (record.victim == effect.node_id
                                and record.repaired_at is None):
                            record.repaired_at = self.sim.now
            # CloseConnection: the datagram transport has no connections.
