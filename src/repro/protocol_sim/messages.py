"""Compatibility shim: the protocol messages moved to
:mod:`repro.protocol.messages` (the sans-IO protocol core shares them
across the simulator, virtual-net and live-transport drivers).

.. deprecated:: PR 7
    Import from :mod:`repro.protocol.messages` in new code.  This
    module only re-exports that vocabulary so pre-PR-7 imports keep
    working; nothing in the repo imports through it any more
    (``tests/test_protocol_sim.py`` pins that the re-exports stay the
    identical class objects), and it will be dropped once external
    callers have had a release to migrate.
"""

from ..protocol.messages import (  # noqa: F401
    SERVER_ADDRESS,
    AttachChild,
    ComplaintMsg,
    CongestionDrop,
    CongestionRestore,
    DetachChild,
    JoinGrant,
    JoinRequest,
    KeepAlive,
    LeaveRequest,
    Probe,
    ProbeAck,
    SetParent,
    ThreadRemoved,
)

__all__ = [
    "SERVER_ADDRESS",
    "AttachChild",
    "ComplaintMsg",
    "CongestionDrop",
    "CongestionRestore",
    "DetachChild",
    "JoinGrant",
    "JoinRequest",
    "KeepAlive",
    "LeaveRequest",
    "Probe",
    "ProbeAck",
    "SetParent",
    "ThreadRemoved",
]
