"""Compatibility shim: the protocol messages moved to
:mod:`repro.protocol.messages` (the sans-IO protocol core shares them
across the simulator, virtual-net and live-transport drivers).  Import
from there in new code; this module re-exports the full vocabulary so
existing imports keep working.
"""

from ..protocol.messages import (  # noqa: F401
    SERVER_ADDRESS,
    AttachChild,
    ComplaintMsg,
    CongestionDrop,
    CongestionRestore,
    DetachChild,
    JoinGrant,
    JoinRequest,
    KeepAlive,
    LeaveRequest,
    Probe,
    ProbeAck,
    SetParent,
    ThreadRemoved,
)

__all__ = [
    "SERVER_ADDRESS",
    "AttachChild",
    "ComplaintMsg",
    "CongestionDrop",
    "CongestionRestore",
    "DetachChild",
    "JoinGrant",
    "JoinRequest",
    "KeepAlive",
    "LeaveRequest",
    "Probe",
    "ProbeAck",
    "SetParent",
    "ThreadRemoved",
]
