"""Message-level deployment of the §3 protocols.

Actors exchange concrete datagrams over a latency/loss network on the
event engine: keep-alives stand in for the data stream, silent threads
trigger complaints, the server probes suspects and splices them out.
This layer measures what the function-call control plane cannot —
detection/repair *latencies*, spurious-complaint suppression, and the
server's message/byte load.
"""

from ..protocol.messages import (
    SERVER_ADDRESS,
    AttachChild,
    ComplaintMsg,
    CongestionDrop,
    CongestionRestore,
    DetachChild,
    ThreadRemoved,
    JoinGrant,
    JoinRequest,
    KeepAlive,
    LeaveRequest,
    Probe,
    ProbeAck,
    SetParent,
)
from .actors import PeerActor, RepairRecord, ServerActor
from .harness import ProtocolConfig, ProtocolSimulation
from .network import MessageNetwork, NetworkStats

__all__ = [
    "SERVER_ADDRESS",
    "AttachChild",
    "ComplaintMsg",
    "CongestionDrop",
    "CongestionRestore",
    "DetachChild",
    "ThreadRemoved",
    "JoinGrant",
    "JoinRequest",
    "KeepAlive",
    "LeaveRequest",
    "MessageNetwork",
    "NetworkStats",
    "PeerActor",
    "Probe",
    "ProbeAck",
    "ProtocolConfig",
    "ProtocolSimulation",
    "RepairRecord",
    "ServerActor",
    "SetParent",
]
