"""Harness: build a whole actor deployment and drive scenarios.

One call wires the event engine, the latency network, the server actor
(wrapping the library's matrix logic) and a peer actor per node.  The
harness offers the experiment verbs — grow, crash, leave, settle — and
reports repair-latency and message-load statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.server import CoordinationServer
from ..protocol.messages import SERVER_ADDRESS, JoinRequest, LeaveRequest
from ..sim.engine import Simulator
from .actors import PeerActor, RepairRecord, ServerActor
from .network import MessageNetwork


@dataclass
class ProtocolConfig:
    """Deployment parameters.

    Attributes:
        k, d: Overlay geometry.
        keepalive_interval: Period of per-thread keep-alives.
        silence_timeout: Silence before a child complains.
        probe_timeout: Server's probe patience before repairing.
        base_latency, jitter: One-way network delay model.
        message_loss: Per-message drop probability.
        insert_mode: Matrix row insertion ("append" or §5 "uniform").
        seed: Root seed.
    """

    k: int = 16
    d: int = 3
    insert_mode: str = "append"
    keepalive_interval: float = 0.2
    silence_timeout: float = 0.5
    probe_timeout: float = 0.3
    base_latency: float = 0.02
    jitter: float = 0.02
    message_loss: float = 0.0
    seed: Optional[int] = None


class ProtocolSimulation:
    """A live actor deployment of the §3 protocols."""

    def __init__(self, config: ProtocolConfig) -> None:
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.sim = Simulator()
        self.network = MessageNetwork(
            self.sim, rng,
            base_latency=config.base_latency,
            jitter=config.jitter,
            loss_rate=config.message_loss,
        )
        self.core = CoordinationServer(config.k, config.d, rng,
                                       insert_mode=config.insert_mode)
        self.server = ServerActor(self.core, self.sim, self.network,
                                  probe_timeout=config.probe_timeout)
        self.network.register(SERVER_ADDRESS, self.server)
        self.peers: dict[int, PeerActor] = {}
        self._next_transport = 0
        self.server.on_admit = self._on_admit

    # ------------------------------------------------------------------

    def _on_admit(self, node_id: int, _reply_to: int) -> None:
        peer = PeerActor(
            node_id, self.sim, self.network,
            keepalive_interval=self.config.keepalive_interval,
            silence_timeout=self.config.silence_timeout,
        )
        self.peers[node_id] = peer
        self.network.register(node_id, peer)
        peer.start()

    def join(self) -> None:
        """Issue one join request (admitted after a network round-trip)."""
        self._next_transport += 1
        self.network.send(
            f"joiner-{self._next_transport}", SERVER_ADDRESS,
            JoinRequest(reply_to=self._next_transport),
        )

    def grow(self, count: int, settle: float = 0.0) -> None:
        """Issue ``count`` joins; optionally run the clock to settle."""
        for _ in range(count):
            self.join()
        if settle:
            self.run(settle)

    def crash(self, node_id: int) -> None:
        """Ground-truth non-ergodic failure of a peer."""
        peer = self.peers[node_id]
        peer.crash()
        self.server.note_crash(node_id)

    def leave(self, node_id: int) -> None:
        """Graceful good-bye."""
        self.network.send(node_id, SERVER_ADDRESS, LeaveRequest(node_id=node_id))

    def congest(self, node_id: int) -> None:
        """The peer reports congestion and asks to shed one thread."""
        from ..protocol.messages import CongestionDrop

        self.network.send(node_id, SERVER_ADDRESS,
                          CongestionDrop(node_id=node_id))

    def uncongest(self, node_id: int) -> None:
        """The peer reports recovery and asks for a thread back."""
        from ..protocol.messages import CongestionRestore

        self.network.send(node_id, SERVER_ADDRESS,
                          CongestionRestore(node_id=node_id))

    def run(self, duration: float) -> None:
        """Advance simulated time by ``duration``."""
        self.sim.run(until=self.sim.now + duration)

    # ------------------------------------------------------------------

    @property
    def repairs(self) -> list[RepairRecord]:
        return self.server.repairs

    def completed_repairs(self) -> list[RepairRecord]:
        return [r for r in self.repairs if r.repaired_at is not None]

    def repair_latencies(self) -> list[float]:
        return [r.repair_latency for r in self.completed_repairs()]

    def consistency_check(self) -> bool:
        """Do the live peers' parent/child views match the matrix?

        Spot-checks the eventual-consistency invariant: after the network
        settles, every working peer's view of its threads must equal the
        server's matrix.
        """
        matrix = self.core.matrix
        for node_id, peer in self.peers.items():
            if not peer.alive or node_id not in matrix:
                continue
            expected_parents = matrix.parents_of(node_id)
            if peer.parents != expected_parents:
                return False
            expected_children = {
                column: child
                for column, child in matrix.children_of(node_id).items()
                if child is not None
            }
            if peer.children != expected_children:
                return False
        return True
