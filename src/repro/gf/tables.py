"""Lookup tables for GF(2^8) arithmetic.

The field is constructed as GF(2)[x] / (x^8 + x^4 + x^3 + x^2 + 1), i.e.
with the primitive polynomial 0x11D that is also used by the Rijndael-
adjacent coding literature and by practical network coding implementations
(Chou, Wu, Jain 2003).  The generator element is ``x`` (0x02), which is
primitive for this polynomial, so ``exp``/``log`` tables cover every
non-zero element.

All tables are numpy ``uint8``/``int16`` arrays built once at import time;
every operation in :mod:`repro.gf.field` and :mod:`repro.gf.linalg` is a
vectorised table lookup.
"""

from __future__ import annotations

import numpy as np

#: Order of the field.
FIELD_SIZE = 256

#: The primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D).
PRIMITIVE_POLY = 0x11D

#: The generator element used for the exp/log tables.
GENERATOR = 0x02


def _build_exp_log() -> tuple[np.ndarray, np.ndarray]:
    """Build exponential and logarithm tables for the field.

    ``exp[i] = g**i`` for ``i in [0, 2*(q-1))`` (doubled so products of two
    logs never need an explicit modular reduction), and ``log[exp[i]] = i``
    for ``i in [0, q-1)``.  ``log[0]`` is set to a sentinel that callers must
    never use; multiplication routines special-case zero operands instead.
    """
    exp = np.zeros(2 * (FIELD_SIZE - 1), dtype=np.uint8)
    log = np.zeros(FIELD_SIZE, dtype=np.int16)
    value = 1
    for i in range(FIELD_SIZE - 1):
        exp[i] = value
        log[value] = i
        value <<= 1
        if value & 0x100:
            value ^= PRIMITIVE_POLY
    exp[FIELD_SIZE - 1:] = exp[: FIELD_SIZE - 1]
    log[0] = -1  # sentinel: log of zero is undefined
    return exp, log


#: ``EXP[i]`` is the generator raised to the ``i``-th power (doubled range).
EXP, LOG = _build_exp_log()


def _build_mul_table() -> np.ndarray:
    """Build the full 256x256 multiplication table.

    64 KiB of memory buys branch-free vectorised multiplication:
    ``MUL[a, b] == a * b`` in the field.
    """
    a = np.arange(FIELD_SIZE, dtype=np.int16)
    log_a = LOG[a][:, None]
    log_b = LOG[a][None, :]
    table = EXP[(log_a + log_b) % (FIELD_SIZE - 1)].astype(np.uint8)
    table[0, :] = 0
    table[:, 0] = 0
    return table


#: ``MUL[a, b]`` is the field product of ``a`` and ``b``.
MUL = _build_mul_table()


def _build_inv_table() -> np.ndarray:
    """Build the multiplicative-inverse table; ``INV[0]`` is 0 (sentinel)."""
    inv = np.zeros(FIELD_SIZE, dtype=np.uint8)
    nonzero = np.arange(1, FIELD_SIZE, dtype=np.int16)
    inv[1:] = EXP[(FIELD_SIZE - 1 - LOG[nonzero]) % (FIELD_SIZE - 1)]
    return inv


#: ``INV[a]`` is the multiplicative inverse of ``a`` (``INV[0] == 0``).
INV = _build_inv_table()
