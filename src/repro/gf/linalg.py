"""Dense linear algebra over GF(2^8).

Matrices are 2-D numpy ``uint8`` arrays.  Everything here is exact
arithmetic — there is no conditioning concern, only rank structure.  The
work-horses are :func:`rref` (in-place-style reduced row echelon form used
by the RLNC decoder) and :func:`rank`, :func:`solve`, :func:`inverse`,
:func:`random_full_rank` used throughout the coding and erasure-baseline
packages.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .field import scale_row
from .tables import FIELD_SIZE, INV, MUL


def _as_matrix(a: np.ndarray) -> np.ndarray:
    matrix = np.asarray(a, dtype=np.uint8)
    if matrix.ndim != 2:
        raise ValueError("expected a 2-D matrix")
    return matrix


def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(256).

    Implemented as, for each row of ``a``, an XOR-accumulation of scaled
    rows of ``b``; complexity O(n*m*p) byte operations but each is a
    vectorised numpy op over the trailing dimension.
    """
    a = _as_matrix(a)
    b = _as_matrix(b)
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch {a.shape} @ {b.shape}")
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.uint8)
    for j in range(a.shape[1]):
        column = a[:, j]
        nonzero = np.nonzero(column)[0]
        if nonzero.size == 0:
            continue
        # out[i] ^= a[i, j] * b[j]  for all i with a[i, j] != 0
        out[nonzero] ^= MUL[column[nonzero][:, None], b[j][None, :]]
    return out


def matvec(a: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Matrix–vector product over GF(256)."""
    v = np.asarray(v, dtype=np.uint8)
    return matmul(a, v[:, None])[:, 0]


def rref(a: np.ndarray, ncols: Optional[int] = None) -> tuple[np.ndarray, list[int]]:
    """Reduced row echelon form.

    Returns ``(R, pivots)`` where ``R`` is a new matrix in RREF and
    ``pivots`` lists the pivot column of each nonzero row.  If ``ncols`` is
    given, elimination only chooses pivots among the first ``ncols``
    columns (the remaining columns ride along — this is how an augmented
    ``[coefficients | payload]`` matrix is decoded).
    """
    r = _as_matrix(a).copy()
    rows, cols = r.shape
    pivot_limit = cols if ncols is None else min(ncols, cols)
    pivots: list[int] = []
    row = 0
    for col in range(pivot_limit):
        if row >= rows:
            break
        pivot_row = None
        for candidate in range(row, rows):
            if r[candidate, col]:
                pivot_row = candidate
                break
        if pivot_row is None:
            continue
        if pivot_row != row:
            r[[row, pivot_row]] = r[[pivot_row, row]]
        pivot_value = int(r[row, col])
        if pivot_value != 1:
            r[row] = scale_row(r[row], int(INV[pivot_value]))
        column = r[:, col].copy()
        column[row] = 0
        eliminate = np.nonzero(column)[0]
        if eliminate.size:
            r[eliminate] ^= MUL[column[eliminate][:, None], r[row][None, :]]
        pivots.append(col)
        row += 1
    return r, pivots


def rank(a: np.ndarray) -> int:
    """Rank of a matrix over GF(256)."""
    if np.asarray(a).size == 0:
        return 0
    _, pivots = rref(a)
    return len(pivots)


def solve(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``a @ x = b`` for square, invertible ``a``.

    ``b`` may be a vector or a matrix of stacked right-hand sides.
    Raises ``np.linalg.LinAlgError`` if ``a`` is singular.
    """
    a = _as_matrix(a)
    n = a.shape[0]
    if a.shape[1] != n:
        raise ValueError("solve requires a square matrix")
    rhs = np.asarray(b, dtype=np.uint8)
    vector = rhs.ndim == 1
    if vector:
        rhs = rhs[:, None]
    augmented = np.concatenate([a, rhs], axis=1)
    reduced, pivots = rref(augmented, ncols=n)
    if len(pivots) != n:
        raise np.linalg.LinAlgError("matrix is singular over GF(256)")
    solution = reduced[:n, n:]
    return solution[:, 0] if vector else solution


def inverse(a: np.ndarray) -> np.ndarray:
    """Matrix inverse over GF(256); raises on singular input."""
    a = _as_matrix(a)
    n = a.shape[0]
    return solve(a, np.eye(n, dtype=np.uint8))


def is_full_rank(a: np.ndarray) -> bool:
    """True if the matrix has full row-or-column rank (the smaller dim)."""
    a = _as_matrix(a)
    return rank(a) == min(a.shape)


def random_matrix(rows: int, cols: int, rng: np.random.Generator) -> np.ndarray:
    """Uniformly random matrix over GF(256)."""
    return rng.integers(0, FIELD_SIZE, size=(rows, cols), dtype=np.uint8)


def random_full_rank(n: int, rng: np.random.Generator, max_tries: int = 64) -> np.ndarray:
    """Draw a uniformly random invertible n×n matrix by rejection sampling.

    A random matrix over GF(256) is invertible with probability
    ``prod_{i>=1} (1 - 256^-i) > 0.996``, so rejection terminates fast.
    """
    for _ in range(max_tries):
        candidate = random_matrix(n, n, rng)
        if rank(candidate) == n:
            return candidate
    raise RuntimeError("failed to sample an invertible matrix (astronomically unlikely)")


def nullity(a: np.ndarray) -> int:
    """Dimension of the null space (columns minus rank)."""
    a = _as_matrix(a)
    return a.shape[1] - rank(a)


def vandermonde(rows: int, cols: int) -> np.ndarray:
    """Vandermonde matrix V[i, j] = alpha_i^j with distinct alpha_i.

    Any ``cols`` rows of a Vandermonde built from distinct evaluation
    points are linearly independent, which makes it an MDS generator used
    by the Reed–Solomon-style erasure baseline.
    """
    from .field import power

    if rows >= FIELD_SIZE:
        raise ValueError("at most 255 distinct nonzero evaluation points exist")
    v = np.zeros((rows, cols), dtype=np.uint8)
    for i in range(rows):
        alpha = i + 1  # distinct nonzero points
        for j in range(cols):
            v[i, j] = power(alpha, j)
    return v
