"""Finite-field arithmetic over GF(2^8) — the substrate for network coding.

Public API:

* :mod:`repro.gf.field` — scalar/vector element arithmetic (``add``,
  ``mul``, ``inv``, ``div``, ``power``, ``addmul_row``).
* :mod:`repro.gf.linalg` — dense matrix algebra (``matmul``, ``rref``,
  ``rank``, ``solve``, ``inverse``, ``vandermonde``).
"""

from .field import add, addmul_row, div, inv, mul, power, scale_row, sub
from .linalg import (
    inverse,
    is_full_rank,
    matmul,
    matvec,
    nullity,
    rank,
    random_full_rank,
    random_matrix,
    rref,
    solve,
    vandermonde,
)
from .tables import FIELD_SIZE, GENERATOR, PRIMITIVE_POLY

__all__ = [
    "FIELD_SIZE",
    "GENERATOR",
    "PRIMITIVE_POLY",
    "add",
    "addmul_row",
    "div",
    "inv",
    "inverse",
    "is_full_rank",
    "matmul",
    "matvec",
    "mul",
    "nullity",
    "power",
    "random_full_rank",
    "random_matrix",
    "rank",
    "rref",
    "scale_row",
    "solve",
    "sub",
    "vandermonde",
]
