"""Finite-field arithmetic over GF(2^8) — the substrate for network coding.

Public API:

* :mod:`repro.gf.field` — scalar/vector element arithmetic (``add``,
  ``mul``, ``inv``, ``div``, ``power``).
* :mod:`repro.gf.kernels` — batched hot-path kernels (``addmul_row``,
  ``addmul_rows``, ``mix_rows``, ``eliminate``, ``gemm``) and the
  reusable scratch :class:`~repro.gf.kernels.Workspace`.
* :mod:`repro.gf.linalg` — dense matrix algebra (``matmul``, ``rref``,
  ``rank``, ``solve``, ``inverse``, ``vandermonde``).
"""

from .field import add, addmul_row, div, inv, mul, power, scale_row, sub
from .kernels import Workspace, addmul_rows, eliminate, gemm, mix_rows
from .linalg import (
    inverse,
    is_full_rank,
    matmul,
    matvec,
    nullity,
    rank,
    random_full_rank,
    random_matrix,
    rref,
    solve,
    vandermonde,
)
from .tables import FIELD_SIZE, GENERATOR, PRIMITIVE_POLY

__all__ = [
    "FIELD_SIZE",
    "GENERATOR",
    "PRIMITIVE_POLY",
    "Workspace",
    "add",
    "addmul_row",
    "addmul_rows",
    "div",
    "eliminate",
    "gemm",
    "mix_rows",
    "inv",
    "inverse",
    "is_full_rank",
    "matmul",
    "matvec",
    "mul",
    "nullity",
    "power",
    "random_full_rank",
    "random_matrix",
    "rank",
    "rref",
    "scale_row",
    "solve",
    "sub",
    "vandermonde",
]
