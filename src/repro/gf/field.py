"""Scalar and vectorised element-wise arithmetic in GF(2^8).

These functions accept plain Python integers or numpy arrays of ``uint8``
and return the same shape.  Addition in a characteristic-2 field is XOR;
multiplication and inversion are table lookups against the tables built in
:mod:`repro.gf.tables`.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .kernels import addmul_row, scale_row  # noqa: F401  (canonical home)
from .tables import EXP, FIELD_SIZE, INV, LOG, MUL

Element = Union[int, np.ndarray]


def validate(a: Element) -> None:
    """Raise ``ValueError`` if ``a`` contains values outside the field."""
    arr = np.asarray(a)
    if arr.size and (arr.min() < 0 or arr.max() >= FIELD_SIZE):
        raise ValueError(f"value out of GF({FIELD_SIZE}) range")


def add(a: Element, b: Element) -> Element:
    """Field addition (XOR). Works element-wise on arrays."""
    if isinstance(a, (int, np.integer)) and isinstance(b, (int, np.integer)):
        return int(a) ^ int(b)
    return np.bitwise_xor(a, b)


# Subtraction equals addition in characteristic 2.
sub = add


def mul(a: Element, b: Element) -> Element:
    """Field multiplication via the 64 KiB lookup table."""
    if isinstance(a, (int, np.integer)) and isinstance(b, (int, np.integer)):
        return int(MUL[int(a), int(b)])
    return MUL[a, b]


def inv(a: Element) -> Element:
    """Multiplicative inverse.  Raises ``ZeroDivisionError`` for scalar 0."""
    if isinstance(a, (int, np.integer)):
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(256)")
        return int(INV[int(a)])
    if np.any(np.asarray(a) == 0):
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return INV[a]


def div(a: Element, b: Element) -> Element:
    """Field division ``a / b``.  Division by zero raises."""
    return mul(a, inv(b))


def power(a: int, n: int) -> int:
    """Raise scalar ``a`` to the integer power ``n`` (``n`` may be negative)."""
    if a == 0:
        if n == 0:
            return 1
        if n < 0:
            raise ZeroDivisionError("0 has no inverse in GF(256)")
        return 0
    exponent = (int(LOG[a]) * n) % (FIELD_SIZE - 1)
    return int(EXP[exponent])


# ``scale_row`` and ``addmul_row`` live in :mod:`repro.gf.kernels` (the
# single implementation of ``dest ^= scalar * src``) and are re-exported
# here for the historical import path.
