"""Batched GF(2^8) kernels — the single home of every RLNC inner loop.

Everything the decoder, encoder, recoder and dense linear algebra need
reduces to four primitives over ``uint8`` arrays:

* :func:`addmul_row` — ``dest ^= scalar * src`` (the scalar inner loop);
* :func:`addmul_rows` — the batched outer-product form
  ``dest[i] ^= scalars[i] * src`` for many rows at once;
* :func:`mix_rows` — ``XOR_i scalars[i] * rows[i]``, the random-mixture
  primitive behind encoding, recoding and forward elimination;
* :func:`combine_rows` — the batched-combination gemm
  ``coeffs (m, n) @ rows (n, width)`` over GF(256): many independent
  mixtures of one basis in a single gather + reduction (the
  ``emit_batch`` fast path);
* :func:`gemm` — LOG/EXP-based matrix–matrix multiply with zero masking.

Contract (see ``docs/performance.md``): all operands are ``uint8``;
``addmul_*`` mutate ``dest`` in place; ``mix_rows`` writes into ``out``
when given one and otherwise allocates.  A :class:`Workspace` carries
reusable scratch buffers so steady-state hot loops (the progressive
decoder, the per-slot emit loop) perform no temporary allocations.

The batched product is computed as one gather ``MUL_FLAT[a * 256 + b]``
with **uint16** flat indices: the table has exactly ``2^16`` entries, so
every possible index value is in range and ``np.take(..., mode="clip")``
can skip per-element bounds handling.  That one trick makes the batched
kernels ~3x faster than the equivalent 2-D fancy indexing
``MUL[scalars[:, None], rows]`` (measured in ``benchmarks/microbench.py``).

Nothing in this module knows about packets, generations or overlays — it
is a pure array substrate, kept separate so there is exactly one
implementation of each inner loop in the codebase.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tables import EXP, FIELD_SIZE, LOG, MUL

#: Flat (contiguous) view of the 256x256 product table, for flat-index
#: gathers: ``MUL[a, b] == MUL_FLAT[a * 256 + b]``.  Size 65536 == the
#: uint16 range, so uint16 indices can never be out of bounds.
MUL_FLAT = np.ascontiguousarray(MUL.reshape(-1))

#: ``SHIFT8[a] == a << 8`` as uint16 — the row offset of ``a`` in MUL_FLAT.
SHIFT8 = (np.arange(FIELD_SIZE, dtype=np.uint16) << 8)


class Workspace:
    """Reusable scratch buffers for the batched kernels.

    Hot-path owners (one per decoder/encoder) keep a workspace and pass it
    to :func:`mix_rows` / :func:`addmul_rows` / :func:`eliminate`; the
    buffers grow monotonically to the largest size requested and are then
    reused, so steady-state calls allocate nothing.
    """

    __slots__ = ("_u8", "_u16", "_row")

    def __init__(self) -> None:
        self._u8: Optional[np.ndarray] = None
        self._u16: Optional[np.ndarray] = None
        self._row: Optional[np.ndarray] = None

    def u8(self, n: int, width: int) -> np.ndarray:
        """A uint8 scratch of shape ``(n, width)`` (contents undefined)."""
        size = n * width
        if self._u8 is None or self._u8.size < size:
            self._u8 = np.empty(size, dtype=np.uint8)
        return self._u8[:size].reshape(n, width)

    def u16(self, n: int, width: int) -> np.ndarray:
        """A uint16 scratch of shape ``(n, width)`` for flat-index gathers."""
        size = n * width
        if self._u16 is None or self._u16.size < size:
            self._u16 = np.empty(size, dtype=np.uint16)
        return self._u16[:size].reshape(n, width)

    def row(self, width: int) -> np.ndarray:
        """A uint8 row scratch, disjoint from the :meth:`u8` buffer."""
        if self._row is None or self._row.size < width:
            self._row = np.empty(width, dtype=np.uint8)
        return self._row[:width]


def _gathered_products(scalars: np.ndarray, rows: np.ndarray,
                       ws: Workspace) -> np.ndarray:
    """Scratch-backed ``prod[i, j] = scalars[i] * rows[i, j]`` (uint8).

    One vectorised index build plus one bounds-check-free gather; the
    result lives in the workspace and is valid until the next call.
    """
    n, width = rows.shape
    idx = ws.u16(n, width)
    np.add(SHIFT8[scalars][:, None], rows, out=idx)
    prod = ws.u8(n, width)
    # 1-D take over the contiguous scratch: same gather, less iterator
    # overhead than the 2-D form; uint16 is always in range for the
    # 65536-entry table so "clip" never actually clips.
    MUL_FLAT.take(idx.reshape(-1), out=prod.reshape(-1), mode="clip")
    return prod


def addmul_row(dest: np.ndarray, src: np.ndarray, scalar: int) -> None:
    """In-place ``dest ^= scalar * src`` for 1-D uint8 vectors.

    This is the one implementation of the scalar-times-row inner loop;
    :mod:`repro.gf.field` re-exports it for back-compat.
    """
    if scalar == 0:
        return
    if scalar == 1:
        np.bitwise_xor(dest, src, out=dest)
    else:
        np.bitwise_xor(dest, MUL[scalar, src], out=dest)


def scale_row(row: np.ndarray, scalar: int, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Return (or write into ``out``) ``scalar * row`` for a uint8 vector."""
    if out is None:
        if scalar == 0:
            return np.zeros_like(row)
        if scalar == 1:
            return row.copy()
        return MUL[scalar, row]
    if scalar == 0:
        out[...] = 0
    elif scalar == 1:
        np.copyto(out, row)
    else:
        np.take(MUL[scalar], row, out=out)
    return out


def scale_row_inplace(row: np.ndarray, scalar: int) -> None:
    """In-place ``row *= scalar`` (used to normalise pivots)."""
    if scalar == 1:
        return
    if scalar == 0:
        row[...] = 0
        return
    np.take(MUL[scalar], row, out=row)


def addmul_rows(dest: np.ndarray, src: np.ndarray, scalars: np.ndarray,
                workspace: Optional[Workspace] = None) -> None:
    """Batched in-place ``dest[i] ^= scalars[i] * src`` (2-D ``dest``).

    ``src`` is a single row broadcast across every destination row — the
    back-substitution shape: after inserting a new pivot row, every
    existing basis row clears its entry in the new pivot column with one
    call here instead of a Python loop of ``addmul_row``.
    """
    if dest.shape[0] == 0 or not scalars.any():
        return
    ws = workspace if workspace is not None else Workspace()
    n, width = dest.shape
    idx = ws.u16(n, width)
    np.add(SHIFT8[scalars][:, None], src, out=idx)
    prod = ws.u8(n, width)
    MUL_FLAT.take(idx.reshape(-1), out=prod.reshape(-1), mode="clip")
    np.bitwise_xor(dest, prod, out=dest)


def mix_rows(scalars: np.ndarray, rows: np.ndarray,
             out: Optional[np.ndarray] = None,
             workspace: Optional[Workspace] = None) -> np.ndarray:
    """``XOR_i scalars[i] * rows[i]`` — the mixture primitive.

    ``rows`` is ``(n, width)`` uint8, ``scalars`` is ``(n,)`` uint8; the
    result is a ``(width,)`` vector.  Zero scalars contribute nothing
    (``MUL[0, x] == 0``) so callers never pre-filter.  With a
    :class:`Workspace` the intermediate ``(n, width)`` product lands in a
    reused buffer; with ``out`` the reduction writes in place.
    """
    n, width = rows.shape
    if out is None:
        out = np.empty(width, dtype=np.uint8)
    if n == 0:
        out[...] = 0
        return out
    ws = workspace if workspace is not None else Workspace()
    prod = _gathered_products(scalars, rows, ws)
    np.bitwise_xor.reduce(prod, axis=0, out=out)
    return out


def eliminate(row: np.ndarray, basis: np.ndarray, pivot_cols: np.ndarray,
              workspace: Optional[Workspace] = None) -> None:
    """Clear every existing pivot of ``row`` against an RREF basis, in place.

    ``basis`` is ``(r, width)`` with row ``i`` having a unit pivot at
    column ``pivot_cols[i]`` and zeros at every *other* basis pivot (the
    invariant the progressive decoder maintains).  Because of that
    invariant, one gather of the row's values at the pivot columns gives
    the exact multiplier of each basis row, and a single :func:`mix_rows`
    pass fully reduces the row — replacing the seed implementation's
    per-column Python loop (one temp array per ``addmul_row``) with one
    gather + one table lookup + one XOR reduction.
    """
    if basis.shape[0] == 0:
        return
    scalars = row[pivot_cols]
    if not scalars.any():
        return
    ws = workspace if workspace is not None else Workspace()
    acc = mix_rows(scalars, basis, out=ws.row(row.shape[0]), workspace=ws)
    np.bitwise_xor(row, acc, out=row)


def combine_rows(coeffs: np.ndarray, rows: np.ndarray,
                 out: Optional[np.ndarray] = None,
                 workspace: Optional[Workspace] = None,
                 block_elems: int = 1 << 22) -> np.ndarray:
    """Batched-combination gemm: ``out[i] = XOR_j coeffs[i, j] * rows[j]``.

    The many-mixtures form of :func:`mix_rows` — a GF(256) matrix–matrix
    product ``coeffs (m, n) @ rows (n, width) -> (m, width)`` computed
    with the same uint16 flat-gather trick as the scalar kernels (one
    index build, one bounds-check-free table gather, one XOR reduction
    per block), so ``m`` mixtures cost one numpy call chain instead of
    ``m`` of them.  Bit-identical to ``m`` separate ``mix_rows`` calls:
    GF arithmetic is exact, only the batching changes.

    ``block_elems`` bounds the intermediate product: batches whose
    ``m * n * width`` exceeds it are processed in row blocks, keeping
    scratch memory flat no matter how large the fan-out gets.
    """
    coeffs = np.ascontiguousarray(coeffs, dtype=np.uint8)
    if coeffs.ndim != 2 or rows.ndim != 2:
        raise ValueError("combine_rows expects 2-D coeffs and rows")
    m, n = coeffs.shape
    if n != rows.shape[0]:
        raise ValueError(f"shape mismatch {coeffs.shape} @ {rows.shape}")
    width = rows.shape[1]
    if out is None:
        out = np.empty((m, width), dtype=np.uint8)
    if m == 0:
        return out
    if n == 0:
        out[...] = 0
        return out
    ws = workspace if workspace is not None else Workspace()
    step = m if n * width == 0 else max(1, block_elems // (n * width))
    for i0 in range(0, m, step):
        i1 = min(i0 + step, m)
        chunk = i1 - i0
        idx = ws.u16(chunk * n, width).reshape(chunk, n, width)
        np.add(SHIFT8[coeffs[i0:i1]][:, :, None], rows[None, :, :], out=idx)
        prod = ws.u8(chunk * n, width).reshape(chunk, n, width)
        MUL_FLAT.take(idx.reshape(-1), out=prod.reshape(-1), mode="clip")
        np.bitwise_xor.reduce(prod, axis=1, out=out[i0:i1])
    return out


def gemm(a: np.ndarray, b: np.ndarray, block: int = 32) -> np.ndarray:
    """Matrix–matrix product over GF(256) via LOG/EXP with zero masking.

    ``out[i, k] = XOR_j a[i, j] * b[j, k]``.  Products are computed as
    ``EXP[LOG[a] + LOG[b]]`` on blocks of the inner dimension (the EXP
    table is doubled so the log sum never needs a modular reduction), with
    positions where either operand is zero masked to zero afterwards —
    ``LOG[0]`` is a sentinel whose wrapped lookup is discarded by the
    mask.  Memory is bounded at ``rows x block x cols`` per step.
    """
    a = np.ascontiguousarray(a, dtype=np.uint8)
    b = np.ascontiguousarray(b, dtype=np.uint8)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("gemm expects 2-D matrices")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch {a.shape} @ {b.shape}")
    n, m = a.shape
    p = b.shape[1]
    out = np.zeros((n, p), dtype=np.uint8)
    log_a = LOG[a]  # int16; -1 sentinel where a == 0
    log_b = LOG[b]
    for j0 in range(0, m, block):
        j1 = min(j0 + block, m)
        logs = log_a[:, j0:j1, None] + log_b[None, j0:j1, :]
        prod = EXP[logs]  # negative sentinel sums wrap; masked out below
        prod[(a[:, j0:j1, None] == 0) | (b[None, j0:j1, :] == 0)] = 0
        out ^= np.bitwise_xor.reduce(prod, axis=1)
    return out
