"""The paper's primary contribution: overlay construction and maintenance.

Public surface:

* :class:`OverlayNetwork` — the facade most applications want.
* :class:`CoordinationServer` — the raw hello/good-bye/repair protocols.
* :class:`ThreadMatrix` — the matrix ``M`` (curtain-rod model).
* :class:`RandomGraphOverlay` — the §6 low-delay variant.
* :mod:`repro.core.membership` — the §4 arrival/churn processes.
* :class:`CongestionController` — §5 thread shedding.
* :mod:`repro.core.heterogeneous` — §5 mixed bandwidth classes.
"""

from .congestion import CongestionController, CongestionEvent
from .gossip import GossipJoinProtocol, GossipJoinStats, selection_bias
from .heterogeneous import (
    DEFAULT_CLASSES,
    BandwidthClass,
    class_connectivity_report,
    join_population,
)
from .keys import AppendKeys, UniformKeys
from .matrix import SERVER, Row, ThreadMatrix
from .membership import (
    ArrivalRecord,
    ChurnEpochStats,
    churn_epochs,
    sequential_arrivals,
)
from .node import NodeInfo, NodeStatus
from .overlay import OverlayNetwork
from .protocols import (
    Complaint,
    HelloGrant,
    MessageStats,
    Redirect,
    ThreadAssignment,
)
from .random_graph import RandomGraphOverlay
from .server import CoordinationServer
from .snapshot import (
    load_snapshot,
    restore_server,
    save_snapshot,
    snapshot_server,
)
from .topology import OverlayGraph, build_overlay_graph, hanging_thread_sources

__all__ = [
    "SERVER",
    "DEFAULT_CLASSES",
    "AppendKeys",
    "ArrivalRecord",
    "BandwidthClass",
    "ChurnEpochStats",
    "Complaint",
    "CongestionController",
    "CongestionEvent",
    "CoordinationServer",
    "GossipJoinProtocol",
    "GossipJoinStats",
    "HelloGrant",
    "MessageStats",
    "NodeInfo",
    "NodeStatus",
    "OverlayGraph",
    "OverlayNetwork",
    "RandomGraphOverlay",
    "Redirect",
    "Row",
    "ThreadAssignment",
    "ThreadMatrix",
    "UniformKeys",
    "build_overlay_graph",
    "churn_epochs",
    "class_connectivity_report",
    "hanging_thread_sources",
    "join_population",
    "load_snapshot",
    "restore_server",
    "save_snapshot",
    "selection_bias",
    "snapshot_server",
    "sequential_arrivals",
]
