"""§5 heterogeneous users: mixed bandwidth classes in one overlay.

"The proofs assume equal bandwidth for all the nodes.  However, the
design of the system does not use this fact anywhere."  A DSL user joins
with a small ``d``, a T1 user with a large one; the matrix, protocols and
analysis all support per-row degrees already.  This module provides the
population modelling on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .overlay import OverlayNetwork


@dataclass(frozen=True)
class BandwidthClass:
    """One class of users.

    Attributes:
        name: Human label ("dsl", "cable", "t1", ...).
        degree: Thread count ``d`` for members of this class.
    """

    name: str
    degree: int

    def __post_init__(self) -> None:
        if self.degree < 1:
            raise ValueError("degree must be >= 1")


#: A plausible 2005-era access-link mix used by the examples.
DEFAULT_CLASSES = (
    BandwidthClass("dsl", 2),
    BandwidthClass("cable", 4),
    BandwidthClass("t1", 8),
)


def join_population(
    net: OverlayNetwork,
    classes: Sequence[BandwidthClass],
    weights: Sequence[float],
    count: int,
    rng: np.random.Generator | None = None,
) -> dict[int, BandwidthClass]:
    """Admit ``count`` nodes drawn from a weighted class mix.

    Returns ``node_id -> class`` for the admitted nodes.
    """
    if len(classes) != len(weights):
        raise ValueError("one weight per class required")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    rng = rng or net.rng
    probabilities = np.asarray(weights, dtype=float) / total
    membership: dict[int, BandwidthClass] = {}
    for _ in range(count):
        cls = classes[int(rng.choice(len(classes), p=probabilities))]
        grant = net.join(d=cls.degree)
        membership[grant.node_id] = cls
    return membership


def class_connectivity_report(
    net: OverlayNetwork,
    membership: dict[int, BandwidthClass],
) -> dict[str, dict[str, float]]:
    """Per-class connectivity statistics.

    Returns ``class name -> {"nodes", "mean_connectivity", "mean_fraction"}``
    where ``mean_fraction`` is connectivity divided by the class degree —
    the fraction of nominal bandwidth actually achievable.  Higher-degree
    classes receive proportionally more (priority-encoded streams can then
    deliver them higher resolutions, §5).
    """
    connectivities = net.connectivities(list(membership))
    report: dict[str, dict[str, float]] = {}
    by_class: dict[str, list[tuple[int, int]]] = {}
    for node_id, cls in membership.items():
        by_class.setdefault(cls.name, []).append(
            (connectivities.get(node_id, 0), cls.degree)
        )
    for name, rows in by_class.items():
        conns = [c for c, _ in rows]
        fractions = [c / deg for c, deg in rows]
        report[name] = {
            "nodes": float(len(rows)),
            "mean_connectivity": float(np.mean(conns)),
            "mean_fraction": float(np.mean(fractions)),
        }
    return report
