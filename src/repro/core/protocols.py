"""Protocol messages for the hello / good-bye / repair procedures (§3).

The server is a thin coordination point: it owns the matrix ``M`` and, for
every membership event, tells the affected peers how to re-aim their
streams.  These dataclasses are the messages it exchanges; the simulator
and the examples use them, and :class:`MessageStats` provides the message
accounting reported by experiment E12 (repair cost is O(d) messages per
event).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional



@dataclass(frozen=True)
class ThreadAssignment:
    """One thread handed to a node: receive ``column`` from ``parent``.

    ``parent == SERVER`` means the stream comes directly from the server.
    """

    column: int
    parent: int


@dataclass(frozen=True)
class HelloGrant:
    """Server response to a join: the new node's id and thread set.

    ``redirects`` is non-empty only under random row insertion (§5): when
    the new row lands mid-matrix it splices into existing thread segments,
    and the displaced children must be told to receive from the newcomer.
    """

    node_id: int
    assignments: tuple[ThreadAssignment, ...]
    redirects: tuple["Redirect", ...] = ()

    @property
    def columns(self) -> tuple[int, ...]:
        return tuple(a.column for a in self.assignments)


@dataclass(frozen=True)
class Redirect:
    """Instruction: on ``column``, ``parent`` now streams to ``child``.

    ``child is None`` means the thread becomes hanging (the parent stops
    forwarding on it and reports the free slot to the server pool).
    """

    column: int
    parent: int
    child: Optional[int]


@dataclass(frozen=True)
class Complaint:
    """A child reporting a dead incoming thread to the server."""

    reporter: int
    column: int
    suspect: int


@dataclass
class MessageStats:
    """Counters for every protocol message the server sends or receives."""

    hello_requests: int = 0
    hello_grants: int = 0
    goodbye_requests: int = 0
    complaints: int = 0
    redirects: int = 0
    congestion_notices: int = 0

    def total(self) -> int:
        """Total protocol messages exchanged."""
        return (
            self.hello_requests
            + self.hello_grants
            + self.goodbye_requests
            + self.complaints
            + self.redirects
            + self.congestion_notices
        )

    def snapshot(self) -> dict[str, int]:
        """Plain-dict view for metrics recording."""
        return {
            "hello_requests": self.hello_requests,
            "hello_grants": self.hello_grants,
            "goodbye_requests": self.goodbye_requests,
            "complaints": self.complaints,
            "redirects": self.redirects,
            "congestion_notices": self.congestion_notices,
            "total": self.total(),
        }
