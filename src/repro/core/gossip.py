"""Decentralised joins via gossip (§7, after [12]).

"In corresponding practical schemes, the role of the server can be
decreased still further or even eliminated."  This module implements
that variant: a joining node finds its ``d`` hanging threads *without*
asking the coordination authority to pick them — it random-walks the
overlay from a bootstrap peer, asking each visited node which of its
threads currently hang (a node knows this locally: a thread hangs iff it
streams to no child), and clips from what it saw.

The thread matrix remains the ground truth of who-clips-what (some
registry always exists, even if distributed); what changes is the
*selection distribution*: the walk's visit distribution is not uniform
over hanging threads, so the resulting overlay is a biased version of
§3's.  :func:`selection_bias` quantifies the bias and the X1 ablation
measures its (small) effect on connectivity — the paper's claim that
"the specifics of the protocol are less important than the topological
structure".
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from .matrix import SERVER
from .overlay import OverlayNetwork
from .protocols import HelloGrant


@dataclass
class GossipJoinStats:
    """Accounting for one gossip-driven join."""

    walk_length: int
    peers_probed: int
    threads_seen: int
    columns_chosen: tuple[int, ...] = ()


class GossipJoinProtocol:
    """Join by random-walk discovery instead of server selection.

    Args:
        net: The overlay being grown.
        walk_length: Steps of the discovery walk per join.
        rng: Randomness (defaults to the overlay's).

    The walk moves over working nodes following stream links, biased
    *downstream* (hanging threads live at the frontier — the most recent
    joiners — so following the direction the content flows finds them;
    an unbiased walk mixes over the whole history and can miss the
    frontier entirely).  Visiting the server exposes any unserved rod
    threads.  If the walk discovers fewer than ``d`` distinct hanging
    threads it is extended until enough are found (bounded by
    ``max_extensions``).
    """

    def __init__(
        self,
        net: OverlayNetwork,
        walk_length: int = 8,
        rng: np.random.Generator | None = None,
        max_extensions: int = 20,
        downstream_bias: float = 0.85,
        oversample: float = 1.0,
        choose: str = "first",
    ) -> None:
        if walk_length < 1:
            raise ValueError("walk_length must be >= 1")
        if not 0.0 <= downstream_bias <= 1.0:
            raise ValueError("downstream_bias must be a probability")
        if oversample < 1.0:
            raise ValueError("oversample must be >= 1")
        if choose not in ("first", "random"):
            raise ValueError("choose must be 'first' or 'random'")
        self.net = net
        self.walk_length = walk_length
        self.rng = rng or net.rng
        self.max_extensions = max_extensions
        self.downstream_bias = downstream_bias
        #: Keep walking until ``oversample * d`` distinct threads are known.
        #: Oversampling plus ``choose="random"`` de-biases selection: the
        #: X1 ablation shows greedy first-seen clipping builds deep narrow
        #: braids that forfeit the paper's robustness guarantees — the
        #: *uniformity* of thread selection is load-bearing, exactly the
        #: paper's point that the topological structure is what matters.
        self.oversample = oversample
        self.choose = choose
        self.history: list[GossipJoinStats] = []

    # ------------------------------------------------------------------

    def _neighbours(self, node: int, downstream_only: bool = False) -> list[int]:
        """Working neighbours of ``node`` (SERVER included as a parent).

        ``downstream_only`` restricts to children — the stream direction.
        """
        matrix = self.net.matrix
        failed = self.net.server.failed
        if node == SERVER:
            # the server knows its direct children: first occupants
            firsts = {
                chain[0]
                for chain in (matrix.column_chain(c) for c in range(matrix.k))
                if chain
            }
            return [n for n in firsts if n not in failed]
        linked = set()
        for child in matrix.children_of(node).values():
            if child is not None:
                linked.add(child)
        if not downstream_only or not linked:
            for parent in matrix.parents_of(node).values():
                linked.add(parent)
        return [
            n for n in linked
            if n == SERVER or n not in failed
        ]

    def _hanging_threads_of(self, node: int) -> list[int]:
        """Columns whose hanging thread ``node`` owns (local knowledge)."""
        matrix = self.net.matrix
        if node == SERVER:
            return [c for c in range(matrix.k) if not matrix.column_chain(c)]
        return [
            column
            for column, child in matrix.children_of(node).items()
            if child is None
        ]

    def discover(self, d: int) -> tuple[list[int], GossipJoinStats]:
        working = self.net.working_nodes
        current = SERVER if not working else int(
            working[int(self.rng.integers(0, len(working)))]
        )
        seen_columns: list[int] = []
        seen_set: set[int] = set()
        probed = 0
        steps = 0
        # The hanging frontier sits ~N·d/k hops below a random start, so
        # the extension budget must scale with the population (a node
        # does not know N, but it does know to keep walking until it
        # finds open slots — this is the cap on that persistence).
        budget = (
            self.walk_length * (1 + self.max_extensions)
            + 2 * max(1, self.net.population)
        )
        while steps < budget:
            for column in self._hanging_threads_of(current):
                if column not in seen_set:
                    seen_set.add(column)
                    seen_columns.append(column)
            probed += 1
            if len(seen_set) >= d and steps >= self.walk_length:
                break
            downstream = bool(self.rng.random() < self.downstream_bias)
            neighbours = self._neighbours(current, downstream_only=downstream)
            if not neighbours:
                neighbours = self._neighbours(current)
            if not neighbours:
                break
            current = neighbours[int(self.rng.integers(0, len(neighbours)))]
            steps += 1
        if len(seen_set) < d:
            raise RuntimeError(
                f"gossip walk found only {len(seen_set)} hanging threads "
                f"(need {d}) within budget"
            )
        stats = GossipJoinStats(
            walk_length=steps, peers_probed=probed, threads_seen=len(seen_set)
        )
        return seen_columns, stats

    def join(self, d: int | None = None) -> HelloGrant:
        """One decentralised join; returns the grant as usual."""
        degree = d if d is not None else self.net.d
        target = min(self.net.k,
                     max(degree, int(round(self.oversample * degree))))
        try:
            discovered, stats = self.discover(target)
        except RuntimeError:
            # oversampling may exceed what the walk can find; settle for
            # the minimum the join actually needs
            discovered, stats = self.discover(degree)
        if self.choose == "first":
            # clip the FIRST d distinct threads the walk saw (locality
            # bias — the greedy variant of this ablation)
            columns = discovered[:degree]
        else:
            picks = self.rng.choice(len(discovered), size=degree, replace=False)
            columns = [discovered[int(i)] for i in picks]
        grant = self.net.join(d=degree, columns=columns)
        stats.columns_chosen = tuple(columns)
        self.history.append(stats)
        return grant

    def grow(self, count: int) -> list[int]:
        """Admit ``count`` nodes via gossip joins."""
        return [self.join().node_id for _ in range(count)]


def selection_bias(history: list[GossipJoinStats], k: int) -> float:
    """Total-variation distance of chosen columns from uniform.

    0 means the gossip walk picked columns exactly uniformly (like §3's
    server); 1 means maximal bias.
    """
    counts = Counter()
    total = 0
    for stats in history:
        for column in stats.columns_chosen:
            counts[column] += 1
            total += 1
    if total == 0:
        return 0.0
    uniform = 1.0 / k
    return 0.5 * sum(
        abs(counts.get(column, 0) / total - uniform) for column in range(k)
    )
