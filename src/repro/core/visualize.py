"""ASCII rendering of the thread matrix — the curtain, drawn.

Debugging and teaching aid: print ``M`` the way the paper draws it, rows
in arrival order, one column per server thread, with failures and
hanging threads marked.
"""

from __future__ import annotations

from typing import AbstractSet, Optional

from .matrix import SERVER, ThreadMatrix


def render_matrix(
    matrix: ThreadMatrix,
    failed: Optional[AbstractSet[int]] = None,
    max_rows: int = 40,
) -> str:
    """Render ``M`` as fixed-width text.

    ``#`` marks a one (a clipped thread), ``X`` a one belonging to a
    failed row, ``.`` a zero.  The footer line marks each column's
    hanging-thread owner (``v`` = a working node, ``!`` = dead because
    its owner failed, ``s`` = still on the rod).  Long matrices are
    elided in the middle.
    """
    failed = failed or frozenset()
    node_ids = matrix.node_ids
    lines = []
    header = "node".rjust(8) + " | " + "".join(
        str(c % 10) for c in range(matrix.k)
    )
    lines.append(header)
    lines.append("-" * len(header))

    def row_line(node_id: int) -> str:
        columns = matrix.columns_of(node_id)
        mark = "X" if node_id in failed else "#"
        cells = "".join(
            mark if c in columns else "." for c in range(matrix.k)
        )
        label = f"{node_id}!" if node_id in failed else str(node_id)
        return label.rjust(8) + " | " + cells

    if len(node_ids) <= max_rows:
        shown = node_ids
        for node_id in shown:
            lines.append(row_line(node_id))
    else:
        head = node_ids[: max_rows // 2]
        tail = node_ids[-(max_rows - len(head)) :]
        for node_id in head:
            lines.append(row_line(node_id))
        lines.append(f"{'...':>8} | ({len(node_ids) - len(head) - len(tail)}"
                     " rows elided)")
        for node_id in tail:
            lines.append(row_line(node_id))

    footer = []
    for column in range(matrix.k):
        owner = matrix.hanging_owner(column)
        if owner == SERVER:
            footer.append("s")
        elif owner in failed:
            footer.append("!")
        else:
            footer.append("v")
    lines.append("hanging".rjust(8) + " | " + "".join(footer))
    return "\n".join(lines)


def matrix_summary(matrix: ThreadMatrix,
                   failed: Optional[AbstractSet[int]] = None) -> str:
    """One-line shape summary for logs."""
    failed = failed or frozenset()
    dead = sum(
        1 for c in range(matrix.k)
        if matrix.hanging_owner(c) in failed
    )
    return (
        f"M: {len(matrix)} rows x {matrix.k} cols, "
        f"{len(failed)} failed, {dead} dead hanging threads"
    )
