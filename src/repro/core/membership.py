"""Membership processes: the arrival/failure dynamics of §4.

The analysis builds ``M`` sequentially: each arriving node tosses a coin
*before* joining and enters as a failed node with probability ``p`` (the
paper's time-interchange trick).  Repairs run periodically — once per
*repair interval* — removing all failed rows.  These drivers reproduce
that process exactly, plus a steady-state churn variant with graceful
leaves for the long-running experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from .overlay import OverlayNetwork


@dataclass
class ArrivalRecord:
    """What happened at one sequential-arrival step."""

    step: int
    node_id: int
    failed_on_arrival: bool


def sequential_arrivals(
    net: OverlayNetwork,
    count: int,
    p: float,
    rng: Optional[np.random.Generator] = None,
    repair_interval: Optional[int] = None,
    on_step: Optional[Callable[[ArrivalRecord], None]] = None,
) -> list[ArrivalRecord]:
    """Run the §4 process: ``count`` arrivals, each failed w.p. ``p``.

    Args:
        net: The overlay to grow.
        count: Number of arrivals.
        p: Probability an arrival is (or promptly becomes) a failed node
            within the repair interval.
        rng: Randomness for the failure coins (defaults to the net's rng).
        repair_interval: If given, ``repair_all`` runs every that many
            steps — the periodic repair the paper's model assumes.  If
            None, failures accumulate (the adversarial "no repair yet"
            snapshot used when measuring defects).
        on_step: Optional observer invoked after each arrival.

    Returns the per-step records.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be a probability")
    rng = rng or net.rng
    records = []
    for step in range(count):
        grant = net.join()
        failed = bool(rng.random() < p)
        if failed:
            net.fail(grant.node_id)
        record = ArrivalRecord(step=step, node_id=grant.node_id, failed_on_arrival=failed)
        records.append(record)
        if on_step is not None:
            on_step(record)
        if repair_interval and (step + 1) % repair_interval == 0:
            net.repair_all()
    return records


@dataclass
class ChurnEpochStats:
    """Summary of one churn epoch."""

    epoch: int
    joins: int
    graceful_leaves: int
    failures: int
    repairs: int
    population: int


def churn_epochs(
    net: OverlayNetwork,
    epochs: int,
    join_rate: int,
    leave_probability: float,
    failure_probability: float,
    rng: Optional[np.random.Generator] = None,
    min_population: int = 1,
) -> list[ChurnEpochStats]:
    """Steady-state churn: joins, graceful leaves and repaired failures.

    Each epoch: ``join_rate`` nodes join; every working node leaves
    gracefully w.p. ``leave_probability`` and fails w.p.
    ``failure_probability``; then all failures are repaired (one repair
    interval per epoch).  Population never drops below ``min_population``.
    """
    rng = rng or net.rng
    history = []
    for epoch in range(epochs):
        joins = len(net.grow(join_rate))
        leaves = failures = 0
        for node_id in list(net.working_nodes):
            if net.population <= min_population:
                break
            roll = rng.random()
            if roll < failure_probability:
                net.fail(node_id)
                failures += 1
            elif roll < failure_probability + leave_probability:
                net.leave(node_id)
                leaves += 1
        repairs = len(net.server.failed)
        net.repair_all()
        history.append(
            ChurnEpochStats(
                epoch=epoch,
                joins=joins,
                graceful_leaves=leaves,
                failures=failures,
                repairs=repairs,
                population=net.population,
            )
        )
    return history
