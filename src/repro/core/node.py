"""Per-node registry state kept by the coordination server."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class NodeStatus(enum.Enum):
    """Lifecycle of a peer as the server sees it."""

    WORKING = "working"
    FAILED = "failed"  # non-ergodic failure awaiting repair
    CONGESTED = "congested"  # §5: voluntarily shed one or more threads


@dataclass
class NodeInfo:
    """Registry entry for one peer.

    Attributes:
        node_id: Server-assigned identifier.
        nominal_degree: The node's nominal thread count ``d`` (its
            bandwidth in units); heterogeneous nodes differ here (§5).
        status: Current lifecycle state.
        dropped_threads: Columns shed due to congestion, in drop order,
            so recovery can restore capacity gradually.
        joined_at: Monotonic join sequence number (diagnostics).
    """

    node_id: int
    nominal_degree: int
    status: NodeStatus = NodeStatus.WORKING
    dropped_threads: list[int] = field(default_factory=list)
    joined_at: int = 0

    @property
    def is_working(self) -> bool:
        return self.status is not NodeStatus.FAILED
