"""High-level facade: build, maintain and measure an overlay in a few calls.

:class:`OverlayNetwork` bundles the coordination server, the analysis
tooling and a seeded RNG behind the API most callers want::

    net = OverlayNetwork(k=32, d=4, seed=7)
    net.grow(1000)
    net.fail(net.random_working_node())
    print(net.connectivity_histogram())

Everything is also reachable piecemeal (``net.server``, ``net.matrix``)
for callers that need the raw protocol surface.
"""

from __future__ import annotations

from collections import Counter
from typing import AbstractSet, Optional, Sequence, Union

import numpy as np

from ..analysis.connectivity import all_node_connectivities, node_connectivity
from ..analysis.defects import DefectSummary, exact_defect, sampled_defect
from .matrix import ThreadMatrix
from .protocols import HelloGrant, MessageStats, Redirect
from .server import CoordinationServer
from .topology import OverlayGraph, build_overlay_graph


class OverlayNetwork:
    """A peer-to-peer broadcast overlay per the paper's construction.

    Args:
        k: Server bandwidth in thread units.
        d: Default per-node bandwidth in thread units (``d >= 2`` for the
            paper's guarantees; ``d = 1`` degenerates to chains).
        seed: Seed or Generator for all randomness.
        insert_mode: ``"append"`` (§3) or ``"uniform"`` (§5 hardened).
    """

    def __init__(
        self,
        k: int,
        d: int,
        seed: Union[int, np.random.Generator, None] = None,
        insert_mode: str = "append",
    ) -> None:
        self.rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        self.server = CoordinationServer(k, d, self.rng, insert_mode)

    # ------------------------------------------------------------------
    # Pass-throughs

    @property
    def k(self) -> int:
        return self.server.k

    @property
    def d(self) -> int:
        return self.server.d

    @property
    def matrix(self) -> ThreadMatrix:
        return self.server.matrix

    @property
    def population(self) -> int:
        return self.server.population

    @property
    def mutation_epoch(self) -> int:
        """Structural version of the overlay; bumps on every matrix change.

        Lets consumers (simulators, analyses) cache topology-derived data
        and invalidate precisely when the overlay actually mutated.
        """
        return self.server.matrix.mutation_epoch

    @property
    def failed(self) -> frozenset[int]:
        return frozenset(self.server.failed)

    @property
    def working_nodes(self) -> list[int]:
        return self.server.working_nodes

    @property
    def stats(self) -> MessageStats:
        return self.server.stats

    # ------------------------------------------------------------------
    # Membership

    def join(self, d: Optional[int] = None,
             columns: Optional[Sequence[int]] = None) -> HelloGrant:
        """Admit one node (the hello protocol); returns its grant."""
        return self.server.hello(d, columns)

    def grow(self, count: int, d: Optional[int] = None) -> list[int]:
        """Admit ``count`` nodes; returns their ids."""
        return [self.join(d).node_id for _ in range(count)]

    def leave(self, node_id: int) -> tuple[Redirect, ...]:
        """Graceful departure (the good-bye protocol)."""
        return self.server.goodbye(node_id)

    def fail(self, node_id: int) -> None:
        """Non-ergodic failure: the node goes dark, row kept until repair."""
        self.server.fail(node_id)

    def repair(self, node_id: int) -> tuple[Redirect, ...]:
        """Repair one failed node (splice parents to children)."""
        return self.server.repair(node_id)

    def repair_all(self) -> list[Redirect]:
        """Repair every outstanding failure."""
        return self.server.repair_all()

    def random_working_node(self) -> int:
        """A uniformly random working node id (for fault injection)."""
        working = self.working_nodes
        if not working:
            raise RuntimeError("no working nodes")
        return int(working[int(self.rng.integers(0, len(working)))])

    # ------------------------------------------------------------------
    # Measurement

    def graph(self, with_failures: bool = True) -> OverlayGraph:
        """The working overlay graph (failed vertices removed by default)."""
        failed = self.failed if with_failures else frozenset()
        return build_overlay_graph(self.matrix, failed)

    def connectivity(self, node_id: int) -> int:
        """Edge-connectivity from the server to one node."""
        return node_connectivity(self.matrix, node_id, self.failed)

    def connectivities(self, nodes: Optional[Sequence[int]] = None) -> dict[int, int]:
        """Edge-connectivity from the server for many (default: all) nodes."""
        return all_node_connectivities(self.matrix, self.failed, nodes)

    def connectivity_histogram(self) -> dict[int, int]:
        """Histogram {connectivity value: node count} over working nodes."""
        return dict(Counter(self.connectivities().values()))

    def defect_summary(
        self,
        samples: Optional[int] = 200,
        failed: Optional[AbstractSet[int]] = None,
    ) -> DefectSummary:
        """Defect profile of the current hanging-thread pool.

        ``samples=None`` enumerates every tuple (small ``k`` only).
        """
        failed = self.failed if failed is None else failed
        if samples is None:
            return exact_defect(self.matrix, self.d, failed)
        return sampled_defect(self.matrix, self.d, self.rng, samples, failed)

    def mean_depth(self) -> float:
        """Average shortest-path hop depth of working nodes."""
        depths = self.graph().depths_from_server()
        return float(np.mean(list(depths.values()))) if depths else 0.0
