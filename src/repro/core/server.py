"""The coordination server: hello, good-bye, complaint and repair (§3, §5).

The server (or any centralized authority standing in for it) owns the
thread matrix ``M`` and a registry of peers.  Every membership event is a
small, local edit of ``M`` plus O(d) redirect messages to the peers whose
streams move.  The server never touches content — the data plane is pure
peer-to-peer RLNC.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .keys import AppendKeys, UniformKeys
from .matrix import SERVER, ThreadMatrix
from .node import NodeInfo, NodeStatus
from .protocols import Complaint, HelloGrant, MessageStats, Redirect, ThreadAssignment


class CoordinationServer:
    """Central authority implementing the paper's membership protocols.

    Args:
        k: Server bandwidth in units (thread count).
        d: Default per-node bandwidth in units (thread count); individual
            joins may override it (heterogeneous users, §5).
        rng: Seeded generator; all membership randomness flows through it.
        insert_mode: ``"append"`` for §3's append-at-the-bottom ordering,
            ``"uniform"`` for §5's adversary-hardened random row insertion.
    """

    def __init__(
        self,
        k: int,
        d: int,
        rng: np.random.Generator,
        insert_mode: str = "append",
    ) -> None:
        if d < 1 or d > k:
            raise ValueError(f"need 1 <= d <= k, got d={d}, k={k}")
        if insert_mode not in ("append", "uniform"):
            raise ValueError(f"unknown insert_mode {insert_mode!r}")
        self.k = k
        self.d = d
        self.insert_mode = insert_mode
        self._rng = rng
        allocator = AppendKeys() if insert_mode == "append" else UniformKeys(rng)
        self.matrix = ThreadMatrix(k, allocator)
        self.registry: dict[int, NodeInfo] = {}
        self.failed: set[int] = set()
        #: Registered-and-not-failed ids, maintained on every membership
        #: edit so working-set queries never rescan the registry.
        self._working: set[int] = set()
        self.stats = MessageStats()
        self._next_id = 0
        self._join_sequence = 0

    # ------------------------------------------------------------------
    # Introspection

    @property
    def population(self) -> int:
        """Number of rows currently in the matrix (incl. failed, pre-repair)."""
        return len(self.matrix)

    @property
    def working_nodes(self) -> list[int]:
        """Ids of nodes not currently failed, in matrix row order."""
        if not self.failed:
            return self.matrix.node_ids
        working = self._working
        return [n for n in self.matrix.node_ids if n in working]

    @property
    def working_count(self) -> int:
        """Number of working nodes, without materialising the list."""
        return len(self._working)

    def is_working(self, node_id: int) -> bool:
        return node_id in self._working

    # ------------------------------------------------------------------
    # Hello protocol

    def hello(
        self,
        d: Optional[int] = None,
        columns: Optional[Sequence[int]] = None,
    ) -> HelloGrant:
        """Admit a new node; returns its thread assignments.

        Under append ordering the new node receives the current hanging
        threads of its chosen columns.  Under uniform insertion the new
        row may land mid-matrix; the displaced children are redirected to
        the newcomer (``grant.redirects``).
        """
        degree = self.d if d is None else d
        self.stats.hello_requests += 1
        node_id = self._next_id
        self._next_id += 1
        self.matrix.join(node_id, degree, self._rng, columns)
        self._join_sequence += 1
        self.registry[node_id] = NodeInfo(
            node_id=node_id, nominal_degree=degree, joined_at=self._join_sequence
        )
        self._working.add(node_id)
        assignments = tuple(
            ThreadAssignment(column=column, parent=parent)
            for column, parent in sorted(self.matrix.parents_of(node_id).items())
        )
        redirects = tuple(
            Redirect(column=column, parent=node_id, child=child)
            for column, child in sorted(self.matrix.children_of(node_id).items())
            if child is not None
        )
        self.stats.hello_grants += 1
        self.stats.redirects += len(redirects)
        return HelloGrant(node_id=node_id, assignments=assignments, redirects=redirects)

    # ------------------------------------------------------------------
    # Good-bye protocol

    def goodbye(self, node_id: int) -> tuple[Redirect, ...]:
        """Gracefully remove a node: splice each parent to its child.

        Returns the redirect instructions sent out (one per thread the
        node carried).  Lemma 1: after this the matrix is distributed as
        if the node had never joined.
        """
        self.stats.goodbye_requests += 1
        if node_id in self.failed:
            raise ValueError(f"node {node_id} is failed; use repair()")
        return self._splice_out(node_id)

    # ------------------------------------------------------------------
    # Failures, complaints and repair

    def fail(self, node_id: int) -> None:
        """Mark a node as non-ergodically failed (row kept until repair)."""
        if node_id not in self.registry:
            raise KeyError(f"unknown node {node_id}")
        if node_id in self.failed:
            return
        self.failed.add(node_id)
        self._working.discard(node_id)
        self.registry[node_id].status = NodeStatus.FAILED

    def complain(self, reporter: int, column: int) -> Optional[Complaint]:
        """A child reports its incoming thread on ``column`` is dead.

        Returns the complaint if the suspect parent is indeed failed (the
        server then schedules a repair); None if the parent is healthy
        (spurious complaint, e.g. an ergodic blip that recovered).
        """
        self.stats.complaints += 1
        suspect = self.matrix.parent_in_column(reporter, column)
        if suspect == SERVER or suspect not in self.failed:
            return None
        return Complaint(reporter=reporter, column=column, suspect=suspect)

    def repair(self, node_id: int) -> tuple[Redirect, ...]:
        """Complete the repair of a failed node.

        Performs the steps the node would have done in the good-bye
        protocol: each of its parents redirects its stream to the
        corresponding child, and the row is removed.
        """
        if node_id not in self.failed:
            raise ValueError(f"node {node_id} is not failed")
        redirects = self._splice_out(node_id)
        self.failed.discard(node_id)
        return redirects

    def repair_all(self) -> list[Redirect]:
        """Repair every outstanding failure (end of a repair interval)."""
        redirects: list[Redirect] = []
        for node_id in sorted(self.failed):
            redirects.extend(self.repair(node_id))
        return redirects

    # ------------------------------------------------------------------
    # §5 congestion handling

    def congestion_drop(self, node_id: int, column: Optional[int] = None) -> int:
        """A congested node sheds one thread; parent joins child directly.

        Returns the dropped column.
        """
        info = self.registry[node_id]
        if node_id in self.failed:
            raise ValueError("failed nodes cannot negotiate congestion")
        dropped = self.matrix.drop_thread(node_id, column, self._rng)
        info.dropped_threads.append(dropped)
        info.status = NodeStatus.CONGESTED
        self.stats.congestion_notices += 1
        self.stats.redirects += 1  # parent -> child splice on that column
        return dropped

    def congestion_restore(self, node_id: int) -> int:
        """A recovered node re-acquires one thread (a random zero -> one).

        Per §5 the server picks the column at random among the node's
        zeros.  Returns the added column.
        """
        info = self.registry[node_id]
        if node_id in self.failed:
            raise ValueError("failed nodes cannot negotiate congestion")
        added = self.matrix.add_thread(node_id, None, self._rng)
        if info.dropped_threads:
            info.dropped_threads.pop()
        if not info.dropped_threads:
            info.status = NodeStatus.WORKING
        self.stats.congestion_notices += 1
        self.stats.redirects += 2  # new parent -> node, node -> displaced child
        return added

    # ------------------------------------------------------------------

    def _splice_out(self, node_id: int) -> tuple[Redirect, ...]:
        parents = self.matrix.parents_of(node_id)
        children = self.matrix.children_of(node_id)
        redirects = tuple(
            Redirect(column=column, parent=parents[column], child=children[column])
            for column in sorted(parents)
        )
        self.matrix.leave(node_id)
        self.registry.pop(node_id, None)
        self._working.discard(node_id)
        self.stats.redirects += len(redirects)
        return redirects
