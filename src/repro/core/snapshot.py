"""Overlay snapshots: serialise and restore complete control-plane state.

A long-running coordination server needs checkpoints: the full matrix
(rows, arrival keys, columns), the registry (degrees, statuses, shed
threads) and the failed set, round-trippable through JSON.  Restoring
reproduces the overlay exactly — same topology, same hanging threads,
same pending repairs — so a restarted server resumes where it stopped
(the RNG state is *not* captured: pass a fresh seed; future random
choices differ, which is harmless and unavoidable across restarts).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from .keys import AppendKeys, UniformKeys
from .matrix import ThreadMatrix
from .node import NodeInfo, NodeStatus
from .server import CoordinationServer

#: Snapshot format version.
VERSION = 1


def snapshot_server(server: CoordinationServer) -> dict:
    """Capture a server's complete logical state as a JSON-safe dict."""
    matrix = server.matrix
    rows = []
    for node_id in matrix.node_ids:
        row = matrix.row(node_id)
        info = server.registry[node_id]
        rows.append({
            "node_id": node_id,
            "key": row.key,
            "columns": sorted(row.columns),
            "nominal_degree": info.nominal_degree,
            "status": info.status.value,
            "dropped_threads": list(info.dropped_threads),
            "joined_at": info.joined_at,
        })
    return {
        "version": VERSION,
        "k": server.k,
        "d": server.d,
        "insert_mode": server.insert_mode,
        "next_id": server._next_id,
        "join_sequence": server._join_sequence,
        "failed": sorted(server.failed),
        "rows": rows,
    }


def restore_server(
    document: dict,
    seed: Union[int, np.random.Generator, None] = None,
) -> CoordinationServer:
    """Rebuild a server from a snapshot document.

    The restored matrix preserves every arrival key, so row ordering —
    and therefore every parent/child relationship and hanging thread —
    is identical to the captured state.
    """
    if document.get("version") != VERSION:
        raise ValueError(f"unsupported snapshot version {document.get('version')}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    server = CoordinationServer(
        document["k"], document["d"], rng,
        insert_mode=document.get("insert_mode", "append"),
    )
    # Rebuild the matrix with a key-faithful allocator: feed each row's
    # recorded key back through a replaying allocator.
    keys = [row["key"] for row in document["rows"]]
    server.matrix = ThreadMatrix(document["k"], _ReplayKeys(keys))
    for row in document["rows"]:
        server.matrix.join(
            row["node_id"], len(row["columns"]), rng, columns=row["columns"]
        )
        server.registry[row["node_id"]] = NodeInfo(
            node_id=row["node_id"],
            nominal_degree=row["nominal_degree"],
            status=NodeStatus(row["status"]),
            dropped_threads=list(row["dropped_threads"]),
            joined_at=row["joined_at"],
        )
    server.failed = set(document["failed"])
    server._next_id = document["next_id"]
    server._join_sequence = document["join_sequence"]
    # Future joins use the mode's normal allocator, continuing after the
    # largest restored key for append mode.
    if server.insert_mode == "append":
        allocator = AppendKeys()
        allocator._counter = int(max(keys, default=0.0)) + 1
    else:
        allocator = UniformKeys(rng)
    server.matrix._allocator = allocator
    server.matrix.check_invariants()
    return server


class _ReplayKeys:
    """Key allocator that replays a recorded key sequence."""

    def __init__(self, keys: list[float]) -> None:
        self._iter = iter(keys)

    def next_key(self) -> float:
        return next(self._iter)


def save_snapshot(server: CoordinationServer, path: Union[str, Path]) -> None:
    """Write a snapshot to a JSON file."""
    Path(path).write_text(json.dumps(snapshot_server(server)))


def load_snapshot(
    path: Union[str, Path],
    seed: Union[int, np.random.Generator, None] = None,
) -> CoordinationServer:
    """Read a snapshot file and restore the server."""
    return restore_server(json.loads(Path(path).read_text()), seed)
